//! # pic-trace
//!
//! The *particle trace* substrate of the prediction framework (paper §II):
//! particle positions sampled at a fixed iteration interval during one
//! application run. A trace is the sole application-side input the Dynamic
//! Workload Generator needs — particle movement is independent of the
//! processor count, so one trace predicts workload at any scale.
//!
//! The crate provides:
//! * [`ParticleTrace`] — the in-memory model (fixed particle population,
//!   `T` samples of `N_p` positions);
//! * [`codec`] — a compact binary on-disk format with `f64` or `f32`
//!   precision (trace size is a first-class concern in the paper: full-scale
//!   traces run to hundreds of gigabytes);
//! * streaming [`TraceWriter`] / [`TraceReader`] that never hold more than
//!   one frame in memory;
//! * [`stats`] — particle-boundary evolution, displacement statistics, and
//!   file-size estimation used for the sampling-frequency trade-off;
//! * [`fault`] — deterministic fault-injection readers (truncation, short
//!   reads, interrupts, hard I/O errors, bit flips) backing the ingestion
//!   robustness contract: decoding arbitrary bytes never panics, stays
//!   within a bounded allocation budget, and fails with byte-positioned
//!   errors ([`pic_types::TraceError`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod codec;
pub mod extrapolate;
pub mod fault;
pub mod stats;
pub mod trace;

pub use bounded::{BoundedReader, DigestReader};
pub use codec::{Frames, Precision, TraceReader, TraceWriter};
pub use extrapolate::extrapolate;
pub use trace::{ParticleTrace, TraceMeta, TraceSample};
