//! # pic-trace
//!
//! The *particle trace* substrate of the prediction framework (paper §II):
//! particle positions sampled at a fixed iteration interval during one
//! application run. A trace is the sole application-side input the Dynamic
//! Workload Generator needs — particle movement is independent of the
//! processor count, so one trace predicts workload at any scale.
//!
//! The crate provides:
//! * [`ParticleTrace`] — the in-memory model (fixed particle population,
//!   `T` samples of `N_p` positions);
//! * [`codec`] — a compact binary on-disk format with `f64` or `f32`
//!   precision (trace size is a first-class concern in the paper: full-scale
//!   traces run to hundreds of gigabytes);
//! * streaming [`TraceWriter`] / [`TraceReader`] that never hold more than
//!   one frame in memory;
//! * [`stats`] — particle-boundary evolution, displacement statistics, and
//!   file-size estimation used for the sampling-frequency trade-off;
//! * [`fault`] — deterministic fault-injection readers (truncation, short
//!   reads, interrupts, hard I/O errors, bit flips) backing the ingestion
//!   robustness contract: decoding arbitrary bytes never panics, stays
//!   within a bounded allocation budget, and fails with byte-positioned
//!   errors ([`pic_types::TraceError`]);
//! * [`compact`] — the delta-encoded, quantized companion format (4–8×
//!   smaller for smoothly drifting traces) plus the magic-sniffing
//!   [`AnyTraceReader`] every ingest path accepts either format through;
//! * [`features`] — per-sample feature vectors (density histogram,
//!   migration rate, occupancy spread, boundary-volume delta) for
//!   SimPoint-style phase clustering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod codec;
pub mod compact;
pub mod extrapolate;
pub mod fault;
pub mod features;
pub mod stats;
pub mod trace;

pub use bounded::{BoundedReader, DigestReader};
pub use codec::{Frames, Precision, TraceReader, TraceWriter};
pub use compact::{AnyTraceReader, CompactReader, CompactWriter};
pub use extrapolate::extrapolate;
pub use features::{feature_vectors, FeatureConfig};
pub use trace::{ParticleTrace, TraceMeta, TraceSample};

/// A pull source of trace samples, implemented by [`TraceReader`] (raw
/// format), [`CompactReader`] (delta-encoded format) and
/// [`AnyTraceReader`] (magic-sniffing dispatch) — the abstraction
/// streaming ingest paths accept, so every one of them handles either
/// on-disk format.
pub trait SampleSource {
    /// Trace metadata decoded from the header.
    fn meta(&self) -> &TraceMeta;
    /// Decode the next sample; `None` cleanly at end of trace.
    fn read_sample(&mut self) -> pic_types::Result<Option<TraceSample>>;
    /// Bytes consumed from the underlying stream so far.
    fn bytes_read(&self) -> u64;
}

impl<R: std::io::Read> SampleSource for TraceReader<R> {
    fn meta(&self) -> &TraceMeta {
        TraceReader::meta(self)
    }
    fn read_sample(&mut self) -> pic_types::Result<Option<TraceSample>> {
        TraceReader::read_sample(self)
    }
    fn bytes_read(&self) -> u64 {
        TraceReader::bytes_read(self)
    }
}

impl<R: std::io::Read> SampleSource for CompactReader<R> {
    fn meta(&self) -> &TraceMeta {
        CompactReader::meta(self)
    }
    fn read_sample(&mut self) -> pic_types::Result<Option<TraceSample>> {
        CompactReader::read_sample(self)
    }
    fn bytes_read(&self) -> u64 {
        CompactReader::bytes_read(self)
    }
}

impl<R: std::io::Read> SampleSource for AnyTraceReader<R> {
    fn meta(&self) -> &TraceMeta {
        AnyTraceReader::meta(self)
    }
    fn read_sample(&mut self) -> pic_types::Result<Option<TraceSample>> {
        AnyTraceReader::read_sample(self)
    }
    fn bytes_read(&self) -> u64 {
        AnyTraceReader::bytes_read(self)
    }
}
