//! Binary trace codec and streaming IO.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic "PICTRC01" | precision u8 | pad [u8;3] | sample_interval u32
//!          | particle_count u64 | domain min/max 6×f64
//!          | desc_len u32 | desc utf-8 bytes
//! frame:   iteration u64 | particle_count × (x y z)   (f64 or f32 each)
//! ```
//!
//! Frames repeat until end-of-stream. A trace with millions of particles and
//! thousands of samples easily reaches hundreds of gigabytes at `f64`
//! precision (the paper's key practical limitation), so the codec supports
//! `f32` storage which halves the file at ~1e-7 relative position error —
//! far below an element edge length, hence workload-neutral.

use crate::trace::{ParticleTrace, TraceMeta, TraceSample};
use bytes::{Buf, BufMut};
use pic_types::{Aabb, PicError, Result, TraceError, TraceErrorKind, Vec3};
use std::io::{Read, Write};
use std::path::Path;

/// File magic for trace format version 1.
pub const MAGIC: &[u8; 8] = b"PICTRC01";

/// Hard cap on the header's description length. A corrupt `desc_len` must
/// never drive an allocation larger than this.
pub const MAX_DESC_LEN: usize = 1 << 20; // 1 MiB

/// Hard cap on the header's particle count. Far above any real trace
/// (the paper's full-scale run is ~6e5 particles) while keeping the frame
/// byte length comfortably inside `u64` arithmetic.
pub const MAX_PARTICLE_COUNT: u64 = 1 << 44;

/// Frame bodies are read in chunks of at most this many bytes; decoder
/// memory beyond the decoded positions themselves is bounded by this
/// constant no matter what the header claims.
pub const READ_CHUNK_BYTES: usize = 64 * 1024;

/// Floating-point width used for stored positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 8-byte positions (lossless).
    F64,
    /// 4-byte positions (half the file size, ~1e-7 relative error).
    F32,
}

impl Precision {
    fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Precision> {
        match t {
            0 => Ok(Precision::F64),
            1 => Ok(Precision::F32),
            _ => Err(PicError::trace(format!("unknown precision tag {t}"))),
        }
    }

    /// Bytes per scalar coordinate.
    pub fn scalar_bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }
}

fn encode_header(meta: &TraceMeta, precision: Precision) -> Vec<u8> {
    encode_header_with_magic(meta, precision, MAGIC)
}

/// Header encoder shared with the compact codec: identical layout, the
/// magic alone distinguishes the two formats.
pub(crate) fn encode_header_with_magic(
    meta: &TraceMeta,
    precision: Precision,
    magic: &[u8; 8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + meta.description.len());
    buf.put_slice(magic);
    buf.put_u8(precision.tag());
    buf.put_slice(&[0u8; 3]);
    buf.put_u32_le(meta.sample_interval);
    buf.put_u64_le(meta.particle_count as u64);
    for v in [meta.domain.min, meta.domain.max] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
    buf.put_u32_le(meta.description.len() as u32);
    buf.put_slice(meta.description.as_bytes());
    buf
}

/// Fill as much of `buf` as the stream provides: retries
/// `ErrorKind::Interrupted`, tolerates short reads, and returns the number
/// of bytes actually read (`< buf.len()` only at end-of-stream). Unlike
/// `read_exact`, a partial fill is distinguishable from a zero-byte EOF.
pub(crate) fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// Validate the header's domain corners: no NaNs, and per-axis ordered
/// finite `min <= max` — except the canonical empty box (`Aabb::empty`,
/// all-`+inf` min / all-`-inf` max), which legitimately round-trips.
/// Corrupt corners would otherwise trip `debug_assert`s (or silently
/// poison geometry) far downstream of the decode.
fn validate_domain(corners: &[f64; 6]) -> Result<Aabb> {
    let empty = Aabb::empty();
    let canonical_empty = corners[..3].iter().all(|&c| c == empty.min.x)
        && corners[3..].iter().all(|&c| c == empty.max.x);
    if canonical_empty {
        return Ok(empty);
    }
    for (axis, (&lo, &hi)) in corners[..3].iter().zip(&corners[3..]).enumerate() {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(header_err(
                TraceErrorKind::BadHeader,
                format!("domain corners on axis {axis} are not finite and ordered: [{lo}, {hi}]"),
                (24 + 8 * axis) as u64,
            ));
        }
    }
    Ok(Aabb {
        min: Vec3::new(corners[0], corners[1], corners[2]),
        max: Vec3::new(corners[3], corners[4], corners[5]),
    })
}

/// Streaming writer: emits the header on construction, then one frame per
/// [`TraceWriter::write_sample`] call. Holds no frame data between calls.
pub struct TraceWriter<W: Write> {
    sink: W,
    precision: Precision,
    particle_count: usize,
    frames_written: usize,
    bytes_written: u64,
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header for `meta` and return the writer.
    pub fn new(mut sink: W, meta: &TraceMeta, precision: Precision) -> Result<TraceWriter<W>> {
        let header = encode_header(meta, precision);
        sink.write_all(&header)?;
        Ok(TraceWriter {
            sink,
            precision,
            particle_count: meta.particle_count,
            frames_written: 0,
            bytes_written: header.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// Append one sample frame.
    pub fn write_sample(&mut self, sample: &TraceSample) -> Result<()> {
        if sample.positions.len() != self.particle_count {
            return Err(PicError::trace(format!(
                "frame has {} positions, header says {}",
                sample.positions.len(),
                self.particle_count
            )));
        }
        let frame_len = 8 + self.particle_count * 3 * self.precision.scalar_bytes();
        self.scratch.clear();
        self.scratch.reserve(frame_len);
        self.scratch.put_u64_le(sample.iteration);
        match self.precision {
            Precision::F64 => {
                for p in &sample.positions {
                    self.scratch.put_f64_le(p.x);
                    self.scratch.put_f64_le(p.y);
                    self.scratch.put_f64_le(p.z);
                }
            }
            Precision::F32 => {
                for p in &sample.positions {
                    self.scratch.put_f32_le(p.x as f32);
                    self.scratch.put_f32_le(p.y as f32);
                    self.scratch.put_f32_le(p.z as f32);
                }
            }
        }
        self.sink.write_all(&self.scratch)?;
        self.frames_written += 1;
        self.bytes_written += self.scratch.len() as u64;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Bytes emitted so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming reader: parses and validates the header on construction, then
/// yields one frame per [`TraceReader::read_sample`] call.
///
/// Robustness contract (the ingestion layer's load-bearing guarantees):
///
/// * every header field is bounds-checked before it drives an allocation —
///   a corrupt `desc_len` or `particle_count` can cost at most
///   [`MAX_DESC_LEN`] / [`READ_CHUNK_BYTES`] bytes of scratch, never a
///   multi-GiB reserve or a capacity-overflow abort;
/// * frame bodies are read in [`READ_CHUNK_BYTES`] chunks, so decoded
///   memory grows only with bytes actually present in the stream;
/// * every error is a positioned [`TraceError`] carrying the byte offset
///   (and frame index once past the header);
/// * `ErrorKind::Interrupted` and short reads are retried transparently.
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    precision: Precision,
    frames_read: usize,
    /// Bytes consumed from the stream so far (header included).
    offset: u64,
    /// Reusable chunk buffer for frame bodies (capacity ≤ READ_CHUNK_BYTES).
    chunk: Vec<u8>,
}

impl<R: Read> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("meta", &self.meta)
            .field("precision", &self.precision)
            .field("frames_read", &self.frames_read)
            .field("offset", &self.offset)
            .finish_non_exhaustive()
    }
}

/// Fixed-size part of the header, before the description bytes.
pub(crate) const FIXED_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 48 + 4;

pub(crate) fn header_err(kind: TraceErrorKind, msg: String, offset: u64) -> PicError {
    TraceError::new(kind, msg).at_offset(offset).into()
}

/// A parsed and validated codec header (shared by the raw and compact
/// readers — the two formats differ only in magic and frame layout).
pub(crate) struct ParsedHeader {
    pub(crate) meta: TraceMeta,
    pub(crate) precision: Precision,
    /// Bytes consumed from the stream (fixed header + description).
    pub(crate) offset: u64,
}

/// Parse and validate a codec header against `expected_magic`, consuming
/// exactly the header bytes from `source`. `format_name` names the format
/// in the bad-magic message (the raw codec has always said "pic-trace").
pub(crate) fn parse_header<R: Read>(
    source: &mut R,
    expected_magic: &[u8; 8],
    format_name: &str,
) -> Result<ParsedHeader> {
    let mut head = [0u8; FIXED_HEADER_LEN];
    let got = read_fully(source, &mut head).map_err(|e| {
        TraceError::new(TraceErrorKind::Io, "header read failed")
            .at_offset(0)
            .with_source(e)
    })?;
    if got < FIXED_HEADER_LEN {
        return Err(header_err(
            TraceErrorKind::TruncatedHeader,
            format!("stream ends {got} bytes into the {FIXED_HEADER_LEN}-byte fixed header"),
            got as u64,
        ));
    }
    let mut buf = &head[..];
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != expected_magic {
        return Err(header_err(
            TraceErrorKind::BadMagic,
            format!("not a {format_name} file"),
            0,
        ));
    }
    let tag = buf.get_u8();
    let precision = Precision::from_tag(tag).map_err(|_| {
        header_err(
            TraceErrorKind::BadHeader,
            format!("unknown precision tag {tag}"),
            8,
        )
    })?;
    buf.advance(3);
    let sample_interval = buf.get_u32_le();
    let particle_count_raw = buf.get_u64_le();
    if particle_count_raw > MAX_PARTICLE_COUNT {
        return Err(header_err(
            TraceErrorKind::BadHeader,
            format!("particle count {particle_count_raw} exceeds the {MAX_PARTICLE_COUNT} cap"),
            16,
        ));
    }
    let particle_count = particle_count_raw as usize;
    let mut corners = [0.0f64; 6];
    for c in &mut corners {
        *c = buf.get_f64_le();
    }
    let domain = validate_domain(&corners)?;
    let desc_len = buf.get_u32_le() as usize;
    if desc_len > MAX_DESC_LEN {
        return Err(header_err(
            TraceErrorKind::BadHeader,
            format!("description length {desc_len} exceeds the {MAX_DESC_LEN}-byte cap"),
            (FIXED_HEADER_LEN - 4) as u64,
        ));
    }
    let mut desc_bytes = vec![0u8; desc_len];
    let got = read_fully(source, &mut desc_bytes).map_err(|e| {
        TraceError::new(TraceErrorKind::Io, "description read failed")
            .at_offset(FIXED_HEADER_LEN as u64)
            .with_source(e)
    })?;
    if got < desc_len {
        return Err(header_err(
            TraceErrorKind::TruncatedHeader,
            format!("stream ends {got} bytes into the {desc_len}-byte description"),
            (FIXED_HEADER_LEN + got) as u64,
        ));
    }
    let description = String::from_utf8(desc_bytes).map_err(|_| {
        header_err(
            TraceErrorKind::BadHeader,
            "description is not valid UTF-8".to_string(),
            FIXED_HEADER_LEN as u64,
        )
    })?;
    let offset = (FIXED_HEADER_LEN + desc_len) as u64;
    let meta = TraceMeta {
        particle_count,
        sample_interval,
        domain,
        description,
    };
    Ok(ParsedHeader {
        meta,
        precision,
        offset,
    })
}

impl<R: Read> TraceReader<R> {
    /// Parse and validate the header and return the reader.
    pub fn new(mut source: R) -> Result<TraceReader<R>> {
        let h = parse_header(&mut source, MAGIC, "pic-trace")?;
        Ok(TraceReader {
            source,
            meta: h.meta,
            precision: h.precision,
            frames_read: 0,
            offset: h.offset,
            chunk: Vec::new(),
        })
    }

    /// Trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Storage precision of the file.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes consumed from the stream so far, header included.
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }

    /// Read the next frame; `Ok(None)` only at a *clean* end-of-stream
    /// (exactly zero bytes past the previous frame). A stream that ends
    /// anywhere inside a frame — including 1–7 bytes into the iteration
    /// word — is a positioned [`TraceError`] of kind
    /// [`TraceErrorKind::TruncatedFrame`]; a real I/O failure surfaces as
    /// [`TraceErrorKind::Io`] with the source error preserved.
    pub fn read_sample(&mut self) -> Result<Option<TraceSample>> {
        let frame = self.frames_read as u64;
        let mut iter_buf = [0u8; 8];
        let got = read_fully(&mut self.source, &mut iter_buf).map_err(|e| {
            TraceError::new(TraceErrorKind::Io, "frame header read failed")
                .at_offset(self.offset)
                .at_frame(frame)
                .with_source(e)
        })?;
        if got == 0 {
            return Ok(None); // clean end-of-stream
        }
        if got < 8 {
            return Err(TraceError::new(
                TraceErrorKind::TruncatedFrame,
                format!("stream ends {got} bytes into the frame's iteration word"),
            )
            .at_offset(self.offset + got as u64)
            .at_frame(frame)
            .into());
        }
        self.offset += 8;
        let iteration = u64::from_le_bytes(iter_buf);
        let n = self.meta.particle_count;
        let stride = 3 * self.precision.scalar_bytes();
        // Whole particles per chunk: scalars never straddle a chunk edge.
        let chunk_particles = (READ_CHUNK_BYTES / stride).max(1);
        let mut positions: Vec<Vec3> = Vec::new();
        let mut decoded = 0usize;
        while decoded < n {
            let take = chunk_particles.min(n - decoded);
            let want = take * stride;
            self.chunk.resize(want, 0);
            let got = read_fully(&mut self.source, &mut self.chunk[..want]).map_err(|e| {
                TraceError::new(
                    TraceErrorKind::Io,
                    format!("frame body read failed at iteration {iteration}"),
                )
                .at_offset(self.offset)
                .at_frame(frame)
                .with_source(e)
            })?;
            if got < want {
                let missing = (n - decoded) * stride - got;
                return Err(TraceError::new(
                    TraceErrorKind::TruncatedFrame,
                    format!(
                        "truncated frame at iteration {iteration}: stream ends {missing} byte(s) short"
                    ),
                )
                .at_offset(self.offset + got as u64)
                .at_frame(frame)
                .into());
            }
            self.offset += got as u64;
            positions.reserve(take);
            let mut buf = &self.chunk[..want];
            match self.precision {
                Precision::F64 => {
                    for _ in 0..take {
                        positions.push(Vec3::new(
                            buf.get_f64_le(),
                            buf.get_f64_le(),
                            buf.get_f64_le(),
                        ));
                    }
                }
                Precision::F32 => {
                    for _ in 0..take {
                        positions.push(Vec3::new(
                            buf.get_f32_le() as f64,
                            buf.get_f32_le() as f64,
                            buf.get_f32_le() as f64,
                        ));
                    }
                }
            }
            decoded += take;
        }
        self.frames_read += 1;
        Ok(Some(TraceSample {
            iteration,
            positions,
        }))
    }

    /// Number of frames read so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Read every remaining frame into a [`ParticleTrace`]. Trace-model
    /// invariant violations (non-monotone iterations, non-finite decoded
    /// positions) are positioned at the offending frame.
    pub fn read_all(mut self) -> Result<ParticleTrace> {
        let mut trace = ParticleTrace::new(self.meta.clone());
        while let Some(s) = self.read_sample()? {
            trace.push_sample(s).map_err(|e| self.positioned(e))?;
        }
        Ok(trace)
    }

    /// Stamp an unpositioned trace error with the current stream position
    /// (the end of the most recently decoded frame).
    fn positioned(&self, e: PicError) -> PicError {
        match e {
            PicError::TraceFormat(mut t) => {
                if t.offset.is_none() {
                    t.offset = Some(self.offset);
                }
                if t.frame.is_none() {
                    t.frame = Some((self.frames_read.saturating_sub(1)) as u64);
                }
                PicError::TraceFormat(t)
            }
            other => other,
        }
    }

    /// Consume the reader as an iterator of frames. A malformed stream
    /// yields one `Err` and then ends; a clean end-of-stream just ends.
    /// This is the handoff surface for pipeline consumers (e.g. the
    /// streaming workload generator's decoder thread).
    pub fn frames(self) -> Frames<R> {
        Frames { reader: Some(self) }
    }
}

/// Owning frame iterator returned by [`TraceReader::frames`].
pub struct Frames<R: Read> {
    reader: Option<TraceReader<R>>,
}

impl<R: Read> Iterator for Frames<R> {
    type Item = Result<TraceSample>;

    fn next(&mut self) -> Option<Result<TraceSample>> {
        let reader = self.reader.as_mut()?;
        match reader.read_sample() {
            Ok(Some(s)) => Some(Ok(s)),
            Ok(None) => {
                self.reader = None;
                None
            }
            Err(e) => {
                self.reader = None;
                Some(Err(e))
            }
        }
    }
}

/// Encode a whole trace into a byte vector.
///
/// ```
/// use pic_trace::{ParticleTrace, TraceMeta};
/// use pic_trace::codec::{encode_trace, decode_trace, Precision};
/// use pic_types::{Aabb, Vec3};
///
/// let mut trace = ParticleTrace::new(TraceMeta::new(1, 10, Aabb::unit(), "demo"));
/// trace.push_positions(vec![Vec3::splat(0.5)])?;
/// let bytes = encode_trace(&trace, Precision::F64)?;
/// assert_eq!(decode_trace(&bytes)?, trace); // lossless at f64
/// # Ok::<(), pic_types::PicError>(())
/// ```
pub fn encode_trace(trace: &ParticleTrace, precision: Precision) -> Result<Vec<u8>> {
    let mut w = TraceWriter::new(Vec::new(), trace.meta(), precision)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    w.finish()
}

/// Decode a trace from bytes.
pub fn decode_trace(bytes: &[u8]) -> Result<ParticleTrace> {
    TraceReader::new(bytes)?.read_all()
}

/// Write a trace to a file.
pub fn save_file(
    trace: &ParticleTrace,
    path: impl AsRef<Path>,
    precision: Precision,
) -> Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(f), trace.meta(), precision)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    w.finish()?;
    Ok(())
}

/// Read a trace from a file.
pub fn load_file(path: impl AsRef<Path>) -> Result<ParticleTrace> {
    let f = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(f))?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(np: usize, t: usize) -> ParticleTrace {
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "codec-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let positions = (0..np)
                .map(|i| Vec3::new(i as f64 * 0.01, k as f64 * 0.02, 0.5))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn f64_roundtrip_is_lossless() {
        let tr = sample_trace(17, 5);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn f32_roundtrip_is_close() {
        let tr = sample_trace(8, 3);
        let bytes = encode_trace(&tr, Precision::F32).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.sample_count(), tr.sample_count());
        for t in 0..tr.sample_count() {
            for (a, b) in tr.positions_at(t).iter().zip(back.positions_at(t)) {
                assert!(a.distance(*b) < 1e-6);
            }
        }
        // and smaller on disk
        let f64_bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert!(bytes.len() < f64_bytes.len());
    }

    #[test]
    fn header_metadata_roundtrips() {
        let tr = sample_trace(4, 1);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.meta(), tr.meta());
        assert_eq!(r.precision(), Precision::F64);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let tr = sample_trace(2, 1);
        let mut bytes = encode_trace(&tr, Precision::F64).unwrap();
        bytes[0] = b'X';
        assert!(decode_trace(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let tr = sample_trace(5, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        // cut into the middle of the second frame
        let cut = bytes.len() - 10;
        let err = decode_trace(&bytes[..cut]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let tr = sample_trace(3, 0);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.sample_count(), 0);
        assert_eq!(back.meta(), tr.meta());
    }

    #[test]
    fn streaming_reader_yields_frames_in_order() {
        let tr = sample_trace(3, 4);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut n = 0;
        while let Some(s) = r.read_sample().unwrap() {
            assert_eq!(&s, tr.sample(n));
            n += 1;
            assert_eq!(r.frames_read(), n);
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn writer_rejects_wrong_particle_count() {
        let tr = sample_trace(3, 1);
        let mut w = TraceWriter::new(Vec::new(), tr.meta(), Precision::F64).unwrap();
        let bad = TraceSample {
            iteration: 0,
            positions: vec![Vec3::ZERO; 2],
        };
        assert!(w.write_sample(&bad).is_err());
        assert_eq!(w.frames_written(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let tr = sample_trace(6, 3);
        let dir = std::env::temp_dir().join("pic_trace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pictrace");
        save_file(&tr, &path, Precision::F64).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back, tr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_particle_trace_roundtrips() {
        let tr = sample_trace(0, 4);
        for precision in [Precision::F64, Precision::F32] {
            let bytes = encode_trace(&tr, precision).unwrap();
            let back = decode_trace(&bytes).unwrap();
            assert_eq!(back.sample_count(), 4);
            assert_eq!(back.particle_count(), 0);
            assert_eq!(back.iterations(), tr.iterations());
        }
    }

    #[test]
    fn empty_description_roundtrips() {
        let meta = TraceMeta::new(2, 10, Aabb::unit(), "");
        let mut tr = ParticleTrace::new(meta);
        tr.push_positions(vec![Vec3::splat(0.25); 2]).unwrap();
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.meta().description, "");
        assert_eq!(back, tr);
    }

    #[test]
    fn multi_chunk_frames_roundtrip_both_precisions() {
        // More particles than fit one READ_CHUNK_BYTES chunk, so the
        // chunked body reader crosses chunk boundaries mid-frame.
        let np = READ_CHUNK_BYTES / (3 * 4) + 211;
        let tr = sample_trace(np, 2);
        let f64_bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert_eq!(decode_trace(&f64_bytes).unwrap(), tr);
        let f32_bytes = encode_trace(&tr, Precision::F32).unwrap();
        let back = decode_trace(&f32_bytes).unwrap();
        assert_eq!(back.sample_count(), 2);
        for t in 0..2 {
            for (a, b) in tr.positions_at(t).iter().zip(back.positions_at(t)) {
                assert!(a.distance(*b) < 1e-3);
            }
        }
    }

    #[test]
    fn partial_iteration_word_is_truncated_frame_not_clean_eof() {
        // The doc-comment promise: a stream ending 1–7 bytes into the
        // iteration word must NOT be reported as Ok(None).
        let tr = sample_trace(3, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let frame_len = 8 + 3 * 3 * 8;
        let header_len = bytes.len() - 2 * frame_len;
        for extra in 1..8usize {
            let cut = header_len + frame_len + extra;
            let mut r = TraceReader::new(&bytes[..cut]).unwrap();
            r.read_sample().unwrap().unwrap(); // frame 0 intact
            let err = r.read_sample().unwrap_err();
            let d = err.trace_details().expect("structured trace error");
            assert_eq!(
                d.kind,
                pic_types::TraceErrorKind::TruncatedFrame,
                "extra={extra}"
            );
            assert_eq!(d.offset, Some(cut as u64));
            assert_eq!(d.frame, Some(1));
        }
    }

    #[test]
    fn body_io_error_preserves_source_kind() {
        use crate::fault::FailAt;
        let tr = sample_trace(8, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        // hard-fail mid-body of frame 0, well past the header
        let frame_len = 8 + 8 * 3 * 8;
        let fail_at = (bytes.len() - 2 * frame_len + frame_len / 2) as u64;
        let mut r = TraceReader::new(FailAt::new(
            &bytes[..],
            fail_at,
            std::io::ErrorKind::PermissionDenied,
        ))
        .unwrap();
        let err = r.read_sample().unwrap_err();
        let d = err.trace_details().expect("structured trace error");
        assert_eq!(d.kind, pic_types::TraceErrorKind::Io);
        let src = d.source.as_ref().expect("source IO error preserved");
        assert_eq!(src.kind(), std::io::ErrorKind::PermissionDenied);
        assert!(src.to_string().contains("injected fault"));
    }

    #[test]
    fn frames_iterator_yields_one_err_then_none() {
        let tr = sample_trace(4, 3);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let cut = bytes.len() - 5; // inside the last frame
        let mut frames = TraceReader::new(&bytes[..cut]).unwrap().frames();
        assert!(frames.next().unwrap().is_ok());
        assert!(frames.next().unwrap().is_ok());
        assert!(frames.next().unwrap().is_err());
        assert!(frames.next().is_none());
        assert!(frames.next().is_none());
    }

    #[test]
    fn absurd_particle_count_is_rejected_without_allocating() {
        // A header claiming ~1.8e19 particles previously drove
        // Vec::with_capacity into a capacity-overflow abort (or an OOM).
        let tr = sample_trace(2, 1);
        let mut bytes = encode_trace(&tr, Precision::F64).unwrap();
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, pic_types::TraceErrorKind::BadHeader);
        assert_eq!(d.offset, Some(16));
    }

    #[test]
    fn large_claimed_count_with_tiny_body_errors_fast() {
        // In-cap but far beyond the actual body: must error as truncation
        // after reading what exists, never pre-reserve the claimed size.
        let tr = sample_trace(2, 1);
        let mut bytes = encode_trace(&tr, Precision::F64).unwrap();
        bytes[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, pic_types::TraceErrorKind::TruncatedFrame);
        assert_eq!(d.frame, Some(0));
        assert!(d.offset.is_some());
    }

    #[test]
    fn oversized_desc_len_is_rejected() {
        let tr = sample_trace(2, 1);
        let mut bytes = encode_trace(&tr, Precision::F64).unwrap();
        bytes[72..76].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        assert_eq!(
            err.trace_details().unwrap().kind,
            pic_types::TraceErrorKind::BadHeader
        );
    }

    #[test]
    fn non_finite_or_unordered_domain_is_rejected() {
        let tr = sample_trace(2, 1);
        let good = encode_trace(&tr, Precision::F64).unwrap();
        // NaN min.x
        let mut bytes = good.clone();
        bytes[24..32].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes)
                .unwrap_err()
                .trace_details()
                .unwrap()
                .kind,
            pic_types::TraceErrorKind::BadHeader
        );
        // min.y > max.y
        let mut bytes = good.clone();
        bytes[32..40].copy_from_slice(&5.0f64.to_le_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, pic_types::TraceErrorKind::BadHeader);
        assert_eq!(d.offset, Some(32));
        // the canonical empty box stays decodable
        let meta = TraceMeta::new(0, 10, Aabb::empty(), "empty-domain");
        let tr = ParticleTrace::new(meta);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert!(decode_trace(&bytes).unwrap().meta().domain.is_empty());
    }

    #[test]
    fn truncated_header_errors_carry_offset() {
        let tr = sample_trace(2, 1);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        for cut in [0usize, 1, 7, 8, 40, 75] {
            let err = TraceReader::new(&bytes[..cut]).unwrap_err();
            let d = err.trace_details().expect("structured error");
            assert_eq!(
                d.kind,
                pic_types::TraceErrorKind::TruncatedHeader,
                "cut={cut}"
            );
            assert_eq!(d.offset, Some(cut as u64));
        }
        // mid-description cut
        let cut = 76 + 3; // description is "codec-test" (10 bytes)
        let err = TraceReader::new(&bytes[..cut]).unwrap_err();
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, pic_types::TraceErrorKind::TruncatedHeader);
        assert_eq!(d.offset, Some(cut as u64));
    }

    #[test]
    fn bytes_read_tracks_stream_position() {
        let tr = sample_trace(3, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let header = 76 + "codec-test".len() as u64;
        assert_eq!(r.bytes_read(), header);
        let frame_len = 8 + 3 * 3 * 8;
        r.read_sample().unwrap().unwrap();
        assert_eq!(r.bytes_read(), header + frame_len);
        r.read_sample().unwrap().unwrap();
        assert!(r.read_sample().unwrap().is_none());
        assert_eq!(r.bytes_read(), bytes.len() as u64);
    }

    #[test]
    fn writer_counts_bytes() {
        let tr = sample_trace(3, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let mut w = TraceWriter::new(Vec::new(), tr.meta(), Precision::F64).unwrap();
        for s in tr.samples() {
            w.write_sample(s).unwrap();
        }
        assert_eq!(w.bytes_written(), bytes.len() as u64);
    }

    #[test]
    fn unicode_description_roundtrips() {
        let meta = TraceMeta::new(1, 10, Aabb::unit(), "Hele-Shaw ∅→💥");
        let mut tr = ParticleTrace::new(meta);
        tr.push_positions(vec![Vec3::splat(0.5)]).unwrap();
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert_eq!(
            decode_trace(&bytes).unwrap().meta().description,
            "Hele-Shaw ∅→💥"
        );
    }
}
