//! Binary trace codec and streaming IO.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic "PICTRC01" | precision u8 | pad [u8;3] | sample_interval u32
//!          | particle_count u64 | domain min/max 6×f64
//!          | desc_len u32 | desc utf-8 bytes
//! frame:   iteration u64 | particle_count × (x y z)   (f64 or f32 each)
//! ```
//!
//! Frames repeat until end-of-stream. A trace with millions of particles and
//! thousands of samples easily reaches hundreds of gigabytes at `f64`
//! precision (the paper's key practical limitation), so the codec supports
//! `f32` storage which halves the file at ~1e-7 relative position error —
//! far below an element edge length, hence workload-neutral.

use crate::trace::{ParticleTrace, TraceMeta, TraceSample};
use bytes::{Buf, BufMut};
use pic_types::{Aabb, PicError, Result, Vec3};
use std::io::{Read, Write};
use std::path::Path;

/// File magic for trace format version 1.
pub const MAGIC: &[u8; 8] = b"PICTRC01";

/// Floating-point width used for stored positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 8-byte positions (lossless).
    F64,
    /// 4-byte positions (half the file size, ~1e-7 relative error).
    F32,
}

impl Precision {
    fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Precision> {
        match t {
            0 => Ok(Precision::F64),
            1 => Ok(Precision::F32),
            _ => Err(PicError::trace(format!("unknown precision tag {t}"))),
        }
    }

    /// Bytes per scalar coordinate.
    pub fn scalar_bytes(self) -> usize {
        match self {
            Precision::F64 => 8,
            Precision::F32 => 4,
        }
    }
}

fn encode_header(meta: &TraceMeta, precision: Precision) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + meta.description.len());
    buf.put_slice(MAGIC);
    buf.put_u8(precision.tag());
    buf.put_slice(&[0u8; 3]);
    buf.put_u32_le(meta.sample_interval);
    buf.put_u64_le(meta.particle_count as u64);
    for v in [meta.domain.min, meta.domain.max] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
    buf.put_u32_le(meta.description.len() as u32);
    buf.put_slice(meta.description.as_bytes());
    buf
}

fn read_exact_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Streaming writer: emits the header on construction, then one frame per
/// [`TraceWriter::write_sample`] call. Holds no frame data between calls.
pub struct TraceWriter<W: Write> {
    sink: W,
    precision: Precision,
    particle_count: usize,
    frames_written: usize,
    scratch: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header for `meta` and return the writer.
    pub fn new(mut sink: W, meta: &TraceMeta, precision: Precision) -> Result<TraceWriter<W>> {
        sink.write_all(&encode_header(meta, precision))?;
        Ok(TraceWriter {
            sink,
            precision,
            particle_count: meta.particle_count,
            frames_written: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one sample frame.
    pub fn write_sample(&mut self, sample: &TraceSample) -> Result<()> {
        if sample.positions.len() != self.particle_count {
            return Err(PicError::trace(format!(
                "frame has {} positions, header says {}",
                sample.positions.len(),
                self.particle_count
            )));
        }
        let frame_len = 8 + self.particle_count * 3 * self.precision.scalar_bytes();
        self.scratch.clear();
        self.scratch.reserve(frame_len);
        self.scratch.put_u64_le(sample.iteration);
        match self.precision {
            Precision::F64 => {
                for p in &sample.positions {
                    self.scratch.put_f64_le(p.x);
                    self.scratch.put_f64_le(p.y);
                    self.scratch.put_f64_le(p.z);
                }
            }
            Precision::F32 => {
                for p in &sample.positions {
                    self.scratch.put_f32_le(p.x as f32);
                    self.scratch.put_f32_le(p.y as f32);
                    self.scratch.put_f32_le(p.z as f32);
                }
            }
        }
        self.sink.write_all(&self.scratch)?;
        self.frames_written += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming reader: parses the header on construction, then yields one
/// frame per [`TraceReader::read_sample`] call.
pub struct TraceReader<R: Read> {
    source: R,
    meta: TraceMeta,
    precision: Precision,
    frames_read: usize,
}

impl<R: Read> TraceReader<R> {
    /// Parse the header and return the reader.
    pub fn new(mut source: R) -> Result<TraceReader<R>> {
        let head = read_exact_vec(&mut source, 8 + 4 + 4 + 8 + 48 + 4)?;
        let mut buf = &head[..];
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PicError::trace("bad magic: not a pic-trace file"));
        }
        let precision = Precision::from_tag(buf.get_u8())?;
        buf.advance(3);
        let sample_interval = buf.get_u32_le();
        let particle_count = buf.get_u64_le() as usize;
        let mut corners = [0.0f64; 6];
        for c in &mut corners {
            *c = buf.get_f64_le();
        }
        let desc_len = buf.get_u32_le() as usize;
        let desc_bytes = read_exact_vec(&mut source, desc_len)?;
        let description = String::from_utf8(desc_bytes)
            .map_err(|_| PicError::trace("description is not valid UTF-8"))?;
        let domain = Aabb {
            min: Vec3::new(corners[0], corners[1], corners[2]),
            max: Vec3::new(corners[3], corners[4], corners[5]),
        };
        let meta = TraceMeta { particle_count, sample_interval, domain, description };
        Ok(TraceReader { source, meta, precision, frames_read: 0 })
    }

    /// Trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Storage precision of the file.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Read the next frame; `Ok(None)` at a clean end-of-stream. A stream
    /// that ends mid-frame is a [`PicError::TraceFormat`] error.
    pub fn read_sample(&mut self) -> Result<Option<TraceSample>> {
        let mut iter_buf = [0u8; 8];
        match self.source.read_exact(&mut iter_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let iteration = u64::from_le_bytes(iter_buf);
        let n = self.meta.particle_count;
        let body_len = n * 3 * self.precision.scalar_bytes();
        let body = read_exact_vec(&mut self.source, body_len).map_err(|_| {
            PicError::trace(format!("truncated frame at iteration {iteration}"))
        })?;
        let mut buf = &body[..];
        let mut positions = Vec::with_capacity(n);
        match self.precision {
            Precision::F64 => {
                for _ in 0..n {
                    positions.push(Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le()));
                }
            }
            Precision::F32 => {
                for _ in 0..n {
                    positions.push(Vec3::new(
                        buf.get_f32_le() as f64,
                        buf.get_f32_le() as f64,
                        buf.get_f32_le() as f64,
                    ));
                }
            }
        }
        self.frames_read += 1;
        Ok(Some(TraceSample { iteration, positions }))
    }

    /// Number of frames read so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Read every remaining frame into a [`ParticleTrace`].
    pub fn read_all(mut self) -> Result<ParticleTrace> {
        let mut trace = ParticleTrace::new(self.meta.clone());
        while let Some(s) = self.read_sample()? {
            trace.push_sample(s)?;
        }
        Ok(trace)
    }

    /// Consume the reader as an iterator of frames. A malformed stream
    /// yields one `Err` and then ends; a clean end-of-stream just ends.
    /// This is the handoff surface for pipeline consumers (e.g. the
    /// streaming workload generator's decoder thread).
    pub fn frames(self) -> Frames<R> {
        Frames { reader: Some(self) }
    }
}

/// Owning frame iterator returned by [`TraceReader::frames`].
pub struct Frames<R: Read> {
    reader: Option<TraceReader<R>>,
}

impl<R: Read> Iterator for Frames<R> {
    type Item = Result<TraceSample>;

    fn next(&mut self) -> Option<Result<TraceSample>> {
        let reader = self.reader.as_mut()?;
        match reader.read_sample() {
            Ok(Some(s)) => Some(Ok(s)),
            Ok(None) => {
                self.reader = None;
                None
            }
            Err(e) => {
                self.reader = None;
                Some(Err(e))
            }
        }
    }
}

/// Encode a whole trace into a byte vector.
///
/// ```
/// use pic_trace::{ParticleTrace, TraceMeta};
/// use pic_trace::codec::{encode_trace, decode_trace, Precision};
/// use pic_types::{Aabb, Vec3};
///
/// let mut trace = ParticleTrace::new(TraceMeta::new(1, 10, Aabb::unit(), "demo"));
/// trace.push_positions(vec![Vec3::splat(0.5)])?;
/// let bytes = encode_trace(&trace, Precision::F64)?;
/// assert_eq!(decode_trace(&bytes)?, trace); // lossless at f64
/// # Ok::<(), pic_types::PicError>(())
/// ```
pub fn encode_trace(trace: &ParticleTrace, precision: Precision) -> Result<Vec<u8>> {
    let mut w = TraceWriter::new(Vec::new(), trace.meta(), precision)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    w.finish()
}

/// Decode a trace from bytes.
pub fn decode_trace(bytes: &[u8]) -> Result<ParticleTrace> {
    TraceReader::new(bytes)?.read_all()
}

/// Write a trace to a file.
pub fn save_file(trace: &ParticleTrace, path: impl AsRef<Path>, precision: Precision) -> Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(f), trace.meta(), precision)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    w.finish()?;
    Ok(())
}

/// Read a trace from a file.
pub fn load_file(path: impl AsRef<Path>) -> Result<ParticleTrace> {
    let f = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(f))?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(np: usize, t: usize) -> ParticleTrace {
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "codec-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let positions =
                (0..np).map(|i| Vec3::new(i as f64 * 0.01, k as f64 * 0.02, 0.5)).collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn f64_roundtrip_is_lossless() {
        let tr = sample_trace(17, 5);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn f32_roundtrip_is_close() {
        let tr = sample_trace(8, 3);
        let bytes = encode_trace(&tr, Precision::F32).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.sample_count(), tr.sample_count());
        for t in 0..tr.sample_count() {
            for (a, b) in tr.positions_at(t).iter().zip(back.positions_at(t)) {
                assert!(a.distance(*b) < 1e-6);
            }
        }
        // and smaller on disk
        let f64_bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert!(bytes.len() < f64_bytes.len());
    }

    #[test]
    fn header_metadata_roundtrips() {
        let tr = sample_trace(4, 1);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.meta(), tr.meta());
        assert_eq!(r.precision(), Precision::F64);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let tr = sample_trace(2, 1);
        let mut bytes = encode_trace(&tr, Precision::F64).unwrap();
        bytes[0] = b'X';
        assert!(decode_trace(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let tr = sample_trace(5, 2);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        // cut into the middle of the second frame
        let cut = bytes.len() - 10;
        let err = decode_trace(&bytes[..cut]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let tr = sample_trace(3, 0);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.sample_count(), 0);
        assert_eq!(back.meta(), tr.meta());
    }

    #[test]
    fn streaming_reader_yields_frames_in_order() {
        let tr = sample_trace(3, 4);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut n = 0;
        while let Some(s) = r.read_sample().unwrap() {
            assert_eq!(&s, tr.sample(n));
            n += 1;
            assert_eq!(r.frames_read(), n);
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn writer_rejects_wrong_particle_count() {
        let tr = sample_trace(3, 1);
        let mut w = TraceWriter::new(Vec::new(), tr.meta(), Precision::F64).unwrap();
        let bad = TraceSample { iteration: 0, positions: vec![Vec3::ZERO; 2] };
        assert!(w.write_sample(&bad).is_err());
        assert_eq!(w.frames_written(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let tr = sample_trace(6, 3);
        let dir = std::env::temp_dir().join("pic_trace_codec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pictrace");
        save_file(&tr, &path, Precision::F64).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back, tr);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unicode_description_roundtrips() {
        let meta = TraceMeta::new(1, 10, Aabb::unit(), "Hele-Shaw ∅→💥");
        let mut tr = ParticleTrace::new(meta);
        tr.push_positions(vec![Vec3::splat(0.5)]).unwrap();
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        assert_eq!(decode_trace(&bytes).unwrap().meta().description, "Hele-Shaw ∅→💥");
    }
}
