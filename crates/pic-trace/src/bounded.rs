//! Bounded, digesting readers for untrusted byte streams.
//!
//! The serve-side ingestion path wraps a network socket in these adapters
//! before handing it to [`crate::TraceReader`]: [`BoundedReader`] caps how
//! many bytes the decoder can pull (a declared `Content-Length`, or a hard
//! server limit), so a malicious or confused client can never stream the
//! server past its budget; [`DigestReader`] fingerprints exactly the bytes
//! the decoder consumed, producing the registry's content address without
//! buffering the body. Both retry [`std::io::ErrorKind::Interrupted`]
//! never, deliberately — the inner reader (the codec's chunked reader sits
//! *above* these) already owns that policy.

use pic_types::hash::Fnv128;
use std::io::Read;

/// A reader that yields at most `limit` bytes from the inner reader, then
/// reports a clean EOF. The truncation is silent by design: the codec's
/// framing discovers a short body and reports a *positioned*
/// `UnexpectedEof`, which is a far better error than a raw I/O failure
/// mid-socket.
#[derive(Debug)]
pub struct BoundedReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> BoundedReader<R> {
    /// Wrap `inner`, allowing at most `limit` bytes through.
    pub fn new(inner: R, limit: u64) -> BoundedReader<R> {
        BoundedReader {
            inner,
            remaining: limit,
        }
    }

    /// Bytes still allowed through.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consume the adapter, returning the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for BoundedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf
            .len()
            .min(self.remaining.min(usize::MAX as u64) as usize);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// A reader that feeds every byte it passes through into an incremental
/// 128-bit FNV-1a digest. After the consumer (e.g. [`crate::TraceReader`])
/// finishes, [`DigestReader::digest`] is the content address of precisely
/// the bytes decoded.
#[derive(Debug)]
pub struct DigestReader<R> {
    inner: R,
    digest: Fnv128,
}

impl<R: Read> DigestReader<R> {
    /// Wrap `inner` with a fresh digest.
    pub fn new(inner: R) -> DigestReader<R> {
        DigestReader {
            inner,
            digest: Fnv128::new(),
        }
    }

    /// The digest state over all bytes read so far.
    pub fn digest(&self) -> &Fnv128 {
        &self.digest
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.digest.len()
    }

    /// Consume the adapter, returning the finished digest.
    pub fn into_digest(self) -> Fnv128 {
        self.digest
    }
}

impl<R: Read> Read for DigestReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_trace, Precision};
    use crate::{ParticleTrace, TraceMeta, TraceReader};
    use pic_types::hash::fnv1a_128;
    use pic_types::{Aabb, Vec3};

    fn sample_trace() -> ParticleTrace {
        let meta = TraceMeta::new(3, 10, Aabb::unit(), "bounded-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..4 {
            let s = 0.1 * (k + 1) as f64;
            tr.push_positions(vec![Vec3::splat(s); 3]).unwrap();
        }
        tr
    }

    #[test]
    fn bounded_reader_caps_and_reports_clean_eof() {
        let data = vec![42u8; 1000];
        let mut r = BoundedReader::new(&data[..], 700);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 700);
        assert_eq!(r.remaining(), 0);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn bounded_decode_fails_positioned_not_hanging() {
        let bytes = encode_trace(&sample_trace(), Precision::F64).unwrap();
        // Allow fewer bytes than the stream holds: the decoder must see a
        // positioned truncation error, not an I/O error or a hang.
        let limited = BoundedReader::new(&bytes[..], bytes.len() as u64 - 9);
        let mut reader = TraceReader::new(limited).unwrap();
        let mut err = None;
        loop {
            match reader.read_sample() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let err = err.expect("truncated stream must error");
        let msg = format!("{err}");
        assert!(msg.contains("at byte"), "unpositioned error: {msg}");
    }

    #[test]
    fn digest_reader_addresses_exactly_the_consumed_bytes() {
        let bytes = encode_trace(&sample_trace(), Precision::F32).unwrap();
        let mut digesting = DigestReader::new(&bytes[..]);
        let mut out = Vec::new();
        digesting.read_to_end(&mut out).unwrap();
        assert_eq!(out, bytes);
        assert_eq!(digesting.digest().digest(), fnv1a_128(&bytes));
        assert_eq!(digesting.bytes_read(), bytes.len() as u64);
    }

    #[test]
    fn stacked_adapters_digest_only_admitted_bytes() {
        let bytes = encode_trace(&sample_trace(), Precision::F64).unwrap();
        let cap = bytes.len() as u64; // exact-length body, the serve case
        let bounded = BoundedReader::new(&bytes[..], cap);
        let mut digesting = DigestReader::new(bounded);
        let mut reader = TraceReader::new(&mut digesting).unwrap();
        let mut frames = 0;
        while reader.read_sample().unwrap().is_some() {
            frames += 1;
        }
        assert_eq!(frames, 4);
        assert_eq!(digesting.into_digest().digest(), fnv1a_128(&bytes));
    }
}
