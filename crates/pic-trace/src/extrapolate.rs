//! Trace extrapolation: synthesize a representative large-particle-count
//! trace from a small-scale run.
//!
//! This is the extension the paper names as future work (§VI: "we are
//! working on incorporating trace extrapolation … to generate
//! representative high-scale particle trace from a low-fidelity
//! execution"), motivated by the cost of collecting full-scale traces
//! (§II-D: hundreds of gigabytes, large compute budgets).
//!
//! The scheme preserves what the Dynamic Workload Generator consumes —
//! the evolving *spatial density* of the particle cloud:
//!
//! 1. every synthetic particle adopts one source particle's trajectory
//!    (chosen deterministically from the seed);
//! 2. a per-particle offset, drawn once and *scaled to the cloud's current
//!    extent*, is added at every sample, so the jitter expands and
//!    contracts with the cloud instead of blurring it by a fixed amount;
//! 3. positions are clamped to the trace's domain.
//!
//! Because offsets follow the cloud scale, the density *shape* (and hence
//! per-rank workload fractions) of the source trace is preserved while the
//! particle count — and so the absolute workload — scales to the target.

use crate::stats::boundary_series;
use crate::trace::{ParticleTrace, TraceMeta, TraceSample};
use pic_types::rng::SplitMix64;
use pic_types::{PicError, Result, Vec3};

/// Relative jitter scale: offsets are Gaussian with σ equal to this
/// fraction of the cloud extent per axis.
const JITTER_FRACTION: f64 = 0.04;

/// Extrapolate `source` to `target_count` particles.
///
/// Works for both up-scaling (the paper's use case) and down-scaling
/// (useful for quick previews). Fails on an empty source trace.
pub fn extrapolate(
    source: &ParticleTrace,
    target_count: usize,
    seed: u64,
) -> Result<ParticleTrace> {
    if source.is_empty() {
        return Err(PicError::trace("cannot extrapolate an empty trace"));
    }
    if target_count == 0 {
        return Err(PicError::trace("target particle count must be positive"));
    }
    let n_src = source.particle_count();
    let mut rng = SplitMix64::new(seed);

    // Per-target-particle: a source index and a unit-scale offset.
    let assignments: Vec<u64> = (0..target_count)
        .map(|_| rng.next_below(n_src as u64))
        .collect();
    let offsets: Vec<Vec3> = (0..target_count)
        .map(|_| {
            Vec3::new(
                rng.next_gaussian(),
                rng.next_gaussian(),
                rng.next_gaussian(),
            ) * JITTER_FRACTION
        })
        .collect();

    let boundaries = boundary_series(source);
    let domain = source.meta().domain;
    let meta = TraceMeta::new(
        target_count,
        source.meta().sample_interval,
        domain,
        format!(
            "extrapolated x{:.2} from: {}",
            target_count as f64 / n_src as f64,
            source.meta().description
        ),
    );
    let mut out = ParticleTrace::new(meta);
    for (t, sample) in source.samples().enumerate() {
        let ext = boundaries[t].extent();
        let mut positions = Vec::with_capacity(target_count);
        for j in 0..target_count {
            let base = sample.positions[assignments[j] as usize];
            let o = offsets[j];
            let p = base + Vec3::new(o.x * ext.x, o.y * ext.y, o.z * ext.z);
            positions.push(p.clamp(domain.min, domain.max));
        }
        out.push_sample(TraceSample {
            iteration: sample.iteration,
            positions,
        })?;
    }
    Ok(out)
}

/// Density-similarity diagnostic: split each trace's domain into
/// `cells_per_axis`³ cells and compare per-cell mass fractions at sample
/// `t`. Returns the total variation distance in `[0, 1]` (0 = identical
/// distributions).
///
/// Used to judge whether an extrapolated trace is *representative* —
/// the quality criterion the paper's future-work discussion sets.
pub fn density_distance(
    a: &ParticleTrace,
    b: &ParticleTrace,
    t: usize,
    cells_per_axis: usize,
) -> f64 {
    assert!(cells_per_axis > 0, "need at least one cell");
    let n = cells_per_axis;
    // Each trace is binned in its *own* domain: the comparison is between
    // relative density shapes, so a trace living in a translated or scaled
    // domain must not have its mass saturated into `a`'s edge cells.
    let hist = |tr: &ParticleTrace| -> Vec<f64> {
        let domain = tr.meta().domain;
        let ext = domain.extent();
        let cell_of = |p: Vec3| -> usize {
            let rel = p - domain.min;
            let idx = |v: f64, e: f64| (((v / e.max(1e-30)) * n as f64) as usize).min(n - 1);
            idx(rel.x, ext.x) + n * (idx(rel.y, ext.y) + n * idx(rel.z, ext.z))
        };
        let mut h = vec![0.0; n * n * n];
        let pos = tr.positions_at(t);
        for &p in pos {
            h[cell_of(p)] += 1.0;
        }
        let total = pos.len().max(1) as f64;
        for v in &mut h {
            *v /= total;
        }
        h
    };
    let ha = hist(a);
    let hb = hist(b);
    0.5 * ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_types::Aabb;

    /// A concentrated-then-dispersing source trace.
    fn source_trace(np: usize) -> ParticleTrace {
        let mut rng = SplitMix64::new(77);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(0.0, 1.0),
                )
            })
            .collect();
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "source");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..5 {
            let s = 0.05 + 0.15 * k as f64;
            tr.push_positions(
                dirs.iter()
                    .map(|d| (Vec3::new(0.5, 0.5, 0.1) + *d * s).clamp(Vec3::ZERO, Vec3::ONE))
                    .collect(),
            )
            .unwrap();
        }
        tr
    }

    #[test]
    fn upscales_particle_count() {
        let src = source_trace(200);
        let big = extrapolate(&src, 2000, 1).unwrap();
        assert_eq!(big.particle_count(), 2000);
        assert_eq!(big.sample_count(), src.sample_count());
        assert_eq!(big.iterations(), src.iterations());
        // all positions in domain
        for t in 0..big.sample_count() {
            for p in big.positions_at(t) {
                assert!(Aabb::unit().contains_closed(*p));
            }
        }
    }

    #[test]
    fn downscales_too() {
        let src = source_trace(500);
        let small = extrapolate(&src, 50, 2).unwrap();
        assert_eq!(small.particle_count(), 50);
    }

    #[test]
    fn is_deterministic_in_seed() {
        let src = source_trace(100);
        let a = extrapolate(&src, 400, 9).unwrap();
        let b = extrapolate(&src, 400, 9).unwrap();
        assert_eq!(a, b);
        let c = extrapolate(&src, 400, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn density_shape_is_preserved() {
        let src = source_trace(2000);
        let big = extrapolate(&src, 10_000, 3).unwrap();
        for t in [0, 2, 4] {
            let d = density_distance(&src, &big, t, 4);
            assert!(d < 0.15, "sample {t}: density distance {d}");
        }
        // sanity: against a uniform cloud the distance is large
        let meta = TraceMeta::new(2000, 100, Aabb::unit(), "uniform");
        let mut uni = ParticleTrace::new(meta);
        let mut rng = SplitMix64::new(5);
        for _ in 0..5 {
            uni.push_positions(
                (0..2000)
                    .map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64()))
                    .collect(),
            )
            .unwrap();
        }
        assert!(density_distance(&src, &uni, 0, 4) > 0.5);
    }

    #[test]
    fn boundary_growth_is_mirrored() {
        let src = source_trace(500);
        let big = extrapolate(&src, 5000, 4).unwrap();
        let sv = crate::stats::boundary_volume_series(&src);
        let bv = crate::stats::boundary_volume_series(&big);
        // both expand monotonically
        for k in 1..sv.len() {
            assert!(
                bv[k] >= bv[k - 1] * 0.9,
                "extrapolated boundary shrank at {k}"
            );
        }
        // extrapolated boundary is within ~35 % of the source (jitter inflates it)
        for k in 0..sv.len() {
            assert!(
                bv[k] <= sv[k] * 2.5 + 1e-6,
                "sample {k}: {} vs {}",
                bv[k],
                sv[k]
            );
        }
    }

    #[test]
    fn errors_on_bad_inputs() {
        let empty = ParticleTrace::new(TraceMeta::new(5, 10, Aabb::unit(), "e"));
        assert!(extrapolate(&empty, 100, 1).is_err());
        let src = source_trace(10);
        assert!(extrapolate(&src, 0, 1).is_err());
    }

    #[test]
    fn density_distance_is_zero_for_identical() {
        let src = source_trace(300);
        assert_eq!(density_distance(&src, &src, 0, 4), 0.0);
    }

    #[test]
    fn density_distance_bins_each_trace_in_its_own_domain() {
        // The same cloud shape translated into a disjoint domain must
        // compare as identical — the old code binned `b` with `a`'s
        // domain, saturating all of `b`'s mass into one edge cell.
        let src = source_trace(400);
        let shift = Vec3::splat(10.0);
        let domain_b = Aabb::new(Aabb::unit().min + shift, Aabb::unit().max + shift);
        let meta = TraceMeta::new(400, 100, domain_b, "shifted");
        let mut shifted = ParticleTrace::new(meta);
        for t in 0..src.sample_count() {
            shifted
                .push_sample(crate::trace::TraceSample {
                    iteration: src.iterations()[t],
                    positions: src.positions_at(t).iter().map(|&p| p + shift).collect(),
                })
                .unwrap();
        }
        for t in [0, 2, 4] {
            let d = density_distance(&src, &shifted, t, 4);
            assert!(d < 1e-12, "sample {t}: shifted clone at distance {d}");
        }
        // and a genuinely different distribution still reads as far
        let meta = TraceMeta::new(400, 100, domain_b, "corner");
        let mut corner = ParticleTrace::new(meta);
        for t in 0..src.sample_count() {
            corner
                .push_sample(crate::trace::TraceSample {
                    iteration: src.iterations()[t],
                    positions: vec![domain_b.max - Vec3::splat(1e-3); 400],
                })
                .unwrap();
        }
        assert!(density_distance(&src, &corner, 0, 4) > 0.5);
    }
}
