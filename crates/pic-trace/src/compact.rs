//! Compact trace codec: delta-encoded, quantized positions.
//!
//! Layout (all little-endian), sharing the raw codec's header shape —
//! only the magic distinguishes the two formats, so readers can sniff
//! the first eight bytes and dispatch:
//!
//! ```text
//! header:  magic "PICTRC02" | precision u8 | pad [u8;3] | sample_interval u32
//!          | particle_count u64 | domain min/max 6×f64
//!          | desc_len u32 | desc utf-8 bytes
//! qbox:    quantization box min/max 6×f64 (tight bounds of every position)
//! frame:   iteration u64 | width u8 | pad [u8;3] | payload
//! ```
//!
//! Positions are quantized onto a uniform grid over the quantization box
//! — 32 bits per axis under [`Precision::F64`], 16 under
//! [`Precision::F32`] — and stored as per-particle deltas against the
//! previous frame. `width` is the bytes per delta (zigzag-encoded, so
//! small drifts in either direction stay small); `width 0` marks an
//! *absolute* frame storing the full quantized coordinates (always the
//! first frame, and any frame whose deltas overflow the widest delta).
//! Particles drift a tiny fraction of the domain per sample, so steady
//! state is width 1–2: 3–6 bytes per particle per frame against the raw
//! codec's 24 at `f64` — a 4–8× size reduction at a quantization error
//! bounded by half a grid step (`extent / 2^33` per axis at 32 bits).
//!
//! The robustness contract matches the raw codec and is exercised by the
//! same fault-injection corpus: decoding arbitrary bytes never panics,
//! allocations are never driven by unvalidated header fields, truncation
//! and I/O faults surface as positioned [`TraceError`]s, and delta
//! arithmetic wraps modulo the grid so corrupt payloads still decode to
//! finite in-box positions (caught downstream by the trace invariants).

use crate::codec::{
    self, encode_header_with_magic, header_err, parse_header, read_fully, Precision, TraceReader,
    READ_CHUNK_BYTES,
};
use crate::trace::{ParticleTrace, TraceMeta, TraceSample};
use bytes::BufMut;
use pic_types::{Aabb, PicError, Result, TraceError, TraceErrorKind, Vec3};
use std::io::{Cursor, Read, Write};
use std::path::Path;

/// File magic for the compact (delta + quantized) trace format.
pub const COMPACT_MAGIC: &[u8; 8] = b"PICTRC02";

/// Byte length of the quantization-box section that follows the header.
pub const QBOX_LEN: usize = 48;

/// Frame-head bytes: iteration word, width byte, reserved padding.
const FRAME_HEAD_LEN: usize = 12;

/// Bytes per quantized coordinate for a precision tag: the compact codec
/// maps `F64` to a 32-bit grid and `F32` to a 16-bit grid.
pub fn quant_bytes(precision: Precision) -> usize {
    match precision {
        Precision::F64 => 4,
        Precision::F32 => 2,
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Delta widths the format admits for a grid of `qbytes` bytes, narrowest
/// first. Deltas that fit none of these force an absolute (width 0) frame.
fn allowed_widths(qbytes: usize) -> &'static [usize] {
    if qbytes == 4 {
        &[1, 2, 4]
    } else {
        &[1, 2]
    }
}

/// Uniform quantization grid over a box: `q = round((x-lo)/ext * maxq)`.
#[derive(Debug, Clone)]
struct Quantizer {
    lo: [f64; 3],
    hi: [f64; 3],
    ext: [f64; 3],
    maxq: f64,
    mask: u64,
}

impl Quantizer {
    fn new(qbox: &Aabb, qbytes: usize) -> Quantizer {
        let bits = 8 * qbytes as u32;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        Quantizer {
            lo: [qbox.min.x, qbox.min.y, qbox.min.z],
            hi: [qbox.max.x, qbox.max.y, qbox.max.z],
            ext: [
                qbox.max.x - qbox.min.x,
                qbox.max.y - qbox.min.y,
                qbox.max.z - qbox.min.z,
            ],
            maxq: mask as f64,
            mask,
        }
    }

    #[inline]
    fn quant(&self, axis: usize, x: f64) -> u64 {
        if self.ext[axis] <= 0.0 {
            return 0;
        }
        let t = ((x - self.lo[axis]) / self.ext[axis] * self.maxq).round();
        if t <= 0.0 {
            0
        } else if t >= self.maxq {
            self.mask
        } else {
            t as u64
        }
    }

    #[inline]
    fn dequant(&self, axis: usize, q: u64) -> f64 {
        if self.ext[axis] <= 0.0 {
            self.lo[axis]
        } else {
            // Two-sided lerp hits both endpoints exactly, so the tight box
            // of a decoded trace equals the quantization box bit-for-bit
            // and re-encoding an already-quantized trace is byte-identical.
            let f = q as f64 / self.maxq;
            self.lo[axis] * (1.0 - f) + self.hi[axis] * f
        }
    }
}

/// Validate a quantization box read at stream offset `base`: every corner
/// finite, per-axis `min <= max` (a degenerate axis is legal — it
/// dequantizes to the single coordinate).
fn validate_qbox(corners: &[f64; 6], base: u64) -> Result<Aabb> {
    for (axis, (&lo, &hi)) in corners[..3].iter().zip(&corners[3..]).enumerate() {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(header_err(
                TraceErrorKind::BadHeader,
                format!(
                    "quantization box corners on axis {axis} are not finite and ordered: [{lo}, {hi}]"
                ),
                base + (8 * axis) as u64,
            ));
        }
    }
    Ok(Aabb {
        min: Vec3::new(corners[0], corners[1], corners[2]),
        max: Vec3::new(corners[3], corners[4], corners[5]),
    })
}

/// The tight quantization box of a trace: the AABB of every position in
/// every sample. Falls back to the unit box for a trace holding no
/// positions (nothing to quantize, but the box section must be finite).
pub fn quantization_box(trace: &ParticleTrace) -> Aabb {
    let b = Aabb::from_points(trace.samples().flat_map(|s| s.positions.iter().copied()));
    if b.min.x.is_finite() {
        b
    } else {
        Aabb::unit()
    }
}

/// Pick the delta width (bytes per element) for one frame, or `None` when
/// some delta overflows every admissible width and the frame must be
/// stored absolute. `qvals`/`prev` hold the current and previous frames'
/// quantized coordinates.
fn frame_width(qvals: &[u64], prev: &[u64], qbytes: usize) -> Option<usize> {
    let mut max_z = 0u64;
    for (&q, &p) in qvals.iter().zip(prev) {
        let z = zigzag(q as i64 - p as i64);
        if z > max_z {
            max_z = z;
        }
    }
    allowed_widths(qbytes)
        .iter()
        .copied()
        .find(|&w| w == 8 || max_z < (1u64 << (8 * w)))
}

/// Streaming compact writer: emits the header and quantization box on
/// construction, then one delta/absolute frame per
/// [`CompactWriter::write_sample`] call.
pub struct CompactWriter<W: Write> {
    sink: W,
    particle_count: usize,
    qbytes: usize,
    quant: Quantizer,
    /// Previous frame's quantized coordinates (empty before frame 0).
    prev: Vec<u64>,
    /// Current frame's quantized coordinates (reused scratch).
    qvals: Vec<u64>,
    frames_written: usize,
    bytes_written: u64,
    scratch: Vec<u8>,
}

impl<W: Write> CompactWriter<W> {
    /// Write the header and quantization box and return the writer.
    /// `qbox` must be finite with `min <= max` per axis and should bound
    /// every position that will be written (out-of-box positions clamp to
    /// the box edge).
    pub fn new(
        mut sink: W,
        meta: &TraceMeta,
        precision: Precision,
        qbox: Aabb,
    ) -> Result<CompactWriter<W>> {
        let corners = [
            qbox.min.x, qbox.min.y, qbox.min.z, qbox.max.x, qbox.max.y, qbox.max.z,
        ];
        validate_qbox(&corners, 0).map_err(|_| {
            PicError::trace(format!(
                "quantization box must be finite and ordered, got {qbox:?}"
            ))
        })?;
        let mut header = encode_header_with_magic(meta, precision, COMPACT_MAGIC);
        for c in corners {
            header.put_f64_le(c);
        }
        sink.write_all(&header)?;
        let qbytes = quant_bytes(precision);
        Ok(CompactWriter {
            sink,
            particle_count: meta.particle_count,
            qbytes,
            quant: Quantizer::new(&qbox, qbytes),
            prev: Vec::new(),
            qvals: Vec::new(),
            frames_written: 0,
            bytes_written: header.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// Append one sample frame (absolute for the first sample, narrowest
    /// delta width that fits afterwards).
    pub fn write_sample(&mut self, sample: &TraceSample) -> Result<()> {
        if sample.positions.len() != self.particle_count {
            return Err(PicError::trace(format!(
                "frame has {} positions, header says {}",
                sample.positions.len(),
                self.particle_count
            )));
        }
        self.qvals.clear();
        for p in &sample.positions {
            self.qvals.push(self.quant.quant(0, p.x));
            self.qvals.push(self.quant.quant(1, p.y));
            self.qvals.push(self.quant.quant(2, p.z));
        }
        let width = if self.frames_written == 0 {
            None
        } else {
            frame_width(&self.qvals, &self.prev, self.qbytes)
        };
        self.scratch.clear();
        self.scratch.put_u64_le(sample.iteration);
        self.scratch.put_u8(width.unwrap_or(0) as u8);
        self.scratch.put_slice(&[0u8; 3]);
        match width {
            None => {
                for &q in &self.qvals {
                    self.scratch
                        .extend_from_slice(&q.to_le_bytes()[..self.qbytes]);
                }
            }
            Some(w) => {
                for (&q, &p) in self.qvals.iter().zip(&self.prev) {
                    let z = zigzag(q as i64 - p as i64);
                    self.scratch.extend_from_slice(&z.to_le_bytes()[..w]);
                }
            }
        }
        self.sink.write_all(&self.scratch)?;
        std::mem::swap(&mut self.prev, &mut self.qvals);
        self.frames_written += 1;
        self.bytes_written += self.scratch.len() as u64;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Bytes emitted so far, header and quantization box included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming compact reader. Same robustness contract as
/// [`TraceReader`]: bounds-checked header fields, chunked payload reads,
/// positioned errors, transparent retry of interrupted/short reads.
pub struct CompactReader<R: Read> {
    source: R,
    meta: TraceMeta,
    precision: Precision,
    qbytes: usize,
    quant: Quantizer,
    /// Previous frame's quantized coordinates; grows with decoded data
    /// during the first (absolute) frame, never preallocated from the
    /// header's particle count.
    prev: Vec<u64>,
    frames_read: usize,
    offset: u64,
    chunk: Vec<u8>,
}

impl<R: Read> std::fmt::Debug for CompactReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactReader")
            .field("meta", &self.meta)
            .field("precision", &self.precision)
            .field("frames_read", &self.frames_read)
            .field("offset", &self.offset)
            .finish_non_exhaustive()
    }
}

impl<R: Read> CompactReader<R> {
    /// Parse and validate the header and quantization box.
    pub fn new(mut source: R) -> Result<CompactReader<R>> {
        let h = parse_header(&mut source, COMPACT_MAGIC, "compact pic-trace")?;
        let mut raw = [0u8; QBOX_LEN];
        let got = read_fully(&mut source, &mut raw).map_err(|e| {
            TraceError::new(TraceErrorKind::Io, "quantization box read failed")
                .at_offset(h.offset)
                .with_source(e)
        })?;
        if got < QBOX_LEN {
            return Err(header_err(
                TraceErrorKind::TruncatedHeader,
                format!("stream ends {got} bytes into the {QBOX_LEN}-byte quantization box"),
                h.offset + got as u64,
            ));
        }
        let mut corners = [0.0f64; 6];
        for (i, c) in corners.iter_mut().enumerate() {
            *c = f64::from_le_bytes(raw[8 * i..8 * i + 8].try_into().expect("8-byte corner"));
        }
        let qbox = validate_qbox(&corners, h.offset)?;
        let qbytes = quant_bytes(h.precision);
        Ok(CompactReader {
            source,
            meta: h.meta,
            precision: h.precision,
            qbytes,
            quant: Quantizer::new(&qbox, qbytes),
            prev: Vec::new(),
            frames_read: 0,
            offset: h.offset + QBOX_LEN as u64,
            chunk: Vec::new(),
        })
    }

    /// Trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Precision tag of the file (selects the quantization grid width).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes consumed from the stream so far, header included.
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }

    /// Number of frames read so far.
    pub fn frames_read(&self) -> usize {
        self.frames_read
    }

    /// Read the next frame; `Ok(None)` only at a clean end-of-stream.
    pub fn read_sample(&mut self) -> Result<Option<TraceSample>> {
        let frame = self.frames_read as u64;
        let mut head = [0u8; FRAME_HEAD_LEN];
        let got = read_fully(&mut self.source, &mut head).map_err(|e| {
            TraceError::new(TraceErrorKind::Io, "frame head read failed")
                .at_offset(self.offset)
                .at_frame(frame)
                .with_source(e)
        })?;
        if got == 0 {
            return Ok(None); // clean end-of-stream
        }
        if got < FRAME_HEAD_LEN {
            return Err(TraceError::new(
                TraceErrorKind::TruncatedFrame,
                format!("stream ends {got} bytes into the {FRAME_HEAD_LEN}-byte frame head"),
            )
            .at_offset(self.offset + got as u64)
            .at_frame(frame)
            .into());
        }
        let iteration = u64::from_le_bytes(head[..8].try_into().expect("8-byte word"));
        let width = head[8] as usize;
        if head[9..] != [0u8; 3] {
            return Err(TraceError::new(
                TraceErrorKind::BadHeader,
                "frame head padding is not zero".to_string(),
            )
            .at_offset(self.offset + 9)
            .at_frame(frame)
            .into());
        }
        let elem = if width == 0 {
            self.qbytes
        } else if allowed_widths(self.qbytes).contains(&width) {
            width
        } else {
            return Err(TraceError::new(
                TraceErrorKind::BadHeader,
                format!(
                    "invalid delta width {width} for a {}-byte grid",
                    self.qbytes
                ),
            )
            .at_offset(self.offset + 8)
            .at_frame(frame)
            .into());
        };
        if self.frames_read == 0 && width != 0 {
            return Err(TraceError::new(
                TraceErrorKind::BadHeader,
                format!("first frame must store absolute coordinates (width 0), got {width}"),
            )
            .at_offset(self.offset + 8)
            .at_frame(frame)
            .into());
        }
        self.offset += FRAME_HEAD_LEN as u64;

        let total = 3 * self.meta.particle_count;
        let per_chunk = (READ_CHUNK_BYTES / elem).max(1);
        let mut positions: Vec<Vec3> = Vec::new();
        let mut pending = [0.0f64; 3];
        let mut decoded = 0usize;
        while decoded < total {
            let take = per_chunk.min(total - decoded);
            let want = take * elem;
            self.chunk.resize(want, 0);
            let got = read_fully(&mut self.source, &mut self.chunk[..want]).map_err(|e| {
                TraceError::new(
                    TraceErrorKind::Io,
                    format!("frame payload read failed at iteration {iteration}"),
                )
                .at_offset(self.offset)
                .at_frame(frame)
                .with_source(e)
            })?;
            if got < want {
                let missing = (total - decoded) * elem - got;
                return Err(TraceError::new(
                    TraceErrorKind::TruncatedFrame,
                    format!(
                        "truncated frame at iteration {iteration}: stream ends {missing} byte(s) short"
                    ),
                )
                .at_offset(self.offset + got as u64)
                .at_frame(frame)
                .into());
            }
            self.offset += got as u64;
            for k in 0..take {
                let mut raw = [0u8; 8];
                raw[..elem].copy_from_slice(&self.chunk[k * elem..(k + 1) * elem]);
                let v = u64::from_le_bytes(raw);
                let e = decoded + k;
                let q = if width == 0 {
                    v & self.quant.mask
                } else {
                    // Wrapping on the grid: a corrupt delta still lands on
                    // a valid (finite, in-box) coordinate.
                    self.prev[e].wrapping_add(unzigzag(v) as u64) & self.quant.mask
                };
                if e < self.prev.len() {
                    self.prev[e] = q;
                } else {
                    self.prev.push(q);
                }
                let axis = e % 3;
                pending[axis] = self.quant.dequant(axis, q);
                if axis == 2 {
                    positions.push(Vec3::new(pending[0], pending[1], pending[2]));
                }
            }
            decoded += take;
        }
        self.frames_read += 1;
        Ok(Some(TraceSample {
            iteration,
            positions,
        }))
    }

    /// Read every remaining frame into a [`ParticleTrace`]. Trace-model
    /// invariant violations are positioned at the offending frame.
    pub fn read_all(mut self) -> Result<ParticleTrace> {
        let mut trace = ParticleTrace::new(self.meta.clone());
        while let Some(s) = self.read_sample()? {
            trace.push_sample(s).map_err(|e| self.positioned(e))?;
        }
        Ok(trace)
    }

    fn positioned(&self, e: PicError) -> PicError {
        match e {
            PicError::TraceFormat(mut t) => {
                if t.offset.is_none() {
                    t.offset = Some(self.offset);
                }
                if t.frame.is_none() {
                    t.frame = Some((self.frames_read.saturating_sub(1)) as u64);
                }
                PicError::TraceFormat(t)
            }
            other => other,
        }
    }
}

/// Encode a whole trace into compact bytes, quantizing onto the tight
/// bounding box of its positions.
///
/// The transform is lossy once (to the grid) and stable thereafter:
/// re-encoding a decoded trace reproduces the bytes bit-for-bit.
pub fn encode_compact(trace: &ParticleTrace, precision: Precision) -> Result<Vec<u8>> {
    let qbox = quantization_box(trace);
    let mut w = CompactWriter::new(Vec::new(), trace.meta(), precision, qbox)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    w.finish()
}

/// Decode a compact trace from bytes.
pub fn decode_compact(bytes: &[u8]) -> Result<ParticleTrace> {
    CompactReader::new(bytes)?.read_all()
}

/// Exact encoded size of `trace` under the compact codec, computed
/// without materializing the bytes (one quantization pass).
pub fn encoded_size(trace: &ParticleTrace, precision: Precision) -> u64 {
    let qbox = quantization_box(trace);
    let qbytes = quant_bytes(precision);
    let quant = Quantizer::new(&qbox, qbytes);
    let header = encode_header_with_magic(trace.meta(), precision, COMPACT_MAGIC).len() + QBOX_LEN;
    let mut prev: Vec<u64> = Vec::new();
    let mut qvals: Vec<u64> = Vec::new();
    let mut bytes = header as u64;
    for (k, s) in trace.samples().enumerate() {
        qvals.clear();
        for p in &s.positions {
            qvals.push(quant.quant(0, p.x));
            qvals.push(quant.quant(1, p.y));
            qvals.push(quant.quant(2, p.z));
        }
        let elem = if k == 0 {
            qbytes
        } else {
            frame_width(&qvals, &prev, qbytes).unwrap_or(qbytes)
        };
        bytes += (FRAME_HEAD_LEN + qvals.len() * elem) as u64;
        std::mem::swap(&mut prev, &mut qvals);
    }
    bytes
}

/// Write a trace to a compact file.
pub fn save_file(
    trace: &ParticleTrace,
    path: impl AsRef<Path>,
    precision: Precision,
) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let qbox = quantization_box(trace);
    let mut w = CompactWriter::new(std::io::BufWriter::new(file), trace.meta(), precision, qbox)?;
    for s in trace.samples() {
        w.write_sample(s)?;
    }
    let bytes = w.bytes_written();
    w.finish()?;
    Ok(bytes)
}

/// Source type behind a sniffed reader: the buffered magic bytes chained
/// back in front of the remaining stream.
pub type SniffedSource<R> = std::io::Chain<Cursor<Vec<u8>>, R>;

/// A format-sniffing trace reader: peeks the eight magic bytes and
/// dispatches to the raw [`TraceReader`] or the [`CompactReader`], so
/// every ingest path accepts either format transparently. A stream whose
/// magic matches neither format is a positioned
/// [`TraceErrorKind::BadMagic`] naming both accepted magics.
#[derive(Debug)]
pub enum AnyTraceReader<R: Read> {
    /// Raw `PICTRC01` stream.
    Raw(TraceReader<SniffedSource<R>>),
    /// Compact `PICTRC02` stream.
    Compact(CompactReader<SniffedSource<R>>),
}

impl<R: Read> AnyTraceReader<R> {
    /// Sniff the magic and construct the matching reader.
    pub fn new(mut source: R) -> Result<AnyTraceReader<R>> {
        let mut magic = [0u8; 8];
        let got = read_fully(&mut source, &mut magic).map_err(|e| {
            TraceError::new(TraceErrorKind::Io, "header read failed")
                .at_offset(0)
                .with_source(e)
        })?;
        let replay = Cursor::new(magic[..got].to_vec()).chain(source);
        if got < 8 {
            // Too short even for a magic: let the raw reader produce its
            // canonical truncated-header error.
            return Ok(AnyTraceReader::Raw(TraceReader::new(replay)?));
        }
        if &magic == codec::MAGIC {
            Ok(AnyTraceReader::Raw(TraceReader::new(replay)?))
        } else if &magic == COMPACT_MAGIC {
            Ok(AnyTraceReader::Compact(CompactReader::new(replay)?))
        } else {
            Err(header_err(
                TraceErrorKind::BadMagic,
                format!(
                    "unrecognized trace magic: expected {:?} (raw) or {:?} (compact)",
                    std::str::from_utf8(codec::MAGIC).expect("ascii magic"),
                    std::str::from_utf8(COMPACT_MAGIC).expect("ascii magic"),
                ),
                0,
            ))
        }
    }

    /// Trace metadata from the header.
    pub fn meta(&self) -> &TraceMeta {
        match self {
            AnyTraceReader::Raw(r) => r.meta(),
            AnyTraceReader::Compact(r) => r.meta(),
        }
    }

    /// Precision tag of the file.
    pub fn precision(&self) -> Precision {
        match self {
            AnyTraceReader::Raw(r) => r.precision(),
            AnyTraceReader::Compact(r) => r.precision(),
        }
    }

    /// True when the underlying stream is the compact format.
    pub fn is_compact(&self) -> bool {
        matches!(self, AnyTraceReader::Compact(_))
    }

    /// Bytes consumed from the stream so far, header included.
    pub fn bytes_read(&self) -> u64 {
        match self {
            AnyTraceReader::Raw(r) => r.bytes_read(),
            AnyTraceReader::Compact(r) => r.bytes_read(),
        }
    }

    /// Read the next frame; `Ok(None)` only at a clean end-of-stream.
    pub fn read_sample(&mut self) -> Result<Option<TraceSample>> {
        match self {
            AnyTraceReader::Raw(r) => r.read_sample(),
            AnyTraceReader::Compact(r) => r.read_sample(),
        }
    }

    /// Read every remaining frame into a [`ParticleTrace`].
    pub fn read_all(self) -> Result<ParticleTrace> {
        match self {
            AnyTraceReader::Raw(r) => r.read_all(),
            AnyTraceReader::Compact(r) => r.read_all(),
        }
    }
}

/// Decode a trace from bytes in either format (sniffed by magic).
pub fn decode_any(bytes: &[u8]) -> Result<ParticleTrace> {
    AnyTraceReader::new(bytes)?.read_all()
}

/// Load a trace file in either format (sniffed by magic).
pub fn load_file_any(path: impl AsRef<Path>) -> Result<ParticleTrace> {
    let file = std::fs::File::open(path)?;
    AnyTraceReader::new(std::io::BufReader::new(file))?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_trace;

    fn drifting_trace(np: usize, t: usize, step: f64) -> ParticleTrace {
        let meta = TraceMeta::new(np, 10, Aabb::unit(), "compact-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let positions = (0..np)
                .map(|i| {
                    Vec3::new(
                        (0.1 + i as f64 * 0.007 + k as f64 * step).fract().abs(),
                        (0.2 + i as f64 * 0.003 + k as f64 * step * 0.5)
                            .fract()
                            .abs(),
                        0.5,
                    )
                })
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn round_trip_is_stable_and_bounded() {
        let tr = drifting_trace(40, 8, 1e-4);
        for precision in [Precision::F64, Precision::F32] {
            let bytes = encode_compact(&tr, precision).unwrap();
            let back = decode_compact(&bytes).unwrap();
            assert_eq!(back.meta(), tr.meta());
            assert_eq!(back.sample_count(), tr.sample_count());
            let qbox = quantization_box(&tr);
            let bits = 8 * quant_bytes(precision) as u32;
            let maxq = ((1u128 << bits) - 1) as f64;
            for (a, b) in tr.samples().zip(back.samples()) {
                assert_eq!(a.iteration, b.iteration);
                for (pa, pb) in a.positions.iter().zip(&b.positions) {
                    for (va, vb, lo, hi) in [
                        (pa.x, pb.x, qbox.min.x, qbox.max.x),
                        (pa.y, pb.y, qbox.min.y, qbox.max.y),
                        (pa.z, pb.z, qbox.min.z, qbox.max.z),
                    ] {
                        let step = (hi - lo) / maxq;
                        assert!(
                            (va - vb).abs() <= step * 0.5 + f64::EPSILON,
                            "quantization error {} exceeds half-step {}",
                            (va - vb).abs(),
                            step * 0.5
                        );
                    }
                }
            }
            // Idempotent after the first (lossy) pass.
            let again = encode_compact(&back, precision).unwrap();
            assert_eq!(again, bytes);
        }
    }

    #[test]
    fn slow_drift_compresses_well() {
        // Per-sample drift of ~4300 grid units on a 32-bit grid: deltas fit
        // two bytes where raw f64 frames spend 24 bytes per particle.
        let tr = drifting_trace(200, 20, 1e-6);
        let compact = encode_compact(&tr, Precision::F64).unwrap();
        let raw = encode_trace(&tr, Precision::F64).unwrap();
        assert!(
            (compact.len() as f64) < raw.len() as f64 / 3.0,
            "compact {} vs raw {}",
            compact.len(),
            raw.len()
        );
        assert_eq!(encoded_size(&tr, Precision::F64), compact.len() as u64);
        assert_eq!(
            encoded_size(&tr, Precision::F32),
            encode_compact(&tr, Precision::F32).unwrap().len() as u64
        );
    }

    #[test]
    fn large_jumps_fall_back_to_absolute_frames() {
        // Jumps across the whole box overflow every delta width.
        let meta = TraceMeta::new(2, 1, Aabb::unit(), "jumpy");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..4 {
            let x = if k % 2 == 0 { 0.0 } else { 1.0 };
            tr.push_positions(vec![Vec3::new(x, 0.0, 0.0), Vec3::new(1.0 - x, 1.0, 1.0)])
                .unwrap();
        }
        let bytes = encode_compact(&tr, Precision::F64).unwrap();
        let back = decode_compact(&bytes).unwrap();
        assert_eq!(back.sample_count(), 4);
        // every frame absolute: head + 3*2*4 payload each
        let header =
            encode_header_with_magic(tr.meta(), Precision::F64, COMPACT_MAGIC).len() + QBOX_LEN;
        assert_eq!(bytes.len(), header + 4 * (12 + 24));
        for (a, b) in tr.samples().zip(back.samples()) {
            for (pa, pb) in a.positions.iter().zip(&b.positions) {
                assert!((pa.x - pb.x).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sniffing_reader_accepts_both_formats_and_rejects_unknown() {
        let tr = drifting_trace(5, 3, 1e-3);
        let raw = encode_trace(&tr, Precision::F64).unwrap();
        let compact = encode_compact(&tr, Precision::F64).unwrap();
        let r = AnyTraceReader::new(&raw[..]).unwrap();
        assert!(!r.is_compact());
        assert_eq!(r.read_all().unwrap(), tr);
        let r = AnyTraceReader::new(&compact[..]).unwrap();
        assert!(r.is_compact());
        assert_eq!(r.meta(), tr.meta());
        assert_eq!(
            decode_any(&compact).unwrap(),
            decode_compact(&compact).unwrap()
        );
        assert_eq!(decode_any(&raw).unwrap(), tr);

        let err = AnyTraceReader::new(&b"NOTATRC0rest-of-stream"[..]).unwrap_err();
        let d = err.trace_details().expect("structured");
        assert_eq!(d.kind, TraceErrorKind::BadMagic);
        assert_eq!(d.offset, Some(0));
        assert!(err.to_string().contains("PICTRC01"), "{err}");
        assert!(err.to_string().contains("PICTRC02"), "{err}");
    }

    #[test]
    fn empty_and_degenerate_traces_round_trip() {
        // zero samples
        let empty = ParticleTrace::new(TraceMeta::new(3, 1, Aabb::unit(), "empty"));
        let bytes = encode_compact(&empty, Precision::F64).unwrap();
        assert_eq!(decode_compact(&bytes).unwrap().sample_count(), 0);
        // all particles on one plane (degenerate z axis)
        let meta = TraceMeta::new(2, 1, Aabb::unit(), "flat");
        let mut tr = ParticleTrace::new(meta);
        tr.push_positions(vec![Vec3::new(0.1, 0.2, 0.5), Vec3::new(0.9, 0.4, 0.5)])
            .unwrap();
        let bytes = encode_compact(&tr, Precision::F32).unwrap();
        let back = decode_compact(&bytes).unwrap();
        assert_eq!(back.samples().next().unwrap().positions[0].z, 0.5);
    }

    #[test]
    fn first_frame_must_be_absolute() {
        let tr = drifting_trace(2, 2, 1e-4);
        let mut bytes = encode_compact(&tr, Precision::F64).unwrap();
        let header =
            encode_header_with_magic(tr.meta(), Precision::F64, COMPACT_MAGIC).len() + QBOX_LEN;
        // Forge the first frame's width byte to a delta width.
        bytes[header + 8] = 1;
        let err = decode_compact(&bytes).unwrap_err();
        let d = err.trace_details().expect("structured");
        assert_eq!(d.kind, TraceErrorKind::BadHeader);
        assert_eq!(d.frame, Some(0));
        assert!(err.to_string().contains("absolute"), "{err}");
    }
}
