//! Trace statistics: particle-boundary evolution, displacement, sizing.
//!
//! Two paper-level concerns live here:
//! * the **particle boundary** (tight AABB of all particles) per sample —
//!   its expansion over time is what drives bin-count growth in Fig 6;
//! * the **trace-size / sampling-frequency trade-off** (§II-D): bytes per
//!   sample scale with `N_p`, so the estimator lets a user budget a
//!   collection run before making it.

use crate::codec::Precision;
use crate::trace::ParticleTrace;
use pic_types::{Aabb, Vec3};

/// Tight bounding box of every particle at each sample.
///
/// Returns one AABB per sample (empty box for a sample of zero particles —
/// cannot happen for valid traces, but kept total).
pub fn boundary_series(trace: &ParticleTrace) -> Vec<Aabb> {
    trace
        .samples()
        .map(|s| Aabb::from_points(s.positions.iter().copied()))
        .collect()
}

/// Volume of the particle boundary at each sample. Strictly increasing for
/// dispersal problems like Hele-Shaw.
pub fn boundary_volume_series(trace: &ParticleTrace) -> Vec<f64> {
    boundary_series(trace).iter().map(Aabb::volume).collect()
}

/// Per-sample mean displacement of particles relative to the previous
/// sample. First entry is 0 (no predecessor).
pub fn mean_displacement_series(trace: &ParticleTrace) -> Vec<f64> {
    let t = trace.sample_count();
    let mut out = Vec::with_capacity(t);
    if t == 0 {
        return out;
    }
    out.push(0.0);
    for k in 1..t {
        let prev = trace.positions_at(k - 1);
        let cur = trace.positions_at(k);
        let total: f64 = prev.iter().zip(cur).map(|(a, b)| a.distance(*b)).sum();
        out.push(total / prev.len().max(1) as f64);
    }
    out
}

/// Maximum single-particle displacement between consecutive samples, over
/// the whole trace. A displacement larger than an element edge between
/// samples signals an under-sampled trace (the paper's "low sampling
/// frequency does not accurately capture particle movement").
pub fn max_step_displacement(trace: &ParticleTrace) -> f64 {
    let t = trace.sample_count();
    let mut max = 0.0f64;
    for k in 1..t {
        let prev = trace.positions_at(k - 1);
        let cur = trace.positions_at(k);
        for (a, b) in prev.iter().zip(cur) {
            max = max.max(a.distance(*b));
        }
    }
    max
}

/// Centroid of the particle cloud at each sample.
pub fn centroid_series(trace: &ParticleTrace) -> Vec<Vec3> {
    trace
        .samples()
        .map(|s| {
            let n = s.positions.len().max(1) as f64;
            s.positions.iter().fold(Vec3::ZERO, |acc, &p| acc + p) / n
        })
        .collect()
}

/// Estimated on-disk size in bytes of a trace with `particles` particles and
/// `samples` samples at the given precision (header excluded — it is tens of
/// bytes).
pub fn estimated_file_size(particles: usize, samples: usize, precision: Precision) -> u64 {
    let frame = 8 + particles as u64 * 3 * precision.scalar_bytes() as u64;
    frame * samples as u64
}

/// Body-size range of `samples` frames of `particles` particles under the
/// compact (delta + quantized) codec, next to the raw sizing of
/// [`estimated_file_size`]: collection budgeting can weigh both formats
/// before a run. The true size depends on how far particles drift per
/// sample, so this brackets it — see [`compacted_size`] for the exact
/// size of a trace already in hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactSizeEstimate {
    /// Every frame after the first at the narrowest delta width (slowly
    /// drifting particles).
    pub min_bytes: u64,
    /// Every frame absolute (jumps overflowing the widest delta).
    pub max_bytes: u64,
}

/// Estimate the compact-codec body size for a planned collection run.
pub fn estimated_compact_file_size(
    particles: usize,
    samples: usize,
    precision: Precision,
) -> CompactSizeEstimate {
    let qbytes = crate::compact::quant_bytes(precision) as u64;
    let head = 12u64; // iteration + width + padding per frame
    let elems = particles as u64 * 3;
    let absolute = head + elems * qbytes;
    let delta1 = head + elems;
    if samples == 0 {
        return CompactSizeEstimate {
            min_bytes: 0,
            max_bytes: 0,
        };
    }
    CompactSizeEstimate {
        min_bytes: absolute + (samples as u64 - 1) * delta1,
        max_bytes: samples as u64 * absolute,
    }
}

/// Exact compact-codec size of a trace in hand (header included), without
/// materializing the encoded bytes.
pub fn compacted_size(trace: &ParticleTrace, precision: Precision) -> u64 {
    crate::compact::encoded_size(trace, precision)
}

/// Given a total iteration count and a byte budget, the coarsest sampling
/// interval (iterations between samples) that fits the budget. Returns
/// `None` when even a single sample exceeds the budget.
pub fn sampling_interval_for_budget(
    particles: usize,
    total_iterations: u64,
    budget_bytes: u64,
    precision: Precision,
) -> Option<u64> {
    let frame = 8 + particles as u64 * 3 * precision.scalar_bytes() as u64;
    if frame > budget_bytes {
        return None;
    }
    let max_samples = (budget_bytes / frame).max(1);
    Some((total_iterations / max_samples).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceMeta;

    fn expanding_trace() -> ParticleTrace {
        // Two particles that move apart each sample.
        let meta = TraceMeta::new(2, 10, Aabb::centered_cube(10.0), "expand");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..4 {
            let d = k as f64;
            tr.push_positions(vec![Vec3::splat(-d), Vec3::splat(d)])
                .unwrap();
        }
        tr
    }

    #[test]
    fn boundary_expands() {
        let tr = expanding_trace();
        let vols = boundary_volume_series(&tr);
        assert_eq!(vols.len(), 4);
        assert_eq!(vols[0], 0.0); // both particles at origin
        for k in 1..4 {
            assert!(vols[k] > vols[k - 1]);
        }
        let boxes = boundary_series(&tr);
        assert_eq!(boxes[3], Aabb::centered_cube(3.0));
    }

    #[test]
    fn displacement_series() {
        let tr = expanding_trace();
        let d = mean_displacement_series(&tr);
        assert_eq!(d[0], 0.0);
        let step = Vec3::splat(1.0).norm();
        #[allow(clippy::needless_range_loop)]
        for k in 1..4 {
            assert!((d[k] - step).abs() < 1e-12);
        }
        assert!((max_step_displacement(&tr) - step).abs() < 1e-12);
    }

    #[test]
    fn centroid_stays_at_origin_for_symmetric_cloud() {
        let tr = expanding_trace();
        for c in centroid_series(&tr) {
            assert!(c.norm() < 1e-12);
        }
    }

    #[test]
    fn empty_trace_series_are_empty() {
        let tr = ParticleTrace::new(TraceMeta::new(2, 10, Aabb::unit(), "e"));
        assert!(boundary_series(&tr).is_empty());
        assert!(mean_displacement_series(&tr).is_empty());
        assert_eq!(max_step_displacement(&tr), 0.0);
    }

    #[test]
    fn file_size_estimate_matches_codec() {
        use crate::codec::encode_trace;
        let tr = expanding_trace();
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let est = estimated_file_size(2, 4, Precision::F64);
        // header is the only difference
        let header = bytes.len() as u64 - est;
        assert!(header > 0 && header < 200, "header={header}");
    }

    #[test]
    fn budget_sampling_interval() {
        // 1000 particles, f32: frame = 8 + 12000 = 12008 bytes.
        let frame = 8 + 1000 * 12;
        // Budget for 10 frames over 1000 iterations → interval 100.
        let i = sampling_interval_for_budget(1000, 1000, frame * 10, Precision::F32);
        assert_eq!(i, Some(100));
        // Budget too small for one frame.
        assert_eq!(
            sampling_interval_for_budget(1000, 1000, 10, Precision::F32),
            None
        );
        // Huge budget → interval clamps at 1.
        assert_eq!(
            sampling_interval_for_budget(10, 100, u64::MAX / 2, Precision::F64),
            Some(1)
        );
    }

    #[test]
    fn compact_estimate_brackets_the_exact_size() {
        let tr = expanding_trace();
        for precision in [Precision::F64, Precision::F32] {
            let exact = compacted_size(&tr, precision);
            let encoded = crate::compact::encode_compact(&tr, precision).unwrap();
            assert_eq!(exact, encoded.len() as u64);
            // The estimate covers frame bodies; strip the header (the
            // encoded size of the same trace with zero samples).
            let header =
                crate::compact::encode_compact(&ParticleTrace::new(tr.meta().clone()), precision)
                    .unwrap()
                    .len() as u64;
            let body = exact - header;
            let est = estimated_compact_file_size(2, 4, precision);
            assert!(
                est.min_bytes <= body && body <= est.max_bytes,
                "body {body} outside [{}, {}]",
                est.min_bytes,
                est.max_bytes
            );
        }
        let zero = estimated_compact_file_size(10, 0, Precision::F64);
        assert_eq!((zero.min_bytes, zero.max_bytes), (0, 0));
    }

    #[test]
    fn compaction_beats_raw_sizing_for_smooth_traces() {
        // A slow drift: ~43 grid units per sample on the 32-bit grid, so
        // deltas fit one byte and the compact body is ~8x smaller than raw
        // f64 frames.
        let meta = TraceMeta::new(100, 10, Aabb::unit(), "drift");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..20 {
            tr.push_positions(
                (0..100)
                    .map(|i| Vec3::new(0.001 * i as f64 + 1e-9 * k as f64, 0.5, 0.3))
                    .collect(),
            )
            .unwrap();
        }
        let raw = estimated_file_size(100, 20, Precision::F64);
        let compact = compacted_size(&tr, Precision::F64);
        assert!(
            compact * 4 < raw,
            "compact {compact} should be far below raw {raw}"
        );
    }

    #[test]
    fn paper_scale_trace_is_hundreds_of_gigabytes() {
        // §II-D: millions of particles over a million time-steps, sampled
        // every 100 iterations → 10⁴ samples.
        let bytes = estimated_file_size(10_000_000, 10_000, Precision::F64);
        assert!(bytes > 2_000_000_000_000u64); // > 2 TB at f64
        let f32_bytes = estimated_file_size(10_000_000, 10_000, Precision::F32);
        assert!(f32_bytes < bytes);
    }
}
