//! Fault-injection readers for exercising the codec's robustness
//! contract.
//!
//! Trace ingestion is the foundation the whole prediction stack stands on
//! (full-scale traces reach hundreds of gigabytes, §II-D), so its failure
//! modes are tested as first-class behavior: these adapters wrap any
//! [`Read`] and inject the faults a long-running ingest actually sees —
//! mid-frame truncation, short reads, `Interrupted` storms, hard I/O
//! errors at a byte position, and bit corruption. They are deterministic,
//! dependency-free, and shared by the property tests in `pic-trace` and
//! the streaming-shutdown tests in `pic-workload`.

use std::io::{Error, ErrorKind, Read};

/// Ends the stream (clean `Ok(0)` EOF) after `limit` bytes, regardless of
/// how much the inner reader holds. Models a file truncated at an
/// arbitrary byte boundary.
pub struct TruncateAt<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> TruncateAt<R> {
    /// Wrap `inner`, exposing only its first `limit` bytes.
    pub fn new(inner: R, limit: u64) -> TruncateAt<R> {
        TruncateAt {
            inner,
            remaining: limit,
        }
    }
}

impl<R: Read> Read for TruncateAt<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = (self.remaining.min(buf.len() as u64)) as usize;
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// Serves at most `max_per_read` bytes per `read` call, cycling the
/// actual grant through `1..=max_per_read` so every partial-fill size is
/// exercised. Models slow pipes and line-buffered sources.
pub struct ShortReads<R> {
    inner: R,
    max_per_read: usize,
    next: usize,
}

impl<R: Read> ShortReads<R> {
    /// Wrap `inner`, limiting each read to at most `max_per_read` bytes.
    pub fn new(inner: R, max_per_read: usize) -> ShortReads<R> {
        assert!(max_per_read > 0, "short reads must still make progress");
        ShortReads {
            inner,
            max_per_read,
            next: 1,
        }
    }
}

impl<R: Read> Read for ShortReads<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let grant = self.next.min(buf.len());
        self.next = if self.next >= self.max_per_read {
            1
        } else {
            self.next + 1
        };
        self.inner.read(&mut buf[..grant])
    }
}

/// Returns `ErrorKind::Interrupted` on every `period`-th call (then lets
/// the retried call through). A correct reader loop must treat these as
/// retryable, never as data corruption.
pub struct InterruptEvery<R> {
    inner: R,
    period: u32,
    calls: u32,
}

impl<R: Read> InterruptEvery<R> {
    /// Wrap `inner`, interrupting every `period`-th read call.
    pub fn new(inner: R, period: u32) -> InterruptEvery<R> {
        assert!(period > 0, "period must be positive");
        InterruptEvery {
            inner,
            period,
            calls: 0,
        }
    }
}

impl<R: Read> Read for InterruptEvery<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.calls += 1;
        if self.calls.is_multiple_of(self.period) {
            return Err(Error::new(ErrorKind::Interrupted, "injected interrupt"));
        }
        self.inner.read(buf)
    }
}

/// Serves bytes normally until byte offset `fail_at`, then fails every
/// subsequent read with `kind`. Models a disk error or revoked permission
/// mid-stream — a *hard* fault the decoder must surface verbatim, not
/// mislabel as truncation.
pub struct FailAt<R> {
    inner: R,
    fail_at: u64,
    served: u64,
    kind: ErrorKind,
}

impl<R: Read> FailAt<R> {
    /// Wrap `inner`, failing with `kind` once `fail_at` bytes were served.
    pub fn new(inner: R, fail_at: u64, kind: ErrorKind) -> FailAt<R> {
        FailAt {
            inner,
            fail_at,
            served: 0,
            kind,
        }
    }
}

impl<R: Read> Read for FailAt<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.served >= self.fail_at {
            return Err(Error::new(self.kind, "injected fault"));
        }
        let cap = ((self.fail_at - self.served).min(buf.len() as u64)) as usize;
        let n = self.inner.read(&mut buf[..cap])?;
        self.served += n as u64;
        Ok(n)
    }
}

/// Flip one bit of `bytes` in place (`bit` indexes bits, LSB-first within
/// each byte). No-op on an empty slice.
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = bit % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// Every "interesting" truncation length of an encoded trace: each
/// structural boundary (header fields, description end, every frame's
/// iteration word and body edges) plus one byte to either side, clamped
/// and deduplicated. Used to enumerate the deterministic truncation
/// corpus without testing every byte of a large encoding.
pub fn truncation_points(encoded_len: usize, desc_len: usize, frame_len: usize) -> Vec<usize> {
    let header = 76 + desc_len;
    let mut cuts = vec![0, 4, 8, 9, 12, 16, 24, 48, 72, 76, header];
    let mut at = header;
    while at <= encoded_len {
        for c in [at.saturating_sub(1), at, at + 1, at + 8, at + frame_len / 2] {
            cuts.push(c);
        }
        if frame_len == 0 {
            break;
        }
        at += frame_len;
    }
    cuts.retain(|&c| c <= encoded_len);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_at_limits_bytes() {
        let data = [7u8; 100];
        let mut r = TruncateAt::new(&data[..], 42);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 42);
    }

    #[test]
    fn short_reads_deliver_everything() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = ShortReads::new(&data[..], 7);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn interrupts_are_transparent_to_read_to_end() {
        let data = vec![3u8; 500];
        let mut r = InterruptEvery::new(&data[..], 3);
        let mut out = Vec::new();
        // read_to_end retries Interrupted per std contract
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn fail_at_serves_then_fails() {
        let data = [1u8; 64];
        let mut r = FailAt::new(&data[..], 10, ErrorKind::PermissionDenied);
        let mut buf = [0u8; 64];
        let mut total = 0;
        loop {
            match r.read(&mut buf) {
                Ok(n) => total += n,
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::PermissionDenied);
                    break;
                }
            }
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn flip_bit_round_trips() {
        let mut b = vec![0u8; 4];
        flip_bit(&mut b, 9);
        assert_eq!(b, vec![0, 2, 0, 0]);
        flip_bit(&mut b, 9);
        assert_eq!(b, vec![0; 4]);
        flip_bit(&mut [], 3); // no-op, no panic
    }

    #[test]
    fn truncation_points_cover_boundaries() {
        let pts = truncation_points(76 + 4 + 2 * 32, 4, 32);
        assert!(pts.contains(&0));
        assert!(pts.contains(&80)); // header end
        assert!(pts.contains(&81)); // one byte into frame 0
        assert!(pts.contains(&112)); // frame boundary
        assert!(pts.iter().all(|&c| c <= 76 + 4 + 64));
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
    }
}
