//! In-memory particle trace model.

use pic_types::{Aabb, PicError, Result, Vec3};
use serde::{Deserialize, Serialize};

/// Metadata describing how a trace was collected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Number of particles tracked (constant over the trace — PIC particle
    /// populations are conserved).
    pub particle_count: usize,
    /// Application iterations between consecutive samples (the paper sampled
    /// every 100 iterations).
    pub sample_interval: u32,
    /// The computational domain the particles live in.
    pub domain: Aabb,
    /// Free-form description of the run that produced the trace (scenario
    /// name, seed, source system).
    pub description: String,
}

impl TraceMeta {
    /// Convenience constructor.
    pub fn new(
        particle_count: usize,
        sample_interval: u32,
        domain: Aabb,
        description: impl Into<String>,
    ) -> TraceMeta {
        TraceMeta {
            particle_count,
            sample_interval,
            domain,
            description: description.into(),
        }
    }
}

/// One sample: every particle's position at a given application iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Application iteration the sample was taken at.
    pub iteration: u64,
    /// Position of particle `i` at `positions[i]`.
    pub positions: Vec<Vec3>,
}

/// A complete particle trace: metadata plus `T` samples.
///
/// Invariants (enforced by [`ParticleTrace::push_sample`]):
/// * every sample holds exactly `meta.particle_count` positions;
/// * sample iterations are strictly increasing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleTrace {
    meta: TraceMeta,
    samples: Vec<TraceSample>,
}

impl ParticleTrace {
    /// Create an empty trace with the given metadata.
    pub fn new(meta: TraceMeta) -> ParticleTrace {
        ParticleTrace {
            meta,
            samples: Vec::new(),
        }
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Number of particles per sample (the paper's `N_p`).
    pub fn particle_count(&self) -> usize {
        self.meta.particle_count
    }

    /// Number of samples collected (the paper's `T`).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a sample, validating the trace invariants.
    pub fn push_sample(&mut self, sample: TraceSample) -> Result<()> {
        if sample.positions.len() != self.meta.particle_count {
            return Err(PicError::trace(format!(
                "sample at iteration {} has {} positions, expected {}",
                sample.iteration,
                sample.positions.len(),
                self.meta.particle_count
            )));
        }
        if let Some(last) = self.samples.last() {
            if sample.iteration <= last.iteration {
                return Err(PicError::trace(format!(
                    "sample iterations must increase: {} after {}",
                    sample.iteration, last.iteration
                )));
            }
        }
        // Non-finite coordinates poison every downstream consumer (mapping
        // comparators, bounding boxes); reject them at the boundary.
        if let Some(i) = sample.positions.iter().position(|p| !p.is_finite()) {
            return Err(PicError::trace(format!(
                "particle {i} has a non-finite position at iteration {}",
                sample.iteration
            )));
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Convenience: append positions at the next iteration
    /// (`last + sample_interval`, or 0 for the first sample).
    pub fn push_positions(&mut self, positions: Vec<Vec3>) -> Result<()> {
        let iteration = match self.samples.last() {
            Some(s) => s.iteration + self.meta.sample_interval as u64,
            None => 0,
        };
        self.push_sample(TraceSample {
            iteration,
            positions,
        })
    }

    /// The `t`-th sample.
    pub fn sample(&self, t: usize) -> &TraceSample {
        &self.samples[t]
    }

    /// Positions at sample `t` (panics if out of range).
    pub fn positions_at(&self, t: usize) -> &[Vec3] {
        &self.samples[t].positions
    }

    /// Iterate over samples in order.
    pub fn samples(&self) -> impl Iterator<Item = &TraceSample> {
        self.samples.iter()
    }

    /// Iterations at which samples were taken.
    pub fn iterations(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.iteration).collect()
    }

    /// Keep only every `stride`-th sample (starting with the first).
    ///
    /// Models the paper's sampling-frequency trade-off: a coarser trace is
    /// smaller but captures particle movement less faithfully.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn subsample(&self, stride: usize) -> ParticleTrace {
        assert!(stride > 0, "subsample stride must be positive");
        let mut meta = self.meta.clone();
        meta.sample_interval = self.meta.sample_interval.saturating_mul(stride as u32);
        ParticleTrace {
            meta,
            samples: self.samples.iter().step_by(stride).cloned().collect(),
        }
    }

    /// Truncate the trace to its first `t` samples.
    pub fn truncate(&mut self, t: usize) {
        self.samples.truncate(t);
    }

    /// Consume the trace, returning its samples.
    pub fn into_samples(self) -> Vec<TraceSample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(n: usize) -> TraceMeta {
        TraceMeta::new(n, 100, Aabb::unit(), "test")
    }

    fn pos(n: usize, v: f64) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::splat(v + i as f64 * 0.001)).collect()
    }

    #[test]
    fn push_enforces_particle_count() {
        let mut tr = ParticleTrace::new(meta(3));
        assert!(tr.push_positions(pos(3, 0.1)).is_ok());
        let err = tr.push_positions(pos(2, 0.2));
        assert!(err.is_err());
        assert_eq!(tr.sample_count(), 1);
    }

    #[test]
    fn push_enforces_monotone_iterations() {
        let mut tr = ParticleTrace::new(meta(1));
        tr.push_sample(TraceSample {
            iteration: 100,
            positions: pos(1, 0.0),
        })
        .unwrap();
        let dup = tr.push_sample(TraceSample {
            iteration: 100,
            positions: pos(1, 0.1),
        });
        assert!(dup.is_err());
        let back = tr.push_sample(TraceSample {
            iteration: 50,
            positions: pos(1, 0.1),
        });
        assert!(back.is_err());
    }

    #[test]
    fn push_rejects_non_finite_positions() {
        let mut tr = ParticleTrace::new(meta(2));
        let bad = vec![Vec3::splat(0.5), Vec3::new(f64::NAN, 0.0, 0.0)];
        let err = tr.push_positions(bad).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        let inf = vec![Vec3::splat(0.5), Vec3::new(0.0, f64::INFINITY, 0.0)];
        assert!(tr.push_positions(inf).is_err());
        assert!(tr.is_empty());
    }

    #[test]
    fn push_positions_advances_by_interval() {
        let mut tr = ParticleTrace::new(meta(2));
        tr.push_positions(pos(2, 0.1)).unwrap();
        tr.push_positions(pos(2, 0.2)).unwrap();
        tr.push_positions(pos(2, 0.3)).unwrap();
        assert_eq!(tr.iterations(), vec![0, 100, 200]);
    }

    #[test]
    fn accessors() {
        let mut tr = ParticleTrace::new(meta(2));
        assert!(tr.is_empty());
        tr.push_positions(pos(2, 0.5)).unwrap();
        assert!(!tr.is_empty());
        assert_eq!(tr.particle_count(), 2);
        assert_eq!(tr.positions_at(0), &pos(2, 0.5)[..]);
        assert_eq!(tr.sample(0).iteration, 0);
        assert_eq!(tr.samples().count(), 1);
    }

    #[test]
    fn subsample_keeps_every_stride() {
        let mut tr = ParticleTrace::new(meta(1));
        for i in 0..10 {
            tr.push_positions(pos(1, i as f64 * 0.05)).unwrap();
        }
        let s = tr.subsample(3);
        assert_eq!(s.sample_count(), 4); // samples 0,3,6,9
        assert_eq!(s.iterations(), vec![0, 300, 600, 900]);
        assert_eq!(s.meta().sample_interval, 300);
        assert_eq!(s.positions_at(1), tr.positions_at(3));
    }

    #[test]
    #[should_panic]
    fn subsample_zero_stride_panics() {
        ParticleTrace::new(meta(1)).subsample(0);
    }

    #[test]
    fn truncate_shortens() {
        let mut tr = ParticleTrace::new(meta(1));
        for i in 0..5 {
            tr.push_positions(pos(1, i as f64 * 0.1)).unwrap();
        }
        tr.truncate(2);
        assert_eq!(tr.sample_count(), 2);
    }
}
