//! Per-sample feature vectors for phase clustering.
//!
//! SimPoint-style trace reduction needs a compact signature of "what the
//! workload drivers are doing" at each sample, cheap enough to compute
//! for every sample of a long trace (one pass over positions — orders of
//! magnitude cheaper than replaying the mapping algorithm). Four
//! ingredients, all derived from the quantities the Dynamic Workload
//! Generator actually responds to:
//!
//! * a **normalized density histogram** over a fixed reference binning
//!   (the tight bounding box of the whole trace, `bins_per_axis`³ cells)
//!   — the spatial load distribution every mapping algorithm partitions;
//! * the **migration rate** — the fraction of particles that changed
//!   reference bin since the previous sample, a proxy for communication
//!   volume;
//! * the **bin-occupancy spread** — total-variation distance of the
//!   histogram from uniform, a proxy for load imbalance;
//! * the **boundary-volume delta** — relative growth of the per-sample
//!   tight bounding box, the driver of bin-count evolution (Fig 6).
//!
//! Two samples with close feature vectors impose near-identical per-rank
//! workloads under any fixed configuration, which is what makes a
//! cluster representative's replay stand in for its whole cluster.

use crate::stats;
use crate::trace::ParticleTrace;
use pic_types::Aabb;

/// Configuration for [`feature_vectors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Cells per axis of the reference density binning (the histogram has
    /// `bins_per_axis`³ entries). Must be at least 1.
    pub bins_per_axis: usize,
}

impl Default for FeatureConfig {
    fn default() -> FeatureConfig {
        FeatureConfig { bins_per_axis: 4 }
    }
}

impl FeatureConfig {
    /// Dimensionality of the produced vectors: the histogram plus the
    /// three scalar features.
    pub fn dim(&self) -> usize {
        self.bins_per_axis.pow(3) + 3
    }
}

/// Reference-bin index of a position within `bounds` (clamped).
#[inline]
fn bin_of(p: pic_types::Vec3, bounds: &Aabb, b: usize) -> u32 {
    let mut idx = 0u32;
    for (x, lo, hi) in [
        (p.x, bounds.min.x, bounds.max.x),
        (p.y, bounds.min.y, bounds.max.y),
        (p.z, bounds.min.z, bounds.max.z),
    ] {
        let ext = hi - lo;
        let cell = if ext > 0.0 {
            (((x - lo) / ext * b as f64) as usize).min(b - 1)
        } else {
            0
        };
        idx = idx * b as u32 + cell as u32;
    }
    idx
}

/// One feature vector per sample, in sample order.
///
/// Deterministic and sequential: the extraction is a single pass over the
/// trace, independent of thread count. Returns an empty vector for an
/// empty trace.
pub fn feature_vectors(trace: &ParticleTrace, cfg: &FeatureConfig) -> Vec<Vec<f64>> {
    assert!(cfg.bins_per_axis >= 1, "bins_per_axis must be at least 1");
    let t = trace.sample_count();
    if t == 0 {
        return Vec::new();
    }
    let b = cfg.bins_per_axis;
    let cells = b.pow(3);
    let np = trace.particle_count();

    // Fixed reference binning: the tight box of the whole trace, so the
    // same spatial cell means the same thing at every sample.
    let bounds = stats::boundary_series(trace)
        .into_iter()
        .fold(Aabb::empty(), |acc, s| Aabb {
            min: pic_types::Vec3::new(
                acc.min.x.min(s.min.x),
                acc.min.y.min(s.min.y),
                acc.min.z.min(s.min.z),
            ),
            max: pic_types::Vec3::new(
                acc.max.x.max(s.max.x),
                acc.max.y.max(s.max.y),
                acc.max.z.max(s.max.z),
            ),
        });
    let volumes = stats::boundary_volume_series(trace);
    let vol_ref = volumes.iter().cloned().fold(0.0f64, f64::max).max(1e-300);

    let mut out = Vec::with_capacity(t);
    let mut prev_bins: Vec<u32> = Vec::new();
    let mut counts = vec![0u32; cells];
    let mut bins = vec![0u32; np];
    for (k, s) in trace.samples().enumerate() {
        counts.iter_mut().for_each(|c| *c = 0);
        for (i, &p) in s.positions.iter().enumerate() {
            let cell = bin_of(p, &bounds, b);
            bins[i] = cell;
            counts[cell as usize] += 1;
        }
        let inv_np = if np > 0 { 1.0 / np as f64 } else { 0.0 };
        let mut v = Vec::with_capacity(cells + 3);
        for &c in &counts {
            v.push(c as f64 * inv_np);
        }
        // Migration rate: fraction of particles whose reference bin
        // changed since the previous sample (0 for the first).
        let migration = if k == 0 {
            0.0
        } else {
            bins.iter().zip(&prev_bins).filter(|(a, b)| a != b).count() as f64 * inv_np
        };
        v.push(migration);
        // Occupancy spread: total-variation distance from the uniform
        // histogram, in [0, 1).
        let uniform = 1.0 / cells as f64;
        let spread = counts
            .iter()
            .map(|&c| (c as f64 * inv_np - uniform).abs())
            .sum::<f64>()
            * 0.5;
        v.push(spread);
        // Boundary-volume delta relative to the largest boundary volume.
        let dv = if k == 0 {
            0.0
        } else {
            (volumes[k] - volumes[k - 1]) / vol_ref
        };
        v.push(dv);
        out.push(v);
        std::mem::swap(&mut prev_bins, &mut bins);
        if bins.len() != np {
            bins.resize(np, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceMeta;
    use pic_types::Vec3;

    fn two_phase_trace() -> ParticleTrace {
        // Phase A: particles packed into one corner. Phase B: spread out.
        let meta = TraceMeta::new(8, 10, Aabb::unit(), "phases");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..6 {
            let spread = if k < 3 { 0.05 } else { 0.9 };
            let positions = (0..8)
                .map(|i| {
                    let f = i as f64 / 8.0;
                    Vec3::new(0.05 + spread * f, 0.05 + spread * f, 0.05)
                })
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn dimensions_and_normalization() {
        let tr = two_phase_trace();
        let cfg = FeatureConfig { bins_per_axis: 3 };
        let fv = feature_vectors(&tr, &cfg);
        assert_eq!(fv.len(), 6);
        for v in &fv {
            assert_eq!(v.len(), cfg.dim());
            let hist_sum: f64 = v[..27].iter().sum();
            assert!(
                (hist_sum - 1.0).abs() < 1e-12,
                "histogram sums to {hist_sum}"
            );
            assert!(v.iter().all(|x| x.is_finite()));
        }
        // First sample has no predecessor: migration and volume delta 0.
        assert_eq!(fv[0][27], 0.0);
        assert_eq!(fv[0][29], 0.0);
    }

    #[test]
    fn phases_separate_and_transition_shows_migration() {
        let tr = two_phase_trace();
        let cfg = FeatureConfig::default();
        let fv = feature_vectors(&tr, &cfg);
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
        };
        // Within-phase distance is tiny, across-phase is large. Sample 3 is
        // the transition (its migration spikes), so compare steady samples.
        let within = d(&fv[0], &fv[1]).max(d(&fv[4], &fv[5]));
        let across = d(&fv[1], &fv[4]);
        assert!(across > 10.0 * within, "across {across} vs within {within}");
        // The phase switch at sample 3 moves particles between bins.
        let dim = cfg.dim();
        let migration_idx = dim - 3;
        assert!(
            fv[3][migration_idx] > 0.5,
            "migration {:?}",
            fv[3][migration_idx]
        );
        assert_eq!(fv[2][migration_idx], 0.0); // static within phase A
    }

    #[test]
    fn empty_trace_yields_no_vectors() {
        let tr = ParticleTrace::new(TraceMeta::new(4, 10, Aabb::unit(), "empty"));
        assert!(feature_vectors(&tr, &FeatureConfig::default()).is_empty());
    }

    #[test]
    fn deterministic_across_calls() {
        let tr = two_phase_trace();
        let cfg = FeatureConfig { bins_per_axis: 5 };
        assert_eq!(feature_vectors(&tr, &cfg), feature_vectors(&tr, &cfg));
    }
}
