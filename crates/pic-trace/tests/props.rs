//! Property-based tests: trace invariants and codec roundtrips over
//! arbitrary particle populations.

use pic_trace::codec::{decode_trace, encode_trace, Precision};
use pic_trace::{ParticleTrace, TraceMeta};
use pic_types::{Aabb, Vec3};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = ParticleTrace> {
    (1usize..20, 0usize..8, 1u32..1000).prop_flat_map(|(np, t, interval)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
                np..=np,
            ),
            t..=t,
        )
        .prop_map(move |frames| {
            let meta = TraceMeta::new(np, interval, Aabb::centered_cube(1e3), "prop");
            let mut tr = ParticleTrace::new(meta);
            for frame in frames {
                tr.push_positions(frame).unwrap();
            }
            tr
        })
    })
}

proptest! {
    #[test]
    fn f64_codec_roundtrip_exact(tr in trace_strategy()) {
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let back = decode_trace(&bytes).unwrap();
        prop_assert_eq!(back, tr);
    }

    #[test]
    fn f32_codec_roundtrip_close(tr in trace_strategy()) {
        let bytes = encode_trace(&tr, Precision::F32).unwrap();
        let back = decode_trace(&bytes).unwrap();
        prop_assert_eq!(back.sample_count(), tr.sample_count());
        prop_assert_eq!(back.meta(), tr.meta());
        for t in 0..tr.sample_count() {
            for (a, b) in tr.positions_at(t).iter().zip(back.positions_at(t)) {
                // f32 relative precision on coordinates up to 1e3
                prop_assert!(a.distance(*b) < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn encoded_size_matches_estimate(tr in trace_strategy()) {
        for precision in [Precision::F64, Precision::F32] {
            let bytes = encode_trace(&tr, precision).unwrap();
            let body = pic_trace::stats::estimated_file_size(
                tr.particle_count(),
                tr.sample_count(),
                precision,
            );
            let header = bytes.len() as u64 - body;
            // fixed header plus description
            prop_assert!((72..200).contains(&header), "header {header}");
        }
    }

    #[test]
    fn iterations_strictly_increase(tr in trace_strategy()) {
        let iters = tr.iterations();
        for w in iters.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn subsample_stride_one_is_identity(tr in trace_strategy()) {
        prop_assert_eq!(tr.subsample(1), tr);
    }

    #[test]
    fn subsample_composition(tr in trace_strategy(), a in 1usize..4, b in 1usize..4) {
        // subsampling by a then b keeps the same frames as subsampling a*b
        let left = tr.subsample(a).subsample(b);
        let right = tr.subsample(a * b);
        prop_assert_eq!(left.sample_count(), right.sample_count());
        for t in 0..left.sample_count() {
            prop_assert_eq!(left.positions_at(t), right.positions_at(t));
        }
    }

    #[test]
    fn boundary_contains_all_particles(tr in trace_strategy()) {
        let boxes = pic_trace::stats::boundary_series(&tr);
        for (t, b) in boxes.iter().enumerate() {
            for p in tr.positions_at(t) {
                prop_assert!(b.contains_closed(*p));
            }
        }
    }

    #[test]
    fn truncated_bytes_never_panic(tr in trace_strategy(), cut_frac in 0.0..1.0f64) {
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        // decoding may fail, but must not panic and any success must be a prefix
        if let Ok(back) = decode_trace(&bytes[..cut]) {
            prop_assert!(back.sample_count() <= tr.sample_count());
        }
    }

    #[test]
    fn displacement_zero_for_static_trace(np in 1usize..20, t in 2usize..6) {
        let meta = TraceMeta::new(np, 10, Aabb::unit(), "static");
        let mut tr = ParticleTrace::new(meta);
        let frame: Vec<Vec3> = (0..np).map(|i| Vec3::splat(i as f64 * 1e-3)).collect();
        for _ in 0..t {
            tr.push_positions(frame.clone()).unwrap();
        }
        let d = pic_trace::stats::mean_displacement_series(&tr);
        prop_assert!(d.iter().all(|&x| x == 0.0));
        prop_assert_eq!(pic_trace::stats::max_step_displacement(&tr), 0.0);
    }
}
