//! Fault-injection corpus for trace ingestion (the robustness contract):
//!
//! decoding any byte stream — truncations at every structural boundary,
//! random bit flips, arbitrary garbage, `Interrupted` storms, 1-byte
//! short reads — must never panic, never allocate beyond the fixed chunk
//! budget, and on failure must return a *positioned* error naming the
//! byte offset. Run in CI under `--release` too, so `debug_assert!`-off
//! paths are exercised.

use pic_trace::codec::{decode_trace, encode_trace, Precision, MAX_PARTICLE_COUNT};
use pic_trace::fault::{
    flip_bit, truncation_points, FailAt, InterruptEvery, ShortReads, TruncateAt,
};
use pic_trace::{ParticleTrace, TraceMeta, TraceReader};
use pic_types::{Aabb, PicError, TraceErrorKind, Vec3};
use proptest::prelude::*;

fn small_trace(np: usize, t: usize) -> ParticleTrace {
    let meta = TraceMeta::new(np, 50, Aabb::unit(), "fault");
    let mut tr = ParticleTrace::new(meta);
    for k in 0..t {
        let positions = (0..np)
            .map(|i| Vec3::new((i as f64 * 0.01) % 1.0, (k as f64 * 0.1) % 1.0, 0.5))
            .collect();
        tr.push_positions(positions).unwrap();
    }
    tr
}

/// Every codec error must name a byte offset (the acceptance criterion).
fn assert_positioned(err: &PicError) {
    let d = err
        .trace_details()
        .unwrap_or_else(|| panic!("unstructured codec error: {err}"));
    assert!(d.offset.is_some(), "error without byte offset: {err}");
    assert!(
        err.to_string().contains("at byte"),
        "display misses offset: {err}"
    );
}

#[test]
fn truncation_at_every_boundary_is_clean_eof_or_positioned_error() {
    let tr = small_trace(5, 3);
    let desc_len = tr.meta().description.len();
    for precision in [Precision::F64, Precision::F32] {
        let bytes = encode_trace(&tr, precision).unwrap();
        let frame_len = 8 + 5 * 3 * precision.scalar_bytes();
        let header_len = 76 + desc_len;
        for cut in truncation_points(bytes.len(), desc_len, frame_len) {
            match decode_trace(&bytes[..cut]) {
                Ok(back) => {
                    // only exact frame boundaries decode cleanly
                    assert!(cut >= header_len, "cut {cut} decoded without a header");
                    assert_eq!((cut - header_len) % frame_len, 0, "cut {cut} is mid-frame");
                    assert_eq!(back.sample_count(), (cut - header_len) / frame_len);
                }
                Err(e) => assert_positioned(&e),
            }
        }
    }
}

#[test]
fn exhaustive_byte_truncation_of_a_tiny_trace() {
    // Small enough to cut at EVERY byte, not just structural boundaries.
    let tr = small_trace(2, 2);
    let bytes = encode_trace(&tr, Precision::F32).unwrap();
    for cut in 0..=bytes.len() {
        if let Err(e) = decode_trace(&bytes[..cut]) {
            assert_positioned(&e);
        }
    }
}

#[test]
fn interrupted_and_short_reads_still_roundtrip() {
    let tr = small_trace(7, 4);
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    // one-byte reads
    let back = TraceReader::new(ShortReads::new(&bytes[..], 1))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(back, tr);
    // interrupt storm: every other call fails with Interrupted
    let back = TraceReader::new(InterruptEvery::new(&bytes[..], 2))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(back, tr);
    // both at once
    let r = InterruptEvery::new(ShortReads::new(&bytes[..], 3), 2);
    assert_eq!(TraceReader::new(r).unwrap().read_all().unwrap(), tr);
}

#[test]
fn hard_io_fault_is_not_mislabeled_as_truncation() {
    let tr = small_trace(6, 3);
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    for fail_at in [5u64, 30, 90, 150, 250] {
        let r = FailAt::new(&bytes[..], fail_at, std::io::ErrorKind::BrokenPipe);
        let err = match TraceReader::new(r) {
            Err(e) => e,
            Ok(mut reader) => loop {
                match reader.read_sample() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("fault at {fail_at} swallowed"),
                    Err(e) => break e,
                }
            },
        };
        assert_positioned(&err);
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, TraceErrorKind::Io, "fail_at={fail_at}: {err}");
        assert_eq!(
            d.source.as_ref().unwrap().kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }
}

#[test]
fn allocation_stays_bounded_for_adversarial_headers() {
    // Headers claiming up to the particle-count cap with (almost) no body:
    // decode must fail fast via bounded chunk reads. If the old
    // Vec::with_capacity(header_n) path were still live, the largest of
    // these would try to reserve ~760 TiB and abort.
    let tr = small_trace(1, 1);
    let good = encode_trace(&tr, Precision::F64).unwrap();
    for claimed in [1u64 << 20, 1 << 32, MAX_PARTICLE_COUNT] {
        let mut bytes = good.clone();
        bytes[16..24].copy_from_slice(&claimed.to_le_bytes());
        let err = decode_trace(&bytes).unwrap_err();
        assert_positioned(&err);
        assert_eq!(
            err.trace_details().unwrap().kind,
            TraceErrorKind::TruncatedFrame
        );
    }
    // over the cap: rejected at the header, before any body read
    let mut bytes = good;
    bytes[16..24].copy_from_slice(&(MAX_PARTICLE_COUNT + 1).to_le_bytes());
    let err = decode_trace(&bytes).unwrap_err();
    assert_eq!(err.trace_details().unwrap().kind, TraceErrorKind::BadHeader);
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..512)) {
        if let Err(e) = decode_trace(&bytes) {
            let d = e.trace_details();
            prop_assert!(d.is_some(), "unstructured error: {}", e);
            prop_assert!(d.unwrap().offset.is_some(), "unpositioned error: {}", e);
        }
    }

    #[test]
    fn garbage_after_valid_magic_never_panics(tail in collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = b"PICTRC01".to_vec();
        bytes.extend_from_slice(&tail);
        if let Err(e) = decode_trace(&bytes) {
            prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
            prop_assert!(e.trace_details().unwrap().offset.is_some());
        }
    }

    #[test]
    fn bit_flips_never_panic(
        np in 1usize..9,
        t in 1usize..4,
        flips in collection::vec(any::<u64>(), 1..6),
    ) {
        let tr = small_trace(np, t);
        for precision in [Precision::F64, Precision::F32] {
            let mut bytes = encode_trace(&tr, precision).unwrap();
            for &f in &flips {
                flip_bit(&mut bytes, f);
            }
            // corrupt data may still parse (flips in position payloads are
            // invisible to the codec) — it must just never panic, and any
            // failure must carry a position.
            if let Err(e) = decode_trace(&bytes) {
                prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                prop_assert!(e.trace_details().unwrap().offset.is_some());
            }
        }
    }

    #[test]
    fn random_truncation_of_random_traces(
        np in 0usize..12,
        t in 0usize..5,
        cut_frac in 0.0..1.0f64,
    ) {
        let tr = small_trace(np, t);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as u64;
        match TraceReader::new(TruncateAt::new(&bytes[..], cut)) {
            Ok(r) => match r.read_all() {
                Ok(back) => prop_assert!(back.sample_count() <= tr.sample_count()),
                Err(e) => {
                    prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                    prop_assert!(e.trace_details().unwrap().offset.is_some());
                }
            },
            Err(e) => {
                prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                prop_assert!(e.trace_details().unwrap().offset.is_some());
            }
        }
    }
}
