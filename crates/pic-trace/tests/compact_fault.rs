//! Fault-injection corpus for the compact (`PICTRC02`) codec and the
//! magic-sniffing [`AnyTraceReader`]: the same robustness contract the raw
//! codec carries. Decoding any byte stream — truncation at every byte of a
//! tiny trace, random bit flips, `Interrupted` storms, 1-byte short reads,
//! hard I/O faults — must never panic, stay within the bounded chunk
//! budget, and on failure return a byte-positioned error. Corrupt delta
//! payloads decode to finite in-box positions (wrapping grid arithmetic),
//! never to NaN or infinity. Run in CI under `--release` too.

use pic_trace::codec::{encode_trace, Precision};
use pic_trace::compact::{decode_any, decode_compact, encode_compact, quantization_box};
use pic_trace::fault::{flip_bit, FailAt, InterruptEvery, ShortReads, TruncateAt};
use pic_trace::{AnyTraceReader, CompactReader, ParticleTrace, TraceMeta};
use pic_types::{Aabb, PicError, TraceErrorKind, Vec3};
use proptest::prelude::*;

fn small_trace(np: usize, t: usize) -> ParticleTrace {
    let meta = TraceMeta::new(np, 50, Aabb::unit(), "fault");
    let mut tr = ParticleTrace::new(meta);
    for k in 0..t {
        let positions = (0..np)
            .map(|i| Vec3::new((i as f64 * 0.01) % 1.0, (k as f64 * 0.1) % 1.0, 0.5))
            .collect();
        tr.push_positions(positions).unwrap();
    }
    tr
}

fn assert_positioned(err: &PicError) {
    let d = err
        .trace_details()
        .unwrap_or_else(|| panic!("unstructured codec error: {err}"));
    assert!(d.offset.is_some(), "error without byte offset: {err}");
    assert!(
        err.to_string().contains("at byte"),
        "display misses offset: {err}"
    );
}

#[test]
fn exhaustive_byte_truncation_of_a_tiny_compact_trace() {
    let tr = small_trace(2, 3);
    for precision in [Precision::F64, Precision::F32] {
        let bytes = encode_compact(&tr, precision).unwrap();
        for cut in 0..=bytes.len() {
            match decode_compact(&bytes[..cut]) {
                Ok(back) => {
                    // only exact frame boundaries decode cleanly
                    assert!(back.sample_count() <= tr.sample_count(), "cut {cut}");
                }
                Err(e) => assert_positioned(&e),
            }
            // the sniffing path must agree on every prefix
            match decode_any(&bytes[..cut]) {
                Ok(back) => assert!(back.sample_count() <= tr.sample_count()),
                Err(e) => assert_positioned(&e),
            }
        }
    }
}

#[test]
fn interrupted_and_short_reads_still_roundtrip() {
    let tr = small_trace(7, 4);
    let bytes = encode_compact(&tr, Precision::F64).unwrap();
    let oracle = decode_compact(&bytes).unwrap();
    // one-byte reads
    let back = CompactReader::new(ShortReads::new(&bytes[..], 1))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(back, oracle);
    // interrupt storm: every other call fails with Interrupted
    let back = CompactReader::new(InterruptEvery::new(&bytes[..], 2))
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(back, oracle);
    // both at once, through the sniffing reader
    let r = InterruptEvery::new(ShortReads::new(&bytes[..], 3), 2);
    let any = AnyTraceReader::new(r).unwrap();
    assert!(any.is_compact());
    assert_eq!(any.read_all().unwrap(), oracle);
}

#[test]
fn hard_io_fault_is_not_mislabeled_as_truncation() {
    let tr = small_trace(6, 3);
    let bytes = encode_compact(&tr, Precision::F64).unwrap();
    for fail_at in [5u64, 30, 90, 150, 250] {
        let r = FailAt::new(&bytes[..], fail_at, std::io::ErrorKind::BrokenPipe);
        let err = match CompactReader::new(r) {
            Err(e) => e,
            Ok(mut reader) => loop {
                match reader.read_sample() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("fault at {fail_at} swallowed"),
                    Err(e) => break e,
                }
            },
        };
        assert_positioned(&err);
        let d = err.trace_details().unwrap();
        assert_eq!(d.kind, TraceErrorKind::Io, "fail_at={fail_at}: {err}");
        assert_eq!(
            d.source.as_ref().unwrap().kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }
}

#[test]
fn sniffing_reader_dispatches_both_formats_under_faults() {
    let tr = small_trace(4, 3);
    let raw = encode_trace(&tr, Precision::F64).unwrap();
    let compact = encode_compact(&tr, Precision::F64).unwrap();
    // both formats survive 1-byte short reads through the sniffer
    let r = AnyTraceReader::new(ShortReads::new(&raw[..], 1)).unwrap();
    assert!(!r.is_compact());
    assert_eq!(r.read_all().unwrap(), tr);
    let r = AnyTraceReader::new(ShortReads::new(&compact[..], 1)).unwrap();
    assert!(r.is_compact());
    assert_eq!(r.read_all().unwrap(), decode_compact(&compact).unwrap());
    // truncation mid-stream stays positioned through the sniffer
    for cut in [3u64, 8, 40, 100] {
        match AnyTraceReader::new(TruncateAt::new(&compact[..], cut)) {
            Ok(r) => {
                if let Err(e) = r.read_all() {
                    assert_positioned(&e);
                }
            }
            Err(e) => assert_positioned(&e),
        }
    }
}

#[test]
fn unknown_magic_is_a_positioned_bad_magic_error() {
    let err = decode_any(b"PICTRC99 some trailing bytes").unwrap_err();
    let d = err.trace_details().expect("structured");
    assert_eq!(d.kind, TraceErrorKind::BadMagic);
    assert_eq!(d.offset, Some(0));
    assert!(err.to_string().contains("PICTRC01"), "{err}");
    assert!(err.to_string().contains("PICTRC02"), "{err}");
}

proptest! {
    #[test]
    fn arbitrary_bytes_after_compact_magic_never_panic(
        tail in collection::vec(any::<u8>(), 0..512),
    ) {
        let mut bytes = b"PICTRC02".to_vec();
        bytes.extend_from_slice(&tail);
        if let Err(e) = decode_compact(&bytes) {
            let d = e.trace_details();
            prop_assert!(d.is_some(), "unstructured error: {}", e);
            prop_assert!(d.unwrap().offset.is_some(), "unpositioned error: {}", e);
        }
    }

    #[test]
    fn bit_flips_never_panic_and_decode_stays_in_box(
        np in 1usize..9,
        t in 1usize..4,
        flips in collection::vec(any::<u64>(), 1..6),
    ) {
        let tr = small_trace(np, t);
        let qbox = quantization_box(&tr);
        for precision in [Precision::F64, Precision::F32] {
            let mut bytes = encode_compact(&tr, precision).unwrap();
            for &f in &flips {
                flip_bit(&mut bytes, f);
            }
            // Corrupt payloads may still parse; wrapping grid arithmetic
            // must keep every decoded position finite, and positions stay
            // inside the (possibly corrupted) box whenever the header
            // survived intact.
            match decode_compact(&bytes) {
                Ok(back) => {
                    for s in back.samples() {
                        for p in &s.positions {
                            prop_assert!(
                                p.x.is_finite() && p.y.is_finite() && p.z.is_finite(),
                                "non-finite decode {p:?} from box {qbox:?}"
                            );
                        }
                    }
                }
                Err(e) => {
                    prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                    prop_assert!(e.trace_details().unwrap().offset.is_some());
                }
            }
        }
    }

    #[test]
    fn random_truncation_of_random_compact_traces(
        np in 0usize..12,
        t in 0usize..5,
        cut_frac in 0.0..1.0f64,
    ) {
        let tr = small_trace(np, t);
        let bytes = encode_compact(&tr, Precision::F64).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as u64;
        match CompactReader::new(TruncateAt::new(&bytes[..], cut)) {
            Ok(r) => match r.read_all() {
                Ok(back) => prop_assert!(back.sample_count() <= tr.sample_count()),
                Err(e) => {
                    prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                    prop_assert!(e.trace_details().unwrap().offset.is_some());
                }
            },
            Err(e) => {
                prop_assert!(e.trace_details().is_some(), "unstructured error: {}", e);
                prop_assert!(e.trace_details().unwrap().offset.is_some());
            }
        }
    }
}
