//! # pic-types
//!
//! Foundation types shared by every crate in the `pic-predict` workspace:
//! 3-D vectors, axis-aligned bounding boxes, strongly-typed identifiers for
//! ranks / elements / bins / particles, the workspace error type, seeded RNG
//! helpers, and small numeric/statistics utilities (MAPE, percentiles, …).
//!
//! Everything in this crate is deliberately dependency-light and `Copy`-heavy:
//! these types sit on the hot path of the Dynamic Workload Generator, which
//! streams hundreds of millions of particle samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod error;
pub mod hash;
pub mod ids;
pub mod padded;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod vec3;

pub use aabb::Aabb;
pub use error::{PicError, Result, TraceError, TraceErrorKind};
pub use ids::{BinId, ElementId, ParticleId, Rank};
pub use padded::CachePadded;
pub use vec3::{Axis, Vec3};
