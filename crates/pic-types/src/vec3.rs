//! Three-dimensional vector and axis types.
//!
//! [`Vec3`] is the coordinate type used for particle positions, velocities,
//! and forces throughout the workspace. It is a plain `f64` triple with the
//! usual component-wise arithmetic, chosen over an external linear-algebra
//! crate to keep the hot path transparent to the optimizer.

use serde::{Deserialize, Serialize};
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// One of the three coordinate axes.
///
/// Used by the recursive-bisection decomposition and the bin partitioner to
/// name the axis a planar cut is made along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// The x (first) axis.
    X,
    /// The y (second) axis.
    Y,
    /// The z (third) axis.
    Z,
}

impl Axis {
    /// All three axes in order, handy for iteration.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Numeric index of the axis (`X → 0`, `Y → 1`, `Z → 2`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Inverse of [`Axis::index`]. Panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

/// A 3-D vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Construct a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// A vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Squared Euclidean norm. Cheaper than [`Vec3::norm`]; prefer it for
    /// comparisons.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `rhs`.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Squared Euclidean distance to `rhs`.
    #[inline]
    pub fn distance_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Unit vector in the direction of `self`, or zero if `self` is zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component on the given axis.
    #[inline]
    pub fn get(self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Replace the component on the given axis, returning the new vector.
    #[inline]
    pub fn with(self, axis: Axis, value: f64) -> Vec3 {
        let mut v = self;
        v[axis.index()] = value;
        v
    }

    /// Linear interpolation: `self` at `t == 0`, `rhs` at `t == 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise clamp of `self` into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// True if every component is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Construct from an array `[x, y, z]`.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a + b, b + a);
        assert_eq!(a * 1.0, a);
        assert_eq!(-(-a), a);
        assert_eq!((a * 2.0) / 2.0, a);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.dot(x), 1.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn axis_accessors() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.get(Axis::X), 1.0);
        assert_eq!(v.get(Axis::Y), 2.0);
        assert_eq!(v.get(Axis::Z), 3.0);
        assert_eq!(v.with(Axis::Y, 9.0), Vec3::new(1.0, 9.0, 3.0));
        for (i, ax) in Axis::ALL.iter().enumerate() {
            assert_eq!(ax.index(), i);
            assert_eq!(Axis::from_index(i), *ax);
            assert_eq!(v[i], v.get(*ax));
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn clamp_min_max() {
        let lo = Vec3::splat(0.0);
        let hi = Vec3::splat(1.0);
        assert_eq!(
            Vec3::new(-1.0, 0.5, 2.0).clamp(lo, hi),
            Vec3::new(0.0, 0.5, 1.0)
        );
        assert_eq!(
            Vec3::new(2.0, -3.0, 0.0).min(Vec3::ZERO),
            Vec3::new(0.0, -3.0, 0.0)
        );
        assert_eq!(
            Vec3::new(2.0, -3.0, 0.0).max(Vec3::ZERO),
            Vec3::new(2.0, 0.0, 0.0)
        );
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
