//! Workspace error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PicError>;

/// What went wrong while decoding a particle trace.
///
/// Trace files reach hundreds of gigabytes (paper §II-D), so ingestion
/// failures must be *diagnosable from the error alone*: every decoder
/// error carries the byte offset where it was detected and, once past the
/// header, the index of the frame being decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A header field is out of bounds or inconsistent (unknown precision
    /// tag, absurd particle count or description length, non-finite or
    /// unordered domain corners, invalid UTF-8 description).
    BadHeader,
    /// The stream ended before the header was complete.
    TruncatedHeader,
    /// The stream ended mid-frame (partial iteration word or body).
    TruncatedFrame,
    /// A real I/O failure (permissions, disk error, …) interrupted the
    /// decode; the underlying [`std::io::Error`] is preserved as the
    /// source.
    Io,
    /// The decoded data violates a trace invariant (wrong position count,
    /// non-increasing iterations, …).
    Malformed,
}

impl fmt::Display for TraceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceErrorKind::BadMagic => "bad magic",
            TraceErrorKind::BadHeader => "bad header",
            TraceErrorKind::TruncatedHeader => "truncated header",
            TraceErrorKind::TruncatedFrame => "truncated frame",
            TraceErrorKind::Io => "I/O failure",
            TraceErrorKind::Malformed => "malformed trace",
        };
        f.write_str(s)
    }
}

/// A positioned trace-format error: kind, message, byte offset, frame
/// index, and (for [`TraceErrorKind::Io`]) the underlying I/O error.
#[derive(Debug)]
pub struct TraceError {
    /// Failure category.
    pub kind: TraceErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Byte offset into the stream where the error was detected, when the
    /// failing layer tracks stream position (the codec always does).
    pub offset: Option<u64>,
    /// Zero-based index of the frame being decoded, when past the header.
    pub frame: Option<u64>,
    /// The I/O error that caused this, when one did.
    pub source: Option<std::io::Error>,
}

impl TraceError {
    /// Build an error with a kind and message; position via
    /// [`TraceError::at_offset`] / [`TraceError::at_frame`].
    pub fn new(kind: TraceErrorKind, message: impl Into<String>) -> TraceError {
        TraceError {
            kind,
            message: message.into(),
            offset: None,
            frame: None,
            source: None,
        }
    }

    /// Attach the byte offset the error was detected at.
    pub fn at_offset(mut self, offset: u64) -> TraceError {
        self.offset = Some(offset);
        self
    }

    /// Attach the index of the frame being decoded.
    pub fn at_frame(mut self, frame: u64) -> TraceError {
        self.frame = Some(frame);
        self
    }

    /// Attach the underlying I/O error.
    pub fn with_source(mut self, source: std::io::Error) -> TraceError {
        self.source = Some(source);
        self
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.message, self.kind)?;
        if let Some(off) = self.offset {
            write!(f, " at byte {off}")?;
        }
        if let Some(fr) = self.frame {
            write!(f, " in frame {fr}")?;
        }
        if let Some(src) = &self.source {
            write!(f, ": {src}")?;
        }
        Ok(())
    }
}

impl From<TraceError> for PicError {
    fn from(e: TraceError) -> PicError {
        PicError::TraceFormat(Box::new(e))
    }
}

/// Errors produced anywhere in the pic-predict framework.
#[derive(Debug)]
pub enum PicError {
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// A particle trace file is malformed, truncated, or unreadable; see
    /// [`TraceError`] for the position and failure taxonomy.
    TraceFormat(Box<TraceError>),
    /// An I/O failure while reading or writing traces / configs / results.
    Io(std::io::Error),
    /// A model could not be fitted (singular system, empty training set, …).
    ModelFit(String),
    /// The discrete-event simulation reached an inconsistent state.
    Simulation(String),
    /// A geometric query failed (point outside domain, empty grid, …).
    Geometry(String),
}

impl fmt::Display for PicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PicError::Config(m) => write!(f, "configuration error: {m}"),
            PicError::TraceFormat(e) => write!(f, "trace format error: {e}"),
            PicError::Io(e) => write!(f, "I/O error: {e}"),
            PicError::ModelFit(m) => write!(f, "model fitting error: {m}"),
            PicError::Simulation(m) => write!(f, "simulation error: {m}"),
            PicError::Geometry(m) => write!(f, "geometry error: {m}"),
        }
    }
}

impl std::error::Error for PicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PicError::Io(e) => Some(e),
            PicError::TraceFormat(t) => t
                .source
                .as_ref()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PicError {
    fn from(e: std::io::Error) -> Self {
        PicError::Io(e)
    }
}

impl PicError {
    /// Shorthand for a [`PicError::Config`] error.
    pub fn config(msg: impl Into<String>) -> PicError {
        PicError::Config(msg.into())
    }

    /// Shorthand for an unpositioned [`TraceErrorKind::Malformed`] trace
    /// error (trace-model invariant violations; the codec builds positioned
    /// [`TraceError`]s directly).
    pub fn trace(msg: impl Into<String>) -> PicError {
        TraceError::new(TraceErrorKind::Malformed, msg).into()
    }

    /// The structured trace error, when this is one.
    pub fn trace_details(&self) -> Option<&TraceError> {
        match self {
            PicError::TraceFormat(e) => Some(e),
            _ => None,
        }
    }

    /// Shorthand for a [`PicError::ModelFit`] error.
    pub fn model(msg: impl Into<String>) -> PicError {
        PicError::ModelFit(msg.into())
    }

    /// Shorthand for a [`PicError::Simulation`] error.
    pub fn sim(msg: impl Into<String>) -> PicError {
        PicError::Simulation(msg.into())
    }

    /// Shorthand for a [`PicError::Geometry`] error.
    pub fn geometry(msg: impl Into<String>) -> PicError {
        PicError::Geometry(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = PicError::config("bad rank count");
        assert!(e.to_string().contains("bad rank count"));
        let e = PicError::trace("truncated frame");
        assert!(e.to_string().contains("truncated frame"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: PicError = io.into();
        assert!(matches!(e, PicError::Io(_)));
        assert!(e.source().is_some());
        assert!(PicError::config("x").source().is_none());
    }

    #[test]
    fn trace_error_display_carries_position() {
        let e: PicError = TraceError::new(TraceErrorKind::TruncatedFrame, "stream ends early")
            .at_offset(1234)
            .at_frame(7)
            .into();
        let s = e.to_string();
        assert!(s.contains("at byte 1234"), "{s}");
        assert!(s.contains("in frame 7"), "{s}");
        assert!(s.contains("truncated frame"), "{s}");
        let d = e.trace_details().unwrap();
        assert_eq!(d.kind, TraceErrorKind::TruncatedFrame);
        assert_eq!(d.offset, Some(1234));
        assert_eq!(d.frame, Some(7));
    }

    #[test]
    fn trace_io_error_preserves_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no access");
        let e: PicError = TraceError::new(TraceErrorKind::Io, "read failed")
            .at_offset(99)
            .with_source(io)
            .into();
        let src = e.source().expect("source preserved");
        assert!(src.to_string().contains("no access"));
        assert_eq!(
            e.trace_details().unwrap().source.as_ref().unwrap().kind(),
            std::io::ErrorKind::PermissionDenied
        );
    }

    #[test]
    fn kind_display_names_are_stable() {
        for (k, s) in [
            (TraceErrorKind::BadMagic, "bad magic"),
            (TraceErrorKind::BadHeader, "bad header"),
            (TraceErrorKind::TruncatedHeader, "truncated header"),
            (TraceErrorKind::TruncatedFrame, "truncated frame"),
            (TraceErrorKind::Io, "I/O failure"),
            (TraceErrorKind::Malformed, "malformed trace"),
        ] {
            assert_eq!(k.to_string(), s);
        }
    }
}
