//! Workspace error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PicError>;

/// Errors produced anywhere in the pic-predict framework.
#[derive(Debug)]
pub enum PicError {
    /// A configuration value is out of range or inconsistent.
    Config(String),
    /// A particle trace file is malformed or truncated.
    TraceFormat(String),
    /// An I/O failure while reading or writing traces / configs / results.
    Io(std::io::Error),
    /// A model could not be fitted (singular system, empty training set, …).
    ModelFit(String),
    /// The discrete-event simulation reached an inconsistent state.
    Simulation(String),
    /// A geometric query failed (point outside domain, empty grid, …).
    Geometry(String),
}

impl fmt::Display for PicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PicError::Config(m) => write!(f, "configuration error: {m}"),
            PicError::TraceFormat(m) => write!(f, "trace format error: {m}"),
            PicError::Io(e) => write!(f, "I/O error: {e}"),
            PicError::ModelFit(m) => write!(f, "model fitting error: {m}"),
            PicError::Simulation(m) => write!(f, "simulation error: {m}"),
            PicError::Geometry(m) => write!(f, "geometry error: {m}"),
        }
    }
}

impl std::error::Error for PicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PicError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PicError {
    fn from(e: std::io::Error) -> Self {
        PicError::Io(e)
    }
}

impl PicError {
    /// Shorthand for a [`PicError::Config`] error.
    pub fn config(msg: impl Into<String>) -> PicError {
        PicError::Config(msg.into())
    }

    /// Shorthand for a [`PicError::TraceFormat`] error.
    pub fn trace(msg: impl Into<String>) -> PicError {
        PicError::TraceFormat(msg.into())
    }

    /// Shorthand for a [`PicError::ModelFit`] error.
    pub fn model(msg: impl Into<String>) -> PicError {
        PicError::ModelFit(msg.into())
    }

    /// Shorthand for a [`PicError::Simulation`] error.
    pub fn sim(msg: impl Into<String>) -> PicError {
        PicError::Simulation(msg.into())
    }

    /// Shorthand for a [`PicError::Geometry`] error.
    pub fn geometry(msg: impl Into<String>) -> PicError {
        PicError::Geometry(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = PicError::config("bad rank count");
        assert!(e.to_string().contains("bad rank count"));
        let e = PicError::trace("truncated frame");
        assert!(e.to_string().contains("truncated frame"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: PicError = io.into();
        assert!(matches!(e, PicError::Io(_)));
        assert!(e.source().is_some());
        assert!(PicError::config("x").source().is_none());
    }
}
