//! Cache-line padding for per-worker accumulators.

/// Pads (and aligns) a value to a 64-byte cache line so adjacent
/// per-worker accumulators in a `Vec<CachePadded<T>>` never share a line.
///
/// The parallel ghost kernel gives each worker span its own pair of
/// histogram buffers; without padding, the buffer *headers* of
/// neighbouring workers land on one line and every `Vec` length check
/// ping-pongs it between cores. 64 bytes covers x86-64 and all mainstream
/// aarch64 cores (Apple M-series prefetches pairs of lines, but 64-byte
/// exclusivity already removes the sharing that matters here).
#[derive(Debug, Default, Clone)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub fn new(value: T) -> Self {
        Self { value }
    }

    /// Consume the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size_are_line_multiples() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<[u64; 9]>>(), 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(vec![1u32, 2, 3]);
        p.push(4);
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }
}
