//! The workspace-wide shared thread pool.
//!
//! Every parallel entry point (the DWG ghost kernel, the sweep engine's
//! outer configuration fan-out, GP population scoring) routes through
//! [`install`], which lazily builds **one** shared pool sized from
//! `RAYON_NUM_THREADS` (else the core count) and — crucially — *inherits*
//! any budget already in force instead of resetting it. Nested parallel
//! sections therefore subdivide a single machine-wide budget: the sweep's
//! outer config-group loop composed with the inner chunked ghost kernel
//! can never spawn pools-within-pools, and a bench or CLI override
//! (`ThreadPoolBuilder::num_threads(n).install(..)` around a whole run)
//! caps everything beneath it.

use std::sync::OnceLock;

/// Effective thread budget of the calling context.
///
/// Inside a pool scope — a `--threads N` CLI override, a bench override
/// pool, or a worker of a parallel iterator — this is the *ambient*
/// budget ([`rayon::current_num_threads`]), the count [`install`] will
/// actually run under. Only a top-level call reports (and lazily builds)
/// the shared pool's size. Reading the shared pool unconditionally here
/// would both misreport overridden runs in `BENCH_*.json` metadata and
/// force-construct the shared pool from inside the override.
pub fn configured_threads() -> usize {
    if rayon::in_pool_context() {
        rayon::current_num_threads()
    } else {
        shared().current_num_threads()
    }
}

/// The lazily-built shared pool. Prefer [`install`]; this accessor exists
/// for diagnostics (reporting the effective thread count in bench output).
pub fn shared() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .build()
            .expect("shared thread pool construction cannot fail")
    })
}

/// Run `f` under the workspace's shared thread budget.
///
/// If the calling thread is already inside a pool scope (an enclosing
/// [`install`], an explicit bench/CLI pool, or a parallel-iterator
/// worker), `f` runs directly and inherits that budget — installing the
/// shared pool here would *widen* the budget and oversubscribe the
/// machine. Only a top-level call actually enters the shared pool.
pub fn install<R>(f: impl FnOnce() -> R) -> R {
    // A tracked lock held across this entry point is a recorded
    // lock-discipline violation: pool workers can block behind it, or
    // deadlock outright if `f` (or a sibling job) tries to take it.
    crate::sync::note_parallel_entry("pic_types::pool::install");
    if rayon::in_pool_context() {
        f()
    } else {
        shared().install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn install_runs_and_returns() {
        let out = install(|| (0..100usize).into_par_iter().map(|i| i * 2).sum::<usize>());
        assert_eq!(out, 99 * 100);
    }

    #[test]
    fn nested_install_inherits_narrow_budget() {
        // A 1-thread override around an install must not be widened back
        // to the machine budget by the shared pool.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            install(|| assert_eq!(rayon::current_num_threads(), 1));
        });
    }

    #[test]
    fn configured_threads_reports_override_budget() {
        // Regression: under a 1-thread override pool, configured_threads
        // used to read the shared pool (machine width) — the wrong count
        // for bench metadata — and force-built the shared pool to do it.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool.install(|| {
            assert!(rayon::in_pool_context());
            assert_eq!(configured_threads(), 1);
            install(|| assert_eq!(configured_threads(), 1));
        });
    }

    #[test]
    fn top_level_install_enters_shared_pool() {
        install(|| {
            assert!(rayon::in_pool_context());
            assert_eq!(rayon::current_num_threads(), configured_threads());
        });
    }
}
