//! Axis-aligned bounding boxes.
//!
//! [`Aabb`] describes processor domains, spectral-element extents, particle
//! bins, and the overall particle boundary used by the bin-based mapper. The
//! bin partitioner's *recursive planar cut* is expressed as [`Aabb::split_at`].

use crate::vec3::{Axis, Vec3};
use serde::{Deserialize, Serialize};

/// An axis-aligned box, described by its minimum and maximum corners.
///
/// An `Aabb` is considered *valid* when `min` is component-wise `<= max`.
/// The degenerate box returned by [`Aabb::empty`] intentionally violates this
/// so that union-accumulation starts from an identity value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Construct a box from corners. Panics in debug builds if `min > max`
    /// on any axis.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "invalid Aabb: min {min} > max {max}"
        );
        Aabb { min, max }
    }

    /// The *empty* box: the identity of [`Aabb::union`]. Contains no point.
    #[inline]
    pub fn empty() -> Aabb {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// A unit cube `[0,1]^3`.
    #[inline]
    pub fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    /// The cube `[-h, h]^3`.
    #[inline]
    pub fn centered_cube(h: f64) -> Aabb {
        Aabb::new(Vec3::splat(-h), Vec3::splat(h))
    }

    /// Smallest box containing all `points`; [`Aabb::empty`] for an empty
    /// iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        let mut b = Aabb::empty();
        for p in points {
            b.expand(p);
        }
        b
    }

    /// True if this box contains no points (any `min > max` component).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Edge lengths, or zero vector for an empty box.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Geometric center. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Volume (product of edge lengths); zero for empty boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// The axis along which the box is longest. Ties break toward X then Y,
    /// matching the deterministic cut ordering of the bin partitioner.
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            Axis::X
        } else if e.y >= e.z {
            Axis::Y
        } else {
            Axis::Z
        }
    }

    /// Length of the longest edge.
    #[inline]
    pub fn longest_extent(&self) -> f64 {
        let e = self.extent();
        e.x.max(e.y).max(e.z)
    }

    /// Half-open containment test: `min <= p < max` on every axis.
    ///
    /// Half-open boxes tile space without double-counting boundary particles,
    /// which keeps processor ownership unambiguous.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
            && p.z >= self.min.z
            && p.z < self.max.z
    }

    /// Closed containment test: `min <= p <= max` on every axis.
    #[inline]
    pub fn contains_closed(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Grow the box (in place) to include point `p`.
    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// The box inflated by `r` on every side. Used for projection-filter
    /// ghost-particle overlap queries.
    #[inline]
    pub fn inflate(&self, r: f64) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(r),
            max: self.max + Vec3::splat(r),
        }
    }

    /// Smallest box containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// True if the two boxes overlap (closed comparison on every axis).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Squared distance from point `p` to the box (zero if inside).
    #[inline]
    pub fn distance_sq_to_point(&self, p: Vec3) -> f64 {
        let q = p.clamp(self.min, self.max);
        p.distance_sq(q)
    }

    /// True if the sphere at `center` with radius `r` touches the box.
    ///
    /// This is the exact test used to decide whether a particle's projection
    /// filter spills onto a remote processor domain (making it a ghost there).
    ///
    /// ```
    /// use pic_types::{Aabb, Vec3};
    /// let b = Aabb::unit();
    /// assert!(b.intersects_sphere(Vec3::new(1.2, 0.5, 0.5), 0.3));
    /// assert!(!b.intersects_sphere(Vec3::new(1.2, 0.5, 0.5), 0.1));
    /// ```
    #[inline]
    pub fn intersects_sphere(&self, center: Vec3, r: f64) -> bool {
        !self.is_empty() && self.distance_sq_to_point(center) <= r * r
    }

    /// Split the box by a plane at coordinate `at` perpendicular to `axis`,
    /// returning `(low, high)`. The cut coordinate must lie within the box.
    ///
    /// This is a single *planar cut* of the bin-based mapping algorithm's
    /// recursive partition.
    pub fn split_at(&self, axis: Axis, at: f64) -> (Aabb, Aabb) {
        debug_assert!(
            at >= self.min.get(axis) && at <= self.max.get(axis),
            "cut {at} outside box on {axis:?}"
        );
        let mut lo = *self;
        let mut hi = *self;
        lo.max = lo.max.with(axis, at);
        hi.min = hi.min.with(axis, at);
        (lo, hi)
    }

    /// Split at the midpoint of the longest axis.
    pub fn split_mid(&self) -> (Aabb, Aabb) {
        let axis = self.longest_axis();
        self.split_at(axis, 0.5 * (self.min.get(axis) + self.max.get(axis)))
    }
}

impl std::fmt::Display for Aabb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.extent(), Vec3::ZERO);
        assert!(!e.contains(Vec3::ZERO));
        let u = Aabb::unit();
        assert_eq!(e.union(&u), u);
        assert!(!e.intersects(&u));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Vec3::new(0.0, 5.0, -1.0),
            Vec3::new(2.0, -1.0, 4.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let b = Aabb::from_points(pts);
        assert_eq!(b.min, Vec3::new(0.0, -1.0, -1.0));
        assert_eq!(b.max, Vec3::new(2.0, 5.0, 4.0));
        for p in pts {
            assert!(b.contains_closed(p));
        }
    }

    #[test]
    fn half_open_containment_tiles() {
        let (lo, hi) = Aabb::unit().split_at(Axis::X, 0.5);
        let boundary = Vec3::new(0.5, 0.2, 0.2);
        assert!(!lo.contains(boundary));
        assert!(hi.contains(boundary));
        // no point owned by both halves
        assert!(!(lo.contains(boundary) && hi.contains(boundary)));
    }

    #[test]
    fn split_preserves_volume() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        let (lo, hi) = b.split_mid();
        assert!((lo.volume() + hi.volume() - b.volume()).abs() < 1e-12);
        assert_eq!(lo.union(&hi), b);
    }

    #[test]
    fn longest_axis_selection() {
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(3.0, 2.0, 1.0)).longest_axis(),
            Axis::X
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(),
            Axis::Y
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(),
            Axis::Z
        );
        // tie breaks toward X
        assert_eq!(Aabb::unit().longest_axis(), Axis::X);
    }

    #[test]
    fn sphere_intersection() {
        let b = Aabb::unit();
        assert!(b.intersects_sphere(Vec3::splat(0.5), 0.01)); // inside
        assert!(b.intersects_sphere(Vec3::new(1.5, 0.5, 0.5), 0.6)); // touches face
        assert!(!b.intersects_sphere(Vec3::new(1.5, 0.5, 0.5), 0.4)); // misses
                                                                      // corner distance is sqrt(3*0.25) ≈ 0.866 from (1.5,1.5,1.5)
        assert!(b.intersects_sphere(Vec3::splat(1.5), 0.87));
        assert!(!b.intersects_sphere(Vec3::splat(1.5), 0.85));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let b = Aabb::unit().inflate(0.25);
        assert_eq!(b.min, Vec3::splat(-0.25));
        assert_eq!(b.max, Vec3::splat(1.25));
    }

    #[test]
    fn distance_sq_inside_is_zero() {
        let b = Aabb::unit();
        assert_eq!(b.distance_sq_to_point(Vec3::splat(0.5)), 0.0);
        assert_eq!(b.distance_sq_to_point(Vec3::new(2.0, 0.5, 0.5)), 1.0);
    }

    #[test]
    fn expand_is_monotone() {
        let mut b = Aabb::empty();
        b.expand(Vec3::ZERO);
        assert!(!b.is_empty());
        assert!(b.contains_closed(Vec3::ZERO));
        b.expand(Vec3::ONE);
        assert_eq!(b, Aabb::unit());
    }
}
