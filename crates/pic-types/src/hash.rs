//! Dependency-free content hashing (FNV-1a).
//!
//! The serve-side trace registry content-addresses every ingested
//! artifact: the address of a trace is a digest of its raw encoded bytes,
//! so re-ingesting identical bytes lands on the identical registry entry
//! (and a changed byte lands elsewhere). The workspace is offline and
//! vendored, so the digest is a hand-rolled FNV-1a — not cryptographic,
//! but 128 bits of it make accidental collisions vanishingly unlikely for
//! a registry of at most thousands of artifacts. The 64-bit variant
//! serves as a cheap structural fingerprint (e.g. mesh specifications
//! keying assignment-artifact caches).

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a over `bytes`, 64-bit.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Incremental 128-bit FNV-1a digest, for hashing streamed bytes without
/// buffering them (e.g. a request body on its way into the trace decoder).
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
    len: u64,
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// Fresh digest state.
    pub fn new() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
            len: 0,
        }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    /// Bytes absorbed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing was absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The digest of everything absorbed so far.
    pub fn digest(&self) -> u128 {
        self.state
    }

    /// The digest as 32 lowercase hex characters — the registry's
    /// content-address format.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// One-shot 128-bit FNV-1a digest of `bytes`.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut d = Fnv128::new();
    d.update(bytes);
    d.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_64() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut d = Fnv128::new();
        for chunk in data.chunks(37) {
            d.update(chunk);
        }
        assert_eq!(d.digest(), fnv1a_128(&data));
        assert_eq!(d.len(), 10_000);
        assert_eq!(d.hex().len(), 32);
    }

    #[test]
    fn single_byte_change_changes_digest() {
        let a = vec![7u8; 512];
        let mut b = a.clone();
        b[300] ^= 1;
        assert_ne!(fnv1a_128(&a), fnv1a_128(&b));
        assert_ne!(fnv1a_64(&a), fnv1a_64(&b));
    }

    #[test]
    fn empty_digest_is_offset_basis() {
        let d = Fnv128::new();
        assert!(d.is_empty());
        assert_eq!(d.digest(), FNV128_OFFSET);
    }
}
