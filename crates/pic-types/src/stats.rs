//! Small statistics utilities used by model validation and workload metrics.
//!
//! The paper's headline accuracy metric is the **Mean Absolute Percentage
//! Error (MAPE)**; load-balance analysis additionally uses means, maxima,
//! percentiles, and an imbalance factor (max / mean).

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Maximum of a slice; `NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum of a slice; `INFINITY` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Mean Absolute Percentage Error (in percent) between predictions and
/// ground-truth values.
///
/// Pairs whose actual value is zero are skipped (percentage error is
/// undefined there), mirroring standard practice. Returns `0.0` when no
/// valid pairs remain.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "mape: length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Root-mean-square error between predictions and actual values.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let s: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a) * (p - a))
        .sum();
    (s / predicted.len() as f64).sqrt()
}

/// Coefficient of determination R² of predictions against actual values.
///
/// Returns `1.0` for a perfect fit and can be negative for fits worse than
/// the mean. Returns `0.0` for degenerate inputs (empty or zero-variance
/// actuals).
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "r_squared: length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let m = mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - m) * (a - m)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (a - p) * (a - p))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Linear-interpolated percentile (`q` in `[0, 100]`) of a slice.
///
/// Returns `0.0` for an empty slice. The input need not be sorted.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Load-imbalance factor `max / mean` of a per-rank workload snapshot.
///
/// `1.0` means perfectly balanced; returns `0.0` when the mean is zero
/// (no workload anywhere).
pub fn imbalance_factor(per_rank: &[f64]) -> f64 {
    let m = mean(per_rank);
    if m == 0.0 {
        0.0
    } else {
        max(per_rank) / m
    }
}

/// Evenly spaced values from `lo` to `hi` inclusive (`n >= 2`), or `[lo]`
/// for `n == 1`, or empty for `n == 0`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => vec![],
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (n - 1) as f64;
            (0..n).map(|i| lo + step * i as f64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[1.0, 3.0]), 1.0);
        assert_eq!(std_dev(&[1.0, 3.0]), 1.0);
    }

    #[test]
    fn mape_exact_and_skip_zero() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // 10% error on each of two points
        let m = mape(&[1.1, 2.2], &[1.0, 2.0]);
        assert!((m - 10.0).abs() < 1e-9);
        // zero actuals are skipped, not divided by
        let m = mape(&[5.0, 1.1], &[0.0, 1.0]);
        assert!((m - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn mape_length_mismatch_panics() {
        mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
    }

    #[test]
    fn r_squared_perfect_and_mean_fit() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &a).abs() < 1e-12);
        assert_eq!(r_squared(&[], &[]), 0.0);
        assert_eq!(r_squared(&[1.0], &[1.0]), 0.0); // zero variance
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 30.0), 7.0);
    }

    #[test]
    fn imbalance_factor_cases() {
        assert_eq!(imbalance_factor(&[2.0, 2.0, 2.0]), 1.0);
        assert_eq!(imbalance_factor(&[0.0, 0.0]), 0.0);
        assert_eq!(imbalance_factor(&[0.0, 4.0]), 2.0);
    }

    #[test]
    fn linspace_endpoints() {
        assert_eq!(linspace(0.0, 1.0, 0), Vec::<f64>::new());
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }
}
