//! Lock-order witness primitives (DESIGN.md §14).
//!
//! [`TrackedMutex`], [`TrackedCondvar`], and [`TrackedRwLock`] wrap their
//! `std::sync` counterparts with two behavioral changes and one pile of
//! debug-only instrumentation:
//!
//! * **Poison recovery everywhere.** `lock()` / `read()` / `write()`
//!   never panic on a poisoned lock: a panic in one critical section must
//!   not cascade into killing every later thread that touches the same
//!   lock (the resident service's "one panicked handler kills every
//!   subsequent connection" failure mode). Recoveries are counted in the
//!   witness so tests can still see that a panic happened. This is sound
//!   only for critical sections that keep their data structurally valid
//!   at every await-free step — the contract every serve critical section
//!   already meets (bookkeeping only, never partial multi-step updates).
//! * **Predicate-checked waits.** [`TrackedCondvar::wait_while`] is the
//!   blessed waiting API: the predicate re-check on every wakeup is what
//!   makes lost and spurious wakeups harmless. A raw
//!   [`TrackedCondvar::wait_unchecked`] exists for completeness but is
//!   flagged as a lost-wakeup hazard in the witness report.
//! * **Debug-build lock-order witness.** Every tracked lock belongs to a
//!   *class* — a `(name, level)` pair. In debug/test builds each
//!   acquisition records, per thread, the stack of held classes and
//!   checks the declared partial order: a lock may only be acquired while
//!   every held lock has a strictly **lower** level. Violations (including
//!   same-class re-entry, which self-deadlocks a `std::sync::Mutex`) are
//!   recorded, as are the edges of the global class-level lock-order
//!   graph; inserting an edge that closes a cycle — a potential deadlock
//!   even if this particular run got away with it — is also recorded.
//!   [`assert_witness_clean`] turns any recorded violation into a test
//!   failure with the full evidence.
//!
//! In release builds the wrappers are transparent newtypes: no class
//! field, no thread-local bookkeeping, no atomic traffic — only the
//! (branch-predictable) poison-recovery branch `std` already forces on
//! every lock operation. `serve_bench` pins the p50/p99 cost of this
//! claim against `BENCH_SERVE.json`.
//!
//! The declared workspace hierarchy lives with the locks themselves
//! (levels are arguments to the constructors); DESIGN.md §14 tabulates
//! it. Current levels: `serve.registry` (10) < `serve.inflight` (20) <
//! `serve.flight.done` (30) < `serve.shutdown` (40) < `serve.addr` (50)
//! < `workload.assignment_cache` (100, leaf).

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Snapshot of the witness: classes, graph edges, counters, violations.
///
/// Always constructible; in release builds every field is empty/zero
/// because nothing is recorded.
#[derive(Debug, Clone, Default)]
pub struct WitnessReport {
    /// Registered lock classes as `(name, level)`.
    pub classes: Vec<(String, u32)>,
    /// Observed held→acquired edges of the lock-order graph, by name.
    pub edges: Vec<(String, String)>,
    /// Tracked acquisitions (mutex locks + rwlock reads/writes).
    pub acquisitions: u64,
    /// Poisoned-lock recoveries (a panic happened under the lock and a
    /// later acquisition recovered instead of cascading).
    pub poison_recoveries: u64,
    /// Condvar waits taken through [`TrackedCondvar::wait_unchecked`] —
    /// each one is a lost-wakeup hazard (no predicate re-check).
    pub unchecked_waits: u64,
    /// Recorded violations: declared-order breaches, lock-order-graph
    /// cycles, and parallel-pool entries made while holding a lock.
    pub violations: Vec<String>,
}

#[cfg(debug_assertions)]
mod witness {
    use super::WitnessReport;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Cap on stored violation strings; later ones only bump the count.
    const MAX_STORED: usize = 64;

    #[derive(Default)]
    pub(super) struct State {
        names: Vec<&'static str>,
        levels: Vec<u32>,
        ids: HashMap<&'static str, usize>,
        /// Adjacency of the held→acquired class graph (deduplicated).
        adj: Vec<Vec<usize>>,
        acquisitions: u64,
        poison_recoveries: u64,
        unchecked_waits: u64,
        violations: Vec<String>,
        dropped_violations: u64,
    }

    fn state() -> std::sync::MutexGuard<'static, State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE
            .get_or_init(|| Mutex::new(State::default()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    thread_local! {
        /// Classes held by this thread, in acquisition order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    fn record_violation(st: &mut State, v: String) {
        if st.violations.len() < MAX_STORED {
            st.violations.push(v);
        } else {
            st.dropped_violations += 1;
        }
    }

    /// Register (or look up) a lock class. Re-registering a name with a
    /// different level is itself a violation — one class, one level.
    pub(super) fn register(name: &'static str, level: u32) -> usize {
        let mut st = state();
        if let Some(&id) = st.ids.get(name) {
            if st.levels[id] != level {
                let have = st.levels[id];
                record_violation(
                    &mut st,
                    format!(
                        "lock class '{name}' re-registered at level {level} \
                         (already declared at level {have})"
                    ),
                );
            }
            return id;
        }
        let id = st.names.len();
        st.names.push(name);
        st.levels.push(level);
        st.adj.push(Vec::new());
        st.ids.insert(name, id);
        id
    }

    /// Is `to` reachable from `from` in the class graph?
    fn reachable(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
        let mut seen = vec![false; adj.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            stack.extend(adj[n].iter().copied());
        }
        false
    }

    /// Called immediately *before* blocking on the underlying lock, so a
    /// schedule that would deadlock still gets its violation recorded.
    pub(super) fn before_acquire(class: usize) {
        let held = HELD.with(|h| h.borrow().clone());
        let mut st = state();
        st.acquisitions += 1;
        for &h in &held {
            if st.levels[h] >= st.levels[class] {
                let v = if h == class {
                    format!(
                        "thread {:?} re-acquired lock class '{}' it already holds \
                         (self-deadlock on std::sync primitives)",
                        std::thread::current().id(),
                        st.names[class],
                    )
                } else {
                    format!(
                        "declared-order violation: thread {:?} acquired '{}' (level {}) \
                         while holding '{}' (level {}); levels must strictly increase",
                        std::thread::current().id(),
                        st.names[class],
                        st.levels[class],
                        st.names[h],
                        st.levels[h],
                    )
                };
                record_violation(&mut st, v);
            }
            if h != class && !st.adj[h].contains(&class) {
                // A new edge h→class: closing a cycle means two threads
                // can acquire the classes in opposite orders — a
                // potential deadlock even if this run survived.
                if reachable(&st.adj, class, h) {
                    let v = format!(
                        "lock-order cycle: acquiring '{}' while holding '{}' closes a cycle \
                         in the global acquisition graph (potential deadlock)",
                        st.names[class], st.names[h],
                    );
                    record_violation(&mut st, v);
                }
                st.adj[h].push(class);
            }
        }
    }

    pub(super) fn after_acquire(class: usize) {
        HELD.with(|h| h.borrow_mut().push(class));
    }

    pub(super) fn release(class: usize) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn note_poison_recovery() {
        state().poison_recoveries += 1;
    }

    pub(super) fn note_unchecked_wait() {
        state().unchecked_waits += 1;
    }

    pub(super) fn note_parallel_entry(context: &'static str) {
        let held = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut st = state();
        let names: Vec<&str> = held.iter().map(|&c| st.names[c]).collect();
        let v = format!(
            "{context}: thread {:?} entered a parallel section while holding {names:?} \
             (workers can block behind the held lock, or deadlock trying to take it)",
            std::thread::current().id(),
        );
        record_violation(&mut st, v);
    }

    pub(super) fn report() -> WitnessReport {
        let st = state();
        let mut edges = Vec::new();
        for (from, tos) in st.adj.iter().enumerate() {
            for &to in tos {
                edges.push((st.names[from].to_string(), st.names[to].to_string()));
            }
        }
        edges.sort();
        let mut violations = st.violations.clone();
        if st.dropped_violations > 0 {
            violations.push(format!(
                "... and {} further violation(s) not stored",
                st.dropped_violations
            ));
        }
        WitnessReport {
            classes: st
                .names
                .iter()
                .zip(&st.levels)
                .map(|(n, &l)| (n.to_string(), l))
                .collect(),
            edges,
            acquisitions: st.acquisitions,
            poison_recoveries: st.poison_recoveries,
            unchecked_waits: st.unchecked_waits,
            violations,
        }
    }
}

/// Current witness snapshot. Empty in release builds.
pub fn witness_report() -> WitnessReport {
    #[cfg(debug_assertions)]
    {
        witness::report()
    }
    #[cfg(not(debug_assertions))]
    {
        WitnessReport::default()
    }
}

/// Panic with full evidence if the witness recorded any lock-discipline
/// violation. Call at the end of concurrency tests; a no-op in release
/// builds (nothing is recorded there).
pub fn assert_witness_clean() {
    let report = witness_report();
    assert!(
        report.violations.is_empty(),
        "lock-order witness recorded {} violation(s):\n  {}",
        report.violations.len(),
        report.violations.join("\n  ")
    );
}

/// Record that the calling thread is entering a parallel section (the
/// shared rayon pool). Entering one while holding a tracked lock is a
/// recorded violation: pool workers can block behind the held lock — or
/// deadlock outright if any of them takes it. Debug builds only.
#[inline]
pub fn note_parallel_entry(context: &'static str) {
    #[cfg(debug_assertions)]
    witness::note_parallel_entry(context);
    #[cfg(not(debug_assertions))]
    let _ = context;
}

// ------------------------------------------------------------- TrackedMutex

/// A [`Mutex`] with poison recovery and (in debug builds) lock-order
/// witnessing. See the module docs for the full contract.
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    #[cfg(debug_assertions)]
    class: usize,
}

/// Guard returned by [`TrackedMutex::lock`]. Transparent in release
/// builds; pops the witness held-stack on drop in debug builds.
pub struct TrackedMutexGuard<'a, T> {
    // Debug builds need `Option` so `TrackedCondvar::wait_while` can move
    // the inner guard out past this type's `Drop` impl without `unsafe`;
    // release builds have no `Drop` impl and destructure directly.
    #[cfg(debug_assertions)]
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(not(debug_assertions))]
    inner: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: usize,
}

impl<T> TrackedMutex<T> {
    /// A tracked mutex of class `name` at `level` in the declared lock
    /// hierarchy (lower levels are acquired first / held outermost).
    pub fn new(name: &'static str, level: u32, value: T) -> TrackedMutex<T> {
        #[cfg(not(debug_assertions))]
        let _ = (name, level);
        TrackedMutex {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            class: witness::register(name, level),
        }
    }

    /// Acquire, recovering (and counting) a poisoned lock instead of
    /// panicking. In debug builds, checks the declared order against
    /// every lock the thread already holds.
    #[inline]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        {
            witness::before_acquire(self.class);
            let inner = self.inner.lock().unwrap_or_else(|p| {
                witness::note_poison_recovery();
                p.into_inner()
            });
            witness::after_acquire(self.class);
            TrackedMutexGuard {
                inner: Some(inner),
                class: self.class,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            TrackedMutexGuard {
                inner: self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        #[cfg(debug_assertions)]
        {
            self.inner.as_ref().expect("guard still held")
        }
        #[cfg(not(debug_assertions))]
        {
            &self.inner
        }
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        #[cfg(debug_assertions)]
        {
            self.inner.as_mut().expect("guard still held")
        }
        #[cfg(not(debug_assertions))]
        {
            &mut self.inner
        }
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            witness::release(self.class);
        }
    }
}

// ----------------------------------------------------------- TrackedCondvar

/// A [`Condvar`] whose blessed waiting API re-checks a predicate on every
/// wakeup ([`TrackedCondvar::wait_while`]); raw waits are flagged as
/// lost-wakeup hazards in the witness.
#[derive(Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A new condition variable.
    pub fn new() -> TrackedCondvar {
        TrackedCondvar::default()
    }

    /// Wake every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Block until `condition` returns `false` (same contract as
    /// [`Condvar::wait_while`]): the predicate is re-checked under the
    /// lock on every wakeup, so lost and spurious wakeups cannot produce
    /// a wrong resumption. Recovers poisoned locks like
    /// [`TrackedMutex::lock`].
    pub fn wait_while<'a, T, F>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
        condition: F,
    ) -> TrackedMutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        #[cfg(debug_assertions)]
        {
            let mut guard = guard;
            let class = guard.class;
            let inner = guard.inner.take().expect("guard still held");
            // The mutex is released for the duration of the wait: the
            // witness held-stack must not claim it across the park.
            witness::release(class);
            let inner = self.inner.wait_while(inner, condition).unwrap_or_else(|p| {
                witness::note_poison_recovery();
                p.into_inner()
            });
            witness::after_acquire(class);
            TrackedMutexGuard {
                inner: Some(inner),
                class,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            TrackedMutexGuard {
                inner: self
                    .inner
                    .wait_while(guard.inner, condition)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            }
        }
    }

    /// A raw wait with **no predicate re-check** — every call is recorded
    /// as a lost-wakeup hazard in the witness. Exists so callers with an
    /// out-of-band predicate can still be counted; new code should use
    /// [`TrackedCondvar::wait_while`].
    pub fn wait_unchecked<'a, T>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
    ) -> TrackedMutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        {
            witness::note_unchecked_wait();
            let mut guard = guard;
            let class = guard.class;
            let inner = guard.inner.take().expect("guard still held");
            witness::release(class);
            let inner = self.inner.wait(inner).unwrap_or_else(|p| {
                witness::note_poison_recovery();
                p.into_inner()
            });
            witness::after_acquire(class);
            TrackedMutexGuard {
                inner: Some(inner),
                class,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            TrackedMutexGuard {
                inner: self
                    .inner
                    .wait(guard.inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            }
        }
    }
}

impl std::fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TrackedCondvar")
    }
}

// ------------------------------------------------------------ TrackedRwLock

/// An [`RwLock`] with poison recovery and (in debug builds) lock-order
/// witnessing. Read and write acquisitions share one class: the witness
/// is conservative — a same-class read-under-read is flagged even though
/// it only deadlocks when a writer is queued between the two.
pub struct TrackedRwLock<T> {
    inner: RwLock<T>,
    #[cfg(debug_assertions)]
    class: usize,
}

/// Shared-read guard returned by [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: usize,
}

/// Exclusive guard returned by [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    class: usize,
}

impl<T> TrackedRwLock<T> {
    /// A tracked rwlock of class `name` at `level` (see
    /// [`TrackedMutex::new`]).
    pub fn new(name: &'static str, level: u32, value: T) -> TrackedRwLock<T> {
        #[cfg(not(debug_assertions))]
        let _ = (name, level);
        TrackedRwLock {
            inner: RwLock::new(value),
            #[cfg(debug_assertions)]
            class: witness::register(name, level),
        }
    }

    /// Acquire shared, recovering a poisoned lock instead of panicking.
    #[inline]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        witness::before_acquire(self.class);
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        #[cfg(debug_assertions)]
        witness::after_acquire(self.class);
        TrackedReadGuard {
            inner,
            #[cfg(debug_assertions)]
            class: self.class,
        }
    }

    /// Acquire exclusive, recovering a poisoned lock instead of panicking.
    #[inline]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        witness::before_acquire(self.class);
        let inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        #[cfg(debug_assertions)]
        witness::after_acquire(self.class);
        TrackedWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            class: self.class,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.class);
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // NOTE: the witness is process-global and these tests run in one
    // binary (possibly in parallel), so every intentional violation here
    // uses distinctive class names and asserts on substrings rather than
    // on the whole report being empty.

    #[test]
    fn lock_roundtrip_and_counters() {
        let m = TrackedMutex::new("test.roundtrip", 1000, 7u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 8);
        let r = witness_report();
        if cfg!(debug_assertions) {
            assert!(r.acquisitions >= 2);
            assert!(r
                .classes
                .iter()
                .any(|(n, l)| n == "test.roundtrip" && *l == 1000));
        } else {
            assert!(r.classes.is_empty());
        }
    }

    #[test]
    fn poison_is_recovered_not_cascaded() {
        let m = Arc::new(TrackedMutex::new("test.poison", 1001, vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let before = witness_report().poison_recoveries;
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // The next acquisition recovers instead of panicking and the data
        // is still there.
        assert_eq!(m.lock().len(), 3);
        if cfg!(debug_assertions) {
            assert!(witness_report().poison_recoveries > before);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn declared_order_violation_is_recorded() {
        let outer = TrackedMutex::new("test.order.outer", 2010, ());
        let inner = TrackedMutex::new("test.order.inner", 2005, ());
        let _a = outer.lock();
        let _b = inner.lock(); // 2005 while holding 2010: order breach
        let r = witness_report();
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("test.order.inner") && v.contains("declared-order")),
            "{:?}",
            r.violations
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_class_reentry_is_recorded() {
        let a = TrackedMutex::new("test.reentry", 2020, ());
        let b = TrackedMutex::new("test.reentry", 2020, ());
        let _a = a.lock();
        let _b = b.lock(); // same class while held: self-deadlock shape
        let r = witness_report();
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("re-acquired lock class 'test.reentry'")),
            "{:?}",
            r.violations
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn opposite_order_threads_close_a_cycle() {
        // Same level on purpose? No — distinct levels so only the *cycle*
        // detector fires on the second thread (the first edge is clean,
        // the reversed edge closes the cycle; one of the two acquisitions
        // also breaches the declared order, which is fine).
        let a = Arc::new(TrackedMutex::new("test.cycle.a", 2030, ()));
        let b = Arc::new(TrackedMutex::new("test.cycle.b", 2031, ()));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a → b
        }
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock(); // b → a closes the cycle
        })
        .join()
        .unwrap();
        let r = witness_report();
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("cycle") && v.contains("test.cycle.a")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn wait_while_delivers_published_value() {
        let m = Arc::new(TrackedMutex::new("test.cv.slot", 3000, None::<u32>));
        let cv = Arc::new(TrackedCondvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let g = m2.lock();
            let g = cv2.wait_while(g, |slot| slot.is_none());
            g.expect("predicate guarantees Some")
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = Some(99);
        cv.notify_all();
        assert_eq!(waiter.join().unwrap(), 99);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn unchecked_wait_is_flagged_as_hazard() {
        let m = Arc::new(TrackedMutex::new("test.cv.raw", 3001, false));
        let cv = Arc::new(TrackedCondvar::new());
        let before = witness_report().unchecked_waits;
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                g = cv2.wait_unchecked(g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
        assert!(witness_report().unchecked_waits > before);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn parallel_entry_while_holding_lock_is_recorded() {
        let m = TrackedMutex::new("test.pool.held", 4000, ());
        let _g = m.lock();
        note_parallel_entry("test.pool.entry");
        let r = witness_report();
        assert!(
            r.violations
                .iter()
                .any(|v| v.contains("test.pool.entry") && v.contains("test.pool.held")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn rwlock_read_write_roundtrip() {
        let l = TrackedRwLock::new("test.rw", 5000, 1u8);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn guards_release_out_of_order() {
        // Guard drop pops the *matching* class even when drops are not
        // LIFO — the held stack must stay consistent.
        let a = TrackedMutex::new("test.ooo.a", 6000, ());
        let b = TrackedMutex::new("test.ooo.b", 6001, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
        // A fresh correctly-ordered acquisition must not see stale state.
        let _ga = a.lock();
        let _gb = b.lock();
    }
}
