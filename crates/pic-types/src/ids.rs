//! Strongly-typed identifiers.
//!
//! The workload generator juggles four distinct index spaces — processors
//! (ranks), spectral elements, particle bins, and particles. Newtypes keep
//! them from being mixed up at compile time while still being free at run
//! time (`#[repr(transparent)]` over `u32`/`u64`).

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[repr(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Wrap a raw index.
            #[inline]
            pub const fn new(v: $repr) -> Self {
                Self(v)
            }

            /// The raw index as `usize`, for array indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index. Panics on overflow in debug
            /// builds.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= <$repr>::MAX as usize);
                Self(i as $repr)
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl From<$name> for $repr {
            #[inline]
            fn from(v: $name) -> $repr {
                v.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A processor (MPI-rank analogue) in the target system.
    Rank,
    u32
);
id_type!(
    /// A spectral element of the computation grid.
    ElementId,
    u32
);
id_type!(
    /// A particle bin produced by the recursive planar-cut partition.
    BinId,
    u32
);
id_type!(
    /// A particle. 64-bit: large-scale PIC runs track billions of particles.
    ParticleId,
    u64
);

impl Rank {
    /// Iterate over all ranks `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = Rank> + Clone {
        (0..n as u32).map(Rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let r = Rank::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(Rank::from_index(7), r);
        assert_eq!(u32::from(r), 7);
        assert_eq!(Rank::from(7u32), r);
        assert!(Rank::new(3) < Rank::new(4));
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // Compile-time property demonstrated by constructing each type.
        let _ = (
            Rank::new(1),
            ElementId::new(1),
            BinId::new(1),
            ParticleId::new(1),
        );
    }

    #[test]
    fn rank_all_iterates_in_order() {
        let v: Vec<_> = Rank::all(4).collect();
        assert_eq!(v, vec![Rank(0), Rank(1), Rank(2), Rank(3)]);
        assert_eq!(Rank::all(0).count(), 0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", Rank::new(3)), "Rank(3)");
        assert_eq!(format!("{}", ParticleId::new(9)), "ParticleId(9)");
    }
}
