//! Deterministic random-number helpers.
//!
//! Every stochastic component in the workspace (scenario initialization,
//! genetic programming, synthetic noise) is seeded explicitly so that runs
//! replay bit-for-bit. This module centralizes the conventions: a fast
//! SplitMix64 for cheap per-item hashing/jitter and helpers for deriving
//! independent sub-streams from one master seed.

/// A SplitMix64 generator.
///
/// Small, fast, and statistically solid for the non-cryptographic uses here
/// (deriving per-particle jitter and sub-seeds). It is also used to expand a
/// single `u64` seed into independent seeds for `rand::StdRng` streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible (< 2^-64 * n)
        // for the simulation-scale n used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Derive the `stream`-th independent sub-seed from a master seed.
///
/// Used so that, e.g., scenario initialization, GP search, and noise
/// injection each get their own stream from one user-facing seed.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = SplitMix64::new(master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    s.next_u64()
}

/// Stateless position hash → uniform `f64` in `[0,1)`.
///
/// Gives each `(seed, id)` pair a reproducible value independent of call
/// order, which parallel (rayon) loops rely on.
#[inline]
pub fn hash_unit_f64(seed: u64, id: u64) -> f64 {
    let mut s = SplitMix64::new(seed ^ id.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    s.next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix64::new(43);
        let c: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SplitMix64::new(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn derived_seeds_differ_by_stream() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, derive_seed(99, 0));
    }

    #[test]
    fn hash_is_order_independent() {
        let direct = hash_unit_f64(11, 123);
        // interleave other calls; result must not change
        let _ = hash_unit_f64(11, 7);
        assert_eq!(hash_unit_f64(11, 123), direct);
    }
}
