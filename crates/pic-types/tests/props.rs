//! Property-based tests for the geometric and statistical foundations.

use pic_types::stats;
use pic_types::{Aabb, Vec3};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_f64(), finite_f64(), finite_f64()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (vec3(), vec3()).prop_map(|(a, b)| Aabb::new(a.min(b), a.max(b)))
}

proptest! {
    #[test]
    fn vec3_add_commutes(a in vec3(), b in vec3()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn vec3_norm_triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
    }

    #[test]
    fn vec3_dot_cauchy_schwarz(a in vec3(), b in vec3()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12) + 1e-9);
    }

    #[test]
    fn vec3_cross_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = (a.norm() * b.norm()).max(1.0);
        prop_assert!(c.dot(a).abs() / (scale * scale.max(c.norm())) < 1e-9);
    }

    #[test]
    fn vec3_clamp_is_inside(v in vec3(), b in aabb()) {
        let q = v.clamp(b.min, b.max);
        prop_assert!(b.contains_closed(q), "{} not in {}", q, b);
    }

    #[test]
    fn aabb_union_contains_both(a in aabb(), b in aabb()) {
        let u = a.union(&b);
        prop_assert!(u.contains_closed(a.min) && u.contains_closed(a.max));
        prop_assert!(u.contains_closed(b.min) && u.contains_closed(b.max));
    }

    #[test]
    fn aabb_split_partitions_points(b in aabb(), p in vec3(), t in 0.0..1.0f64) {
        prop_assume!(!b.is_empty() && b.volume() > 0.0);
        let axis = b.longest_axis();
        let at = b.min.get(axis) + t * (b.max.get(axis) - b.min.get(axis));
        let (lo, hi) = b.split_at(axis, at);
        // every point of the parent box is in exactly one half (half-open)
        if b.contains(p) {
            prop_assert!(lo.contains(p) ^ hi.contains(p));
        }
        // volumes add up
        prop_assert!((lo.volume() + hi.volume() - b.volume()).abs() <= 1e-9 * b.volume().max(1.0));
    }

    #[test]
    fn aabb_sphere_test_matches_distance(b in aabb(), c in vec3(), r in 0.0..1e3f64) {
        let hit = b.intersects_sphere(c, r);
        let d2 = b.distance_sq_to_point(c);
        prop_assert_eq!(hit, d2 <= r * r);
    }

    #[test]
    fn aabb_from_points_is_tight(pts in proptest::collection::vec(vec3(), 1..20)) {
        let b = Aabb::from_points(pts.iter().copied());
        for p in &pts {
            prop_assert!(b.contains_closed(*p));
        }
        // tight: every face touches some point
        let eps = 1e-9;
        for axis in 0..3 {
            prop_assert!(pts.iter().any(|p| (p[axis] - b.min[axis]).abs() <= eps));
            prop_assert!(pts.iter().any(|p| (p[axis] - b.max[axis]).abs() <= eps));
        }
    }

    #[test]
    fn inflate_preserves_containment(b in aabb(), r in 0.0..100.0f64, p in vec3()) {
        if b.contains_closed(p) {
            prop_assert!(b.inflate(r).contains_closed(p));
        }
    }

    #[test]
    fn mape_is_scale_invariant(
        ys in proptest::collection::vec(1.0..1e4f64, 1..20),
        errs in proptest::collection::vec(-0.5..0.5f64, 1..20),
        scale in 0.1..100.0f64,
    ) {
        let n = ys.len().min(errs.len());
        let actual: Vec<f64> = ys[..n].to_vec();
        let pred: Vec<f64> = actual.iter().zip(&errs[..n]).map(|(y, e)| y * (1.0 + e)).collect();
        let m1 = stats::mape(&pred, &actual);
        let scaled_a: Vec<f64> = actual.iter().map(|y| y * scale).collect();
        let scaled_p: Vec<f64> = pred.iter().map(|y| y * scale).collect();
        let m2 = stats::mape(&scaled_p, &scaled_a);
        prop_assert!((m1 - m2).abs() < 1e-6, "{m1} vs {m2}");
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        xs in proptest::collection::vec(finite_f64(), 1..50),
        q1 in 0.0..100.0f64,
        q2 in 0.0..100.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = stats::percentile(&xs, lo);
        let p_hi = stats::percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo >= stats::min(&xs) - 1e-9);
        prop_assert!(p_hi <= stats::max(&xs) + 1e-9);
    }

    #[test]
    fn imbalance_factor_at_least_one_for_nonzero_load(
        xs in proptest::collection::vec(0.0..1e6f64, 1..50),
    ) {
        let f = stats::imbalance_factor(&xs);
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(f >= 1.0 - 1e-12);
        } else {
            prop_assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn rmse_zero_iff_equal(xs in proptest::collection::vec(finite_f64(), 1..30)) {
        prop_assert_eq!(stats::rmse(&xs, &xs), 0.0);
    }

    #[test]
    fn splitmix_streams_do_not_collide(seed in any::<u64>()) {
        let a = pic_types::rng::derive_seed(seed, 0);
        let b = pic_types::rng::derive_seed(seed, 1);
        let c = pic_types::rng::derive_seed(seed, 2);
        prop_assert!(a != b && b != c && a != c);
    }
}
