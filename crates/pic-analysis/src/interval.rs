//! Closed interval arithmetic over `f64`, the abstract domain for the
//! expression analyzer.
//!
//! Intervals are conservative: every concrete value an expression can take
//! on inputs drawn from the feature space lies inside the computed interval
//! (up to one ulp of outward rounding slack in the bound arithmetic, which
//! callers absorb with a tolerance). Bounds may be infinite; an interval
//! whose computation would produce NaN bounds widens to [`Interval::FULL`]
//! and the analyzer reports the node as numerically undecidable.

use serde::{Deserialize, Serialize};

/// The protected-division guard band used by `pic_models::Expr::eval`:
/// denominators with `|d| < PROTECT_EPS` make the division return its
/// numerator unchanged.
pub const PROTECT_EPS: f64 = 1e-9;

/// A closed interval `[lo, hi]` with `lo <= hi`; bounds may be infinite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

/// Result of abstractly evaluating a protected division: the value interval
/// plus which branches of the guard are reachable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivOutcome {
    /// Interval covering every value the division can produce.
    pub value: Interval,
    /// The guard `|d| < 1e-9` can fire (numerator passes through).
    pub may_protect: bool,
    /// The guard always fires: the division is the identity on its
    /// numerator for every reachable denominator.
    pub always_protects: bool,
}

impl Interval {
    /// The interval covering every finite and infinite `f64`.
    pub const FULL: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Degenerate interval containing exactly `v`. NaN widens to
    /// [`Interval::FULL`] so the domain stays NaN-free.
    pub fn point(v: f64) -> Interval {
        if v.is_nan() {
            Interval::FULL
        } else {
            Interval { lo: v, hi: v }
        }
    }

    /// Interval from two bounds in either order; NaN in either bound
    /// widens to [`Interval::FULL`].
    pub fn new(a: f64, b: f64) -> Interval {
        if a.is_nan() || b.is_nan() {
            Interval::FULL
        } else if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Does the interval contain zero?
    pub fn contains_zero(&self) -> bool {
        self.contains(0.0)
    }

    /// Is the interval a single point?
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Are both bounds finite?
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when the intervals are disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Protected interval division, mirroring `Expr::eval` semantics:
    /// denominators inside the guard band `(-1e-9, 1e-9)` pass the
    /// numerator through; the rest divide normally. The result hulls every
    /// reachable branch and reports guard reachability.
    pub fn div_protected(self, denom: Interval) -> DivOutcome {
        let guard = Interval {
            lo: -PROTECT_EPS,
            hi: PROTECT_EPS,
        };
        let may_protect = denom.intersect(guard).is_some();
        // `|d| < eps` strictly, so a denominator pinned at exactly ±eps
        // never protects; anything strictly inside the closed band can.
        let always_protects = denom.lo > -PROTECT_EPS && denom.hi < PROTECT_EPS;

        let mut value: Option<Interval> = None;
        let mut join = |iv: Interval| {
            value = Some(match value {
                Some(v) => v.hull(iv),
                None => iv,
            });
        };

        if may_protect {
            join(self); // numerator passes through unchanged
        }
        for part in [
            denom.intersect(Interval::new(PROTECT_EPS, f64::INFINITY)),
            denom.intersect(Interval::new(f64::NEG_INFINITY, -PROTECT_EPS)),
        ]
        .into_iter()
        .flatten()
        {
            join(self.div_exact(part));
        }
        DivOutcome {
            value: value.unwrap_or(Interval::FULL),
            may_protect,
            always_protects,
        }
    }

    /// Ordinary interval division for a denominator interval that excludes
    /// the guard band (single sign, bounded away from zero).
    fn div_exact(self, denom: Interval) -> Interval {
        fn corner(a: f64, b: f64) -> f64 {
            // ±0 / b and 0 / ±∞ have exact limit 0. The ∞/∞ corner also
            // resolves to 0: finite quotients near it stay bounded only
            // through other corners, and 0 is a safe member since the hull
            // with finite corners covers the true range.
            if a == 0.0 || (a.is_infinite() && b.is_infinite()) {
                0.0
            } else {
                a / b
            }
        }
        let c = [
            corner(self.lo, denom.lo),
            corner(self.lo, denom.hi),
            corner(self.hi, denom.lo),
            corner(self.hi, denom.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // An infinite-width denominator with an infinite numerator can
        // realize arbitrarily large quotients: widen.
        if (self.lo.is_infinite() || self.hi.is_infinite())
            && (denom.lo.is_infinite() || denom.hi.is_infinite())
        {
            return Interval::FULL;
        }
        Interval::new(lo, hi)
    }
}

/// Interval sum. `∞ + (-∞)` corners widen to [`Interval::FULL`].
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }
}

/// Interval difference.
impl std::ops::Sub for Interval {
    type Output = Interval;

    fn sub(self, other: Interval) -> Interval {
        Interval::new(self.lo - other.hi, self.hi - other.lo)
    }
}

/// Interval product: min/max over the four corner products, with the
/// IEEE `0 × ∞ = NaN` corners resolved to `0` (the exact limit of the
/// underlying finite products).
impl std::ops::Mul for Interval {
    type Output = Interval;

    fn mul(self, other: Interval) -> Interval {
        fn corner(a: f64, b: f64) -> f64 {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                a * b
            }
        }
        let c = [
            corner(self.lo, other.lo),
            corner(self.lo, other.hi),
            corner(self.hi, other.lo),
            corner(self.hi, other.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::new(lo, hi)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_containment() {
        let p = Interval::point(3.5);
        assert!(p.is_point());
        assert!(p.contains(3.5));
        assert!(!p.contains_zero());
        assert!(Interval::new(-1.0, 2.0).contains_zero());
    }

    #[test]
    fn nan_widens_to_full() {
        assert_eq!(Interval::point(f64::NAN), Interval::FULL);
        assert_eq!(Interval::new(f64::NAN, 1.0), Interval::FULL);
    }

    #[test]
    fn add_sub_mul_corners() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(3.0, 5.0);
        assert_eq!(a + b, Interval::new(2.0, 7.0));
        assert_eq!(a - b, Interval::new(-6.0, -1.0));
        assert_eq!(a * b, Interval::new(-5.0, 10.0));
    }

    #[test]
    fn mul_zero_times_infinity_is_sound() {
        let z = Interval::point(0.0);
        let inf = Interval::new(1.0, f64::INFINITY);
        let r = z * inf;
        assert!(r.contains(0.0));
        assert!(r.is_finite());
    }

    #[test]
    fn division_away_from_zero_is_exact() {
        let a = Interval::new(1.0, 4.0);
        let b = Interval::new(2.0, 8.0);
        let out = a.div_protected(b);
        assert!(!out.may_protect);
        assert!(!out.always_protects);
        assert_eq!(out.value, Interval::new(0.125, 2.0));
    }

    #[test]
    fn division_through_zero_includes_numerator_branch() {
        let a = Interval::new(6.0, 6.0);
        let b = Interval::new(-1.0, 1.0);
        let out = a.div_protected(b);
        assert!(out.may_protect);
        assert!(!out.always_protects);
        // protected branch yields 6; divide branches reach ±6e9
        assert!(out.value.contains(6.0));
        assert!(out.value.contains(6.0e9));
        assert!(out.value.contains(-6.0e9));
    }

    #[test]
    fn division_by_tiny_denominator_always_protects() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-1e-12, 1e-12);
        let out = a.div_protected(b);
        assert!(out.always_protects);
        assert_eq!(out.value, a);
    }

    #[test]
    fn protected_division_matches_eval_on_samples() {
        // brute-force soundness on a grid
        let num = Interval::new(-3.0, 5.0);
        let den = Interval::new(-2.0, 4.0);
        let out = num.div_protected(den);
        let steps = 40;
        for i in 0..=steps {
            for j in 0..=steps {
                let n = num.lo + (num.hi - num.lo) * i as f64 / steps as f64;
                let d = den.lo + (den.hi - den.lo) * j as f64 / steps as f64;
                let v = if d.abs() < PROTECT_EPS { n } else { n / d };
                assert!(
                    out.value.contains(v),
                    "{v} from {n}/{d} outside {}",
                    out.value
                );
            }
        }
    }

    #[test]
    fn hull_and_intersect() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 5.0);
        assert_eq!(a.hull(b), Interval::new(0.0, 5.0));
        assert_eq!(a.intersect(b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersect(Interval::new(3.0, 4.0)), None);
    }
}
