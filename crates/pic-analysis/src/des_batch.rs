//! Soundness of the DES barrier fast path and inlined message delivery.
//!
//! `pic_des`'s bulk-synchronous fast path replaces the event loop with a
//! closed form per step: every rank's compute-done time is
//! `release + scale·compute[r]`, every message arrives at
//! `done[from] + delay(from,to)`, and the barrier fires at
//! `max_r max(done[r], last_arrival[r])`. The windowed engine's inlined
//! delivery makes a weaker but related claim: folding a message into its
//! receiver at the *sender's* compute-done pop (instead of at the
//! arrival-time pop the heap oracle performs) cannot change the outcome.
//!
//! Both claims reduce to one statement about a single barrier step:
//! **every causal order of processing the step's compute-completions and
//! message-deliveries yields the same barrier time** — where "causal"
//! means only that a message is delivered after its sender's compute is
//! processed. The heap's time-order is one such order; the inlined
//! engine's sender-batched order is another; the fast path is a third
//! (all computes, then all messages). [`BarrierStepModel`] encodes the
//! per-event bookkeeping the engines actually perform (a `max` fold into
//! `last_arrival`, an arrival counter, a completion-guarded barrier
//! countdown) and the model checker in [`crate::sched`] walks **every**
//! causal interleaving, checking in each terminal state that the
//! incrementally accumulated barrier time equals the fast path's closed
//! form. Deadlock-freedom of the exploration doubles as a liveness proof:
//! no processing order can wedge a barrier step.
//!
//! Release time and per-rank idle are functions of the barrier time
//! (`release = barrier + collective_cost`, `idle[r] = release − done[r]`),
//! so agreement on the barrier time carries the whole `SimTimeline` row.
//!
//! [`des_batch_mutants`] shows the harness has teeth by checking three
//! deliberately broken disciplines — ignoring message arrival times,
//! releasing the barrier one rank early, and dropping the completion
//! guard (the double-count bug class that inlined delivery makes
//! possible: one sender probing a receiver twice) — all of which the
//! explorer must refute.

use crate::sched::{explore, Exploration, Model, ScheduleError};

/// A deliberately broken batching discipline, used to demonstrate the
/// model checker actually distinguishes sound from unsound designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesBatchMutant {
    /// Rank readiness ignores `last_arrival` (messages never delay the
    /// barrier) — the "vectorized max over compute only" shortcut.
    IgnoreArrival,
    /// The barrier releases when one rank is still outstanding.
    EarlyRelease,
    /// Completion is not idempotent: a rank re-probed after completing
    /// decrements the barrier countdown again (the failure mode a sender
    /// delivering two messages to one receiver exposes under inlined
    /// delivery).
    NoCompletionGuard,
}

/// One bulk-synchronous step as a concurrent system: compute-completions
/// and message-deliveries are the atomic actions, constrained only by
/// causality (a delivery needs its sender's compute processed first).
#[derive(Debug)]
pub struct BarrierStepModel {
    /// Config label for reports.
    pub name: &'static str,
    /// Integer compute-done ticks per rank (≤ 16 ranks).
    pub compute: Vec<u32>,
    /// Messages `(from, to, delay)`: arrival tick = `compute[from] + delay`.
    pub msgs: Vec<(u8, u8, u32)>,
    /// Broken discipline to emulate, if any.
    pub mutant: Option<DesBatchMutant>,
}

/// Explorer state: which events have been processed plus the exact
/// accumulators the engines maintain. The accumulators are part of the
/// state on purpose — if two interleavings could drive them apart, they
/// would surface as distinct (and separately checked) states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BarrierStepState {
    /// Ranks whose compute-done event has been processed.
    done: u16,
    /// Messages whose delivery has been processed.
    delivered: u16,
    /// Ranks whose completion has been counted toward the barrier.
    counted: u16,
    /// `max` fold of processed arrival ticks, per rank.
    last_arrival: Vec<u32>,
    /// `max` fold of counted ranks' ready ticks.
    barrier_time: u32,
    /// Ranks still outstanding at the barrier.
    remaining: u8,
    /// Barrier released.
    released: bool,
}

/// One atomic processing step.
#[derive(Debug, Clone, Copy)]
pub enum BarrierStepAction {
    /// Process rank `r`'s compute-done event.
    Compute(u8),
    /// Process message `m`'s delivery (requires the sender's compute).
    Deliver(u8),
    /// Redundantly re-probe rank `r`'s completion. The engines invoke
    /// `try_ready` once per event *touching* a rank, and with inlined
    /// delivery one sender's handler may touch the same receiver several
    /// times — so the model must allow probes beyond the one each
    /// event carries. Under the sound (idempotent) discipline this is a
    /// no-op self-loop; it is exactly what refutes
    /// [`DesBatchMutant::NoCompletionGuard`].
    Probe(u8),
}

impl BarrierStepModel {
    fn ranks(&self) -> usize {
        self.compute.len()
    }

    /// Bitmask of messages inbound to rank `r`.
    fn inbound_mask(&self, r: u8) -> u16 {
        let mut mask = 0u16;
        for (i, &(_, to, _)) in self.msgs.iter().enumerate() {
            if to == r {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// The fast path's closed form: the barrier fires at
    /// `max_r max(compute[r], max_{m→r} compute[from] + delay)`.
    pub fn closed_form_barrier(&self) -> u32 {
        let mut barrier = 0u32;
        for (r, &c) in self.compute.iter().enumerate() {
            let mut ready = c;
            for &(from, to, delay) in &self.msgs {
                if to as usize == r {
                    ready = ready.max(self.compute[from as usize] + delay);
                }
            }
            barrier = barrier.max(ready);
        }
        barrier
    }

    /// The completion probe every event touching rank `r` performs —
    /// the model-level transcription of the engines' `try_ready`.
    fn probe(&self, s: &mut BarrierStepState, r: u8) {
        let bit = 1u16 << r;
        let guard = self.mutant != Some(DesBatchMutant::NoCompletionGuard);
        if guard && s.counted & bit != 0 {
            return;
        }
        if s.done & bit == 0 {
            return;
        }
        let inbound = self.inbound_mask(r);
        if s.delivered & inbound != inbound {
            return;
        }
        s.counted |= bit;
        let ready = if self.mutant == Some(DesBatchMutant::IgnoreArrival) {
            self.compute[r as usize]
        } else {
            self.compute[r as usize].max(s.last_arrival[r as usize])
        };
        s.barrier_time = s.barrier_time.max(ready);
        s.remaining = s.remaining.saturating_sub(1);
        let threshold = u8::from(self.mutant == Some(DesBatchMutant::EarlyRelease));
        if s.remaining <= threshold {
            s.released = true;
        }
    }
}

impl Model for BarrierStepModel {
    type State = BarrierStepState;
    type Action = BarrierStepAction;

    fn initial(&self) -> BarrierStepState {
        BarrierStepState {
            done: 0,
            delivered: 0,
            counted: 0,
            last_arrival: vec![0; self.ranks()],
            barrier_time: 0,
            remaining: self.ranks() as u8,
            released: false,
        }
    }

    fn enabled(&self, s: &BarrierStepState) -> Vec<BarrierStepAction> {
        if s.released {
            return Vec::new();
        }
        let mut v = Vec::new();
        for r in 0..self.ranks() as u8 {
            if s.done & (1 << r) == 0 {
                v.push(BarrierStepAction::Compute(r));
            }
        }
        for (i, &(from, _, _)) in self.msgs.iter().enumerate() {
            if s.delivered & (1 << i) == 0 && s.done & (1 << from) != 0 {
                v.push(BarrierStepAction::Deliver(i as u8));
            }
        }
        for r in 0..self.ranks() as u8 {
            v.push(BarrierStepAction::Probe(r));
        }
        v
    }

    fn step(&self, s: &BarrierStepState, a: BarrierStepAction) -> BarrierStepState {
        let mut next = s.clone();
        match a {
            BarrierStepAction::Compute(r) => {
                next.done |= 1 << r;
                self.probe(&mut next, r);
            }
            BarrierStepAction::Deliver(m) => {
                let (from, to, delay) = self.msgs[m as usize];
                next.delivered |= 1 << m;
                let arrive = self.compute[from as usize] + delay;
                next.last_arrival[to as usize] = next.last_arrival[to as usize].max(arrive);
                self.probe(&mut next, to);
            }
            BarrierStepAction::Probe(r) => {
                self.probe(&mut next, r);
            }
        }
        next
    }

    fn is_terminal(&self, s: &BarrierStepState) -> bool {
        s.released
    }

    fn check(&self, s: &BarrierStepState) -> Result<(), String> {
        let closed = self.closed_form_barrier();
        // Monotone safety: the accumulator can never exceed the closed
        // form (each counted rank contributes exactly its closed-form
        // term, because counting requires all inbound deliveries).
        if s.barrier_time > closed {
            return Err(format!(
                "accumulated barrier time {} exceeds closed form {closed}",
                s.barrier_time
            ));
        }
        if s.released {
            if s.barrier_time != closed {
                return Err(format!(
                    "released at barrier time {}, fast path computes {closed}",
                    s.barrier_time
                ));
            }
            let all_ranks = (1u16 << self.ranks()) - 1;
            let all_msgs = if self.msgs.is_empty() {
                0
            } else {
                (1u16 << self.msgs.len()) - 1
            };
            if s.done != all_ranks || s.delivered != all_msgs || s.remaining != 0 {
                return Err(format!(
                    "released with work outstanding: done={:#b} delivered={:#b} remaining={}",
                    s.done, s.delivered, s.remaining
                ));
            }
        }
        Ok(())
    }
}

/// The configurations the soundness run explores: ties, self-messages,
/// zero delays, fan-in, fan-out, duplicate sender→receiver pairs, and a
/// message-free step.
fn soundness_configs() -> Vec<BarrierStepModel> {
    let cfg = |name, compute: Vec<u32>, msgs: Vec<(u8, u8, u32)>| BarrierStepModel {
        name,
        compute,
        msgs,
        mutant: None,
    };
    vec![
        cfg("no-messages", vec![3, 1, 2], vec![]),
        cfg(
            "tied-computes-ring",
            vec![2, 2, 2],
            vec![(0, 1, 1), (1, 2, 1), (2, 0, 1)],
        ),
        cfg("self-message", vec![2], vec![(0, 0, 1)]),
        cfg(
            "zero-delay-exchange",
            vec![1, 2],
            vec![(0, 1, 0), (1, 0, 0)],
        ),
        cfg("fan-in", vec![1, 4, 2], vec![(1, 0, 1), (2, 0, 3)]),
        cfg("fan-out", vec![3, 1, 1], vec![(0, 1, 2), (0, 2, 0)]),
        // two messages from one sender to one receiver: the shape that
        // makes a sender probe its receiver twice under inlined delivery.
        // rank 2 dominates so double-counting rank 1 releases early with
        // an observably wrong barrier time.
        cfg("duplicate-pair", vec![1, 1, 9], vec![(0, 1, 1), (0, 1, 3)]),
        cfg(
            "mixed-irregular",
            vec![0, 3, 3],
            vec![(0, 1, 0), (1, 2, 2), (2, 2, 1), (0, 2, 5)],
        ),
    ]
}

/// Verdict for one explored configuration.
#[derive(Debug, Clone)]
pub struct DesBatchVerdict {
    /// Configuration label.
    pub config: &'static str,
    /// Exploration statistics (states, terminals, transitions).
    pub exploration: Exploration,
}

/// Exhaustively verify the barrier batching discipline on every soundness
/// configuration. Errors carry the refuting schedule.
pub fn verify_des_batching() -> Result<Vec<DesBatchVerdict>, ScheduleError> {
    let mut verdicts = Vec::new();
    for model in soundness_configs() {
        let exploration = explore(&model, 200_000).map_err(|e| ScheduleError {
            message: format!("config '{}': {}", model.name, e.message),
            trace: e.trace,
        })?;
        verdicts.push(DesBatchVerdict {
            config: model.name,
            exploration,
        });
    }
    Ok(verdicts)
}

/// Run the three broken disciplines; each entry reports whether the
/// explorer refuted it (all must be `true` for the harness to mean
/// anything).
pub fn des_batch_mutants() -> Vec<(String, bool)> {
    let mutants = [
        DesBatchMutant::IgnoreArrival,
        DesBatchMutant::EarlyRelease,
        DesBatchMutant::NoCompletionGuard,
    ];
    let mut out = Vec::new();
    for mutant in mutants {
        let caught = soundness_configs().into_iter().any(|mut model| {
            model.mutant = Some(mutant);
            explore(&model, 200_000).is_err()
        });
        out.push((format!("{mutant:?}"), caught));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_causal_orders_match_closed_form() {
        let verdicts = verify_des_batching().expect("batching discipline is sound");
        assert_eq!(verdicts.len(), soundness_configs().len());
        for v in &verdicts {
            assert!(v.exploration.states > 0, "{}", v.config);
            assert!(v.exploration.terminal_states >= 1, "{}", v.config);
        }
        // the irregular config genuinely has many interleavings
        let mixed = verdicts
            .iter()
            .find(|v| v.config == "mixed-irregular")
            .unwrap();
        assert!(mixed.exploration.transitions > 50, "{mixed:?}");
    }

    #[test]
    fn broken_disciplines_are_refuted() {
        for (name, caught) in des_batch_mutants() {
            assert!(caught, "mutant {name} escaped the model checker");
        }
    }

    #[test]
    fn closed_form_matches_hand_computation() {
        let m = &soundness_configs()[4]; // fan-in: compute [1,4,2], (1,0,1),(2,0,3)
                                         // rank0 ready = max(1, 4+1, 2+3) = 5; rank1 = 4; rank2 = 2
        assert_eq!(m.closed_form_barrier(), 5);
    }

    #[test]
    fn duplicate_pair_exercises_double_probe() {
        // the NoCompletionGuard mutant must be refuted by the
        // duplicate-pair config specifically
        let mut model = soundness_configs()
            .into_iter()
            .find(|m| m.name == "duplicate-pair")
            .unwrap();
        explore(&model, 10_000).expect("sound discipline passes");
        model.mutant = Some(DesBatchMutant::NoCompletionGuard);
        let err = explore(&model, 10_000).unwrap_err();
        assert!(
            err.message.contains("released") || err.message.contains("outstanding"),
            "{err}"
        );
    }
}
