//! Abstract interpretation of `pic_models::Expr` over the interval domain.
//!
//! The analyzer walks an expression tree once, propagating an [`Interval`]
//! per node derived from the feature space (per-column value ranges from a
//! training dataset, or unconstrained). It flags:
//!
//! * **E001** — `Var(i)` with `i` outside the model arity (the evaluator
//!   silently maps these to `0.0`; the analyzer makes them a load-time
//!   rejection instead);
//! * **E002** — non-finite constants embedded in the tree;
//! * **W101** — a protected division whose denominator range crosses the
//!   `|d| < 1e-9` guard band, so the expression silently switches between
//!   `x/y` and `x` somewhere in the feature space;
//! * **W104** — a division whose denominator *always* lies inside the
//!   guard band: the division is dead weight (identity on its numerator);
//! * **W102** — a node whose value range reaches ±∞ from finite operands
//!   (overflow, and through later subtraction possibly NaN);
//! * **W103** — a maximal non-leaf subtree whose value is a single point
//!   over the whole feature space (dead or constant-foldable code);
//! * **I201** — structurally repeated non-trivial subtrees (common
//!   subexpressions the canonicalizer can deduplicate for costing).

use crate::interval::{Interval, PROTECT_EPS};
use pic_models::{CompiledExpr, Dataset, Expr};
use pic_types::PicError;
use serde::Serialize;
use std::collections::HashMap;

/// Value ranges for each model input column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FeatureSpace {
    names: Option<Vec<String>>,
    ranges: Vec<Interval>,
}

impl FeatureSpace {
    /// A space of `arity` columns each spanning every `f64`.
    pub fn unconstrained(arity: usize) -> FeatureSpace {
        FeatureSpace {
            names: None,
            ranges: vec![Interval::FULL; arity],
        }
    }

    /// Per-column `[min, max]` hull of a training dataset. Empty datasets
    /// yield unconstrained columns.
    pub fn from_dataset(data: &Dataset) -> FeatureSpace {
        let mut ranges = vec![Interval::FULL; data.arity()];
        for (c, range) in ranges.iter_mut().enumerate() {
            let mut hull: Option<Interval> = None;
            for row in &data.rows {
                let p = Interval::point(row[c]);
                hull = Some(match hull {
                    Some(h) => h.hull(p),
                    None => p,
                });
            }
            if let Some(h) = hull {
                *range = h;
            }
        }
        FeatureSpace {
            names: Some(data.feature_names.clone()),
            ranges,
        }
    }

    /// A space with explicit per-column ranges.
    pub fn from_ranges(ranges: Vec<Interval>) -> FeatureSpace {
        FeatureSpace {
            names: None,
            ranges,
        }
    }

    /// Number of input columns.
    pub fn arity(&self) -> usize {
        self.ranges.len()
    }

    /// Range of column `i`.
    pub fn range(&self, i: usize) -> Interval {
        self.ranges[i]
    }

    /// Name of column `i`, when the space was built from a dataset.
    pub fn name(&self, i: usize) -> Option<&str> {
        self.names
            .as_ref()
            .and_then(|n| n.get(i))
            .map(String::as_str)
    }

    /// Deterministic probe rows covering the corners of the space: per
    /// column the range endpoints, midpoint, zero, and values straddling
    /// the `1e-9` protected-division guard band (all clamped into the
    /// column's range; unconstrained columns substitute finite stand-ins).
    /// The cartesian product is capped at [`FeatureSpace::MAX_PROBE_ROWS`]
    /// rows, walked in mixed-radix order so early rows still vary every
    /// column.
    pub fn probe_rows(&self) -> Vec<Vec<f64>> {
        let per_col: Vec<Vec<f64>> = self
            .ranges
            .iter()
            .map(|iv| Self::probe_values(*iv))
            .collect();
        if per_col.is_empty() {
            return Vec::new();
        }
        let total: usize = per_col
            .iter()
            .map(|v| v.len())
            .try_fold(1usize, |acc, k| acc.checked_mul(k))
            .unwrap_or(usize::MAX);
        let count = total.min(Self::MAX_PROBE_ROWS);
        let mut rows = Vec::with_capacity(count);
        for mut k in 0..count {
            let mut row = Vec::with_capacity(per_col.len());
            for vals in &per_col {
                row.push(vals[k % vals.len()]);
                k /= vals.len();
            }
            rows.push(row);
        }
        rows
    }

    /// Cap on the cartesian probe-row product of [`FeatureSpace::probe_rows`].
    pub const MAX_PROBE_ROWS: usize = 512;

    /// Candidate probe values for one column, deduplicated, in range.
    fn probe_values(iv: Interval) -> Vec<f64> {
        // Finite stand-ins for unconstrained bounds: wide enough to
        // exercise magnitude-dependent behaviour, small enough that
        // products of a few columns stay finite.
        let lo = if iv.lo.is_finite() { iv.lo } else { -1e6 };
        let hi = if iv.hi.is_finite() { iv.hi } else { 1e6 };
        let candidates = [
            lo,
            hi,
            0.5 * (lo + hi),
            0.0,
            // straddle the protected-division guard band
            0.5 * PROTECT_EPS,
            PROTECT_EPS,
            -0.5 * PROTECT_EPS,
        ];
        let mut vals: Vec<f64> = Vec::with_capacity(candidates.len());
        for c in candidates {
            let v = c.clamp(lo, hi);
            if !vals.iter().any(|p| p.to_bits() == v.to_bits()) {
                vals.push(v);
            }
        }
        vals
    }
}

/// Differential check of the compiled bytecode tape against the recursive
/// evaluator: every [`FeatureSpace::probe_rows`] corner must produce
/// bit-identical results through `Expr::eval`, `CompiledExpr::eval_row`,
/// *and* `CompiledExpr::eval_batch` (NaN compares equal to NaN). This is
/// the load-time counterpart of the property tests: it runs on the
/// actual admitted model over the actual feature space.
pub fn check_compiled_equivalence(expr: &Expr, space: &FeatureSpace) -> Result<(), PicError> {
    let rows = space.probe_rows();
    if rows.is_empty() {
        return Ok(());
    }
    let tape = CompiledExpr::compile(expr);
    let names = (0..space.arity()).map(|i| format!("x{i}")).collect();
    let mut d = Dataset::new(names);
    for row in &rows {
        d.push(row.clone(), 0.0);
    }
    let cols = d.columns();
    let mut batch = vec![0.0; rows.len()];
    tape.eval_batch(&cols, &mut batch, &mut pic_models::EvalScratch::new());
    let same = |a: f64, b: f64| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan());
    for (i, row) in rows.iter().enumerate() {
        let tree = expr.eval(row);
        let one = tape.eval_row(row);
        if !same(tree, one) || !same(tree, batch[i]) {
            return Err(PicError::model(format!(
                "compiled tape diverges from the tree evaluator at probe row {i} \
                 {row:?}: tree {tree:e}, tape {one:e}, batch {:e}",
                batch[i]
            )));
        }
    }
    Ok(())
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Informational: no behavioural concern, possible optimization.
    Info,
    /// Suspicious but well-defined behaviour.
    Warning,
    /// The expression must be rejected.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, positioned by preorder node index and a root-relative path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (`E001`, `W101`, ...).
    pub code: &'static str,
    /// Preorder index of the offending node (root = 0), usable with
    /// `Expr::subtree`.
    pub node: usize,
    /// Human-readable path from the root, e.g. `root/rhs/lhs`.
    pub path: String,
    /// Explanation of the finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] at node {} ({}): {}",
            self.severity, self.code, self.node, self.path, self.message
        )
    }
}

/// Full analysis result for one expression.
#[derive(Debug, Clone, Serialize)]
pub struct ExprReport {
    /// All findings, in preorder-position order.
    pub diagnostics: Vec<Diagnostic>,
    /// Interval covering every value the expression can take over the
    /// feature space.
    pub value: Interval,
    /// Node count of the analyzed expression.
    pub node_count: usize,
    /// Node count after canonicalization (simplification headroom).
    pub canonical_node_count: usize,
}

impl ExprReport {
    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Iterator over error diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Iterator over warning diagnostics only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }
}

struct Walker<'a> {
    space: &'a FeatureSpace,
    next_idx: usize,
    path: Vec<&'static str>,
    diags: Vec<Diagnostic>,
    /// structural hash → (first preorder index, occurrences, first path)
    /// for non-leaf subtrees, for repeated-subexpression reporting.
    seen: HashMap<u64, (usize, u32, String)>,
    /// (preorder index, span, path) of constant-valued non-leaf subtrees;
    /// filtered to maximal ones after the walk.
    const_nodes: Vec<(usize, usize, String)>,
}

impl Walker<'_> {
    fn path_string(&self) -> String {
        if self.path.is_empty() {
            "root".to_string()
        } else {
            format!("root/{}", self.path.join("/"))
        }
    }

    fn diag(&mut self, severity: Severity, code: &'static str, node: usize, message: String) {
        let path = self.path_string();
        self.diags.push(Diagnostic {
            severity,
            code,
            node,
            path,
            message,
        });
    }

    fn child(&mut self, label: &'static str, e: &Expr) -> Interval {
        self.path.push(label);
        let iv = self.go(e);
        self.path.pop();
        iv
    }

    fn go(&mut self, e: &Expr) -> Interval {
        let idx = self.next_idx;
        self.next_idx += 1;
        let iv = match e {
            Expr::Const(c) => {
                if !c.is_finite() {
                    self.diag(
                        Severity::Error,
                        "E002",
                        idx,
                        format!("non-finite constant {c} in expression tree"),
                    );
                }
                Interval::point(*c)
            }
            Expr::Var(i) => {
                if *i >= self.space.arity() {
                    self.diag(
                        Severity::Error,
                        "E001",
                        idx,
                        format!(
                            "Var({i}) out of range for arity {} (evaluator would silently read 0.0)",
                            self.space.arity()
                        ),
                    );
                    Interval::FULL
                } else {
                    self.space.range(*i)
                }
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let ia = self.child("lhs", a);
                let ib = self.child("rhs", b);
                let iv = match e {
                    Expr::Add(..) => ia + ib,
                    Expr::Sub(..) => ia - ib,
                    Expr::Mul(..) => ia * ib,
                    Expr::Div(..) => {
                        let out = ia.div_protected(ib);
                        if out.always_protects {
                            self.diag(
                                Severity::Warning,
                                "W104",
                                idx,
                                format!(
                                    "division degenerate: denominator range {ib} lies entirely \
                                     inside the 1e-9 guard band, so the division is the identity \
                                     on its numerator"
                                ),
                            );
                        } else if out.may_protect {
                            self.diag(
                                Severity::Warning,
                                "W101",
                                idx,
                                format!(
                                    "protected division reachable: denominator range {ib} crosses \
                                     the 1e-9 guard band (result silently switches to the numerator)"
                                ),
                            );
                        }
                        out.value
                    }
                    _ => unreachable!(),
                };
                if !iv.is_finite() && ia.is_finite() && ib.is_finite() {
                    self.diag(
                        Severity::Warning,
                        "W102",
                        idx,
                        format!(
                            "value range {iv} reaches infinity from finite operands \
                             ({ia} op {ib}): overflow (and downstream NaN) possible"
                        ),
                    );
                }
                if iv.is_point() {
                    let span = e.node_count();
                    let path = self.path_string();
                    self.const_nodes.push((idx, span, path));
                }
                // repeated-subexpression bookkeeping (non-leaf only)
                let h = e.structural_hash();
                let path = self.path_string();
                let entry = self.seen.entry(h).or_insert((idx, 0, path));
                entry.1 += 1;
                iv
            }
        };
        iv
    }
}

/// Analyze `expr` against `space`, returning every finding plus the
/// expression's abstract value range.
pub fn analyze_expr(expr: &Expr, space: &FeatureSpace) -> ExprReport {
    let mut w = Walker {
        space,
        next_idx: 0,
        path: Vec::new(),
        diags: Vec::new(),
        seen: HashMap::new(),
        const_nodes: Vec::new(),
    };
    let value = w.go(expr);

    // Maximal constant subtrees: preorder spans nest, so after sorting by
    // index we keep a node only if it is not inside the last kept span.
    w.const_nodes.sort_by_key(|&(idx, _, _)| idx);
    let mut kept_end = 0usize;
    for (idx, span, path) in std::mem::take(&mut w.const_nodes) {
        if idx >= kept_end {
            kept_end = idx + span;
            w.diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "W103",
                node: idx,
                path,
                message: format!(
                    "subtree ({span} nodes) evaluates to a single constant over the whole \
                     feature space: dead or constant-foldable code"
                ),
            });
        }
    }

    // Repeated non-leaf subtrees, reported once at the first occurrence.
    let mut repeats: Vec<(usize, u32, String)> = w
        .seen
        .drain()
        .map(|(_, v)| v)
        .filter(|&(_, n, _)| n > 1)
        .collect();
    repeats.sort_unstable();
    for (first, n, path) in repeats {
        w.diags.push(Diagnostic {
            severity: Severity::Info,
            code: "I201",
            node: first,
            path,
            message: format!("subtree repeated {n}× (structural hash match): common subexpression"),
        });
    }

    w.diags.sort_by_key(|d| (d.node, d.code));
    ExprReport {
        diagnostics: w.diags,
        value,
        node_count: expr.node_count(),
        canonical_node_count: expr.clone().canonicalize().node_count(),
    }
}

/// Admission check for deserialized model expressions: rejects trees the
/// evaluator would only paper over (out-of-range variables, non-finite
/// constants). Returns a positioned, multi-finding error message.
pub fn check_model_expr(expr: &Expr, arity: usize) -> Result<(), PicError> {
    let report = analyze_expr(expr, &FeatureSpace::unconstrained(arity));
    if report.has_errors() {
        let msg = report
            .errors()
            .map(|d| {
                format!(
                    "{}[{}] at node {} ({}): {}",
                    d.severity, d.code, d.node, d.path, d.message
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        return Err(PicError::model(format!("invalid model expression: {msg}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }
    fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }
    fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    #[test]
    fn clean_expression_has_no_findings() {
        // (x0 + 2) * x1 over positive ranges
        let e = mul(add(Expr::Var(0), Expr::Const(2.0)), Expr::Var(1));
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(1.0, 100.0), Interval::new(0.5, 2.0)]);
        let r = analyze_expr(&e, &space);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.value, Interval::new(1.5, 204.0));
    }

    #[test]
    fn var_out_of_range_is_positioned_error() {
        let e = add(Expr::Var(0), mul(Expr::Const(2.0), Expr::Var(7)));
        let r = analyze_expr(&e, &FeatureSpace::unconstrained(2));
        let errs: Vec<_> = r.errors().collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, "E001");
        assert_eq!(errs[0].node, 4); // preorder: add, var0, mul, const, var7
        assert_eq!(errs[0].path, "root/rhs/rhs");
        assert!(check_model_expr(&e, 2).is_err());
        assert!(check_model_expr(&e, 8).is_ok());
    }

    #[test]
    fn nonfinite_constant_is_error() {
        let e = add(Expr::Const(f64::INFINITY), Expr::Var(0));
        let r = analyze_expr(&e, &FeatureSpace::unconstrained(1));
        assert!(r.has_errors());
        assert_eq!(r.errors().next().unwrap().code, "E002");
        assert!(check_model_expr(&e, 1).is_err());
    }

    #[test]
    fn protected_division_flagged_when_guard_reachable() {
        // x0 / x1 with x1 spanning zero
        let e = div(Expr::Var(0), Expr::Var(1));
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(1.0, 2.0), Interval::new(-1.0, 1.0)]);
        let r = analyze_expr(&e, &space);
        assert_eq!(
            r.warnings().map(|d| d.code).collect::<Vec<_>>(),
            vec!["W101"]
        );
        // bounded away from zero: clean
        let safe =
            FeatureSpace::from_ranges(vec![Interval::new(1.0, 2.0), Interval::new(0.5, 1.0)]);
        assert!(analyze_expr(&e, &safe).diagnostics.is_empty());
    }

    #[test]
    fn degenerate_division_flagged_as_identity() {
        // x0 / (1e-15 · x1) — denominator never escapes the guard band
        let e = div(Expr::Var(0), mul(Expr::Const(1e-15), Expr::Var(1)));
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(1.0, 2.0), Interval::new(0.0, 1.0)]);
        let r = analyze_expr(&e, &space);
        let codes: Vec<_> = r.warnings().map(|d| d.code).collect();
        assert!(codes.contains(&"W104"), "{codes:?}");
        // and the value is exactly the numerator's range
        assert_eq!(r.value, Interval::new(1.0, 2.0));
    }

    #[test]
    fn constant_subtree_reported_once_at_maximal_node() {
        // x0 + ((2+3) * (1+1)) — the whole right product is constant;
        // nested constant nodes must not double-report.
        let e = add(
            Expr::Var(0),
            mul(
                add(Expr::Const(2.0), Expr::Const(3.0)),
                add(Expr::Const(1.0), Expr::Const(1.0)),
            ),
        );
        let r = analyze_expr(&e, &FeatureSpace::unconstrained(1));
        let w103: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "W103").collect();
        assert_eq!(w103.len(), 1);
        assert_eq!(w103[0].node, 2); // the Mul node
        assert_eq!(w103[0].path, "root/rhs");
    }

    #[test]
    fn overflow_reported_when_range_escapes_finite() {
        let e = mul(Expr::Const(1e300), mul(Expr::Const(1e300), Expr::Var(0)));
        let space = FeatureSpace::from_ranges(vec![Interval::new(0.0, 10.0)]);
        let r = analyze_expr(&e, &space);
        assert!(
            r.warnings().any(|d| d.code == "W102"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn repeated_subtree_reported_as_info() {
        let shared = add(Expr::Var(0), Expr::Const(1.0));
        let e = mul(shared.clone(), shared);
        let r = analyze_expr(&e, &FeatureSpace::unconstrained(1));
        let info: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "I201").collect();
        assert_eq!(info.len(), 1);
        assert!(info[0].message.contains("2×"));
    }

    #[test]
    fn feature_space_from_dataset_hulls_columns() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        d.push(vec![1.0, -2.0], 0.0);
        d.push(vec![5.0, 0.5], 0.0);
        let s = FeatureSpace::from_dataset(&d);
        assert_eq!(s.range(0), Interval::new(1.0, 5.0));
        assert_eq!(s.range(1), Interval::new(-2.0, 0.5));
        assert_eq!(s.name(1), Some("b"));
    }

    #[test]
    fn probe_rows_cover_corners_and_guard_band() {
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(-1.0, 2.0), Interval::new(0.5, 4.0)]);
        let rows = space.probe_rows();
        assert!(!rows.is_empty());
        assert!(rows.len() <= FeatureSpace::MAX_PROBE_ROWS);
        // both-corners row and the guard-band probe appear
        assert!(rows.iter().any(|r| r == &vec![-1.0, 0.5]));
        assert!(rows.iter().any(|r| r == &vec![2.0, 4.0]));
        assert!(rows.iter().any(|r| r[0] == 0.5 * PROTECT_EPS));
        // out-of-range candidates were clamped into the column range
        for r in &rows {
            assert!((-1.0..=2.0).contains(&r[0]) && (0.5..=4.0).contains(&r[1]));
        }
        // unconstrained columns get finite stand-ins
        let u = FeatureSpace::unconstrained(2);
        assert!(u
            .probe_rows()
            .iter()
            .all(|r| r.iter().all(|v| v.is_finite())));
        assert!(FeatureSpace::unconstrained(0).probe_rows().is_empty());
    }

    #[test]
    fn probe_row_cap_holds_for_wide_spaces() {
        let space = FeatureSpace::unconstrained(8);
        let rows = space.probe_rows();
        assert_eq!(rows.len(), FeatureSpace::MAX_PROBE_ROWS);
        // mixed-radix order varies the early columns within the cap
        assert!(rows.iter().any(|r| r[0] != rows[0][0]));
        assert!(rows.iter().any(|r| r[1] != rows[0][1]));
    }

    #[test]
    fn compiled_equivalence_holds_on_probe_corners() {
        // protected division with the guard band reachable — the probes
        // include rows on both sides of it
        let e = div(add(Expr::Var(0), Expr::Const(1.0)), Expr::Var(1));
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(-2.0, 2.0), Interval::new(-1.0, 1.0)]);
        assert!(check_compiled_equivalence(&e, &space).is_ok());
        assert!(check_compiled_equivalence(&e, &FeatureSpace::unconstrained(2)).is_ok());
        // overflow corners (inf/NaN evaluations) must also agree
        let blow = mul(Expr::Const(1e300), mul(Expr::Var(0), Expr::Var(1)));
        assert!(check_compiled_equivalence(&blow, &FeatureSpace::unconstrained(2)).is_ok());
    }

    #[test]
    fn report_value_is_sound_for_eval() {
        let e = div(add(Expr::Var(0), Expr::Const(1.0)), Expr::Var(1));
        let space =
            FeatureSpace::from_ranges(vec![Interval::new(-2.0, 2.0), Interval::new(0.5, 4.0)]);
        let r = analyze_expr(&e, &space);
        for i in 0..=20 {
            for j in 0..=20 {
                let x0 = -2.0 + 4.0 * i as f64 / 20.0;
                let x1 = 0.5 + 3.5 * j as f64 / 20.0;
                let v = e.eval(&[x0, x1]);
                assert!(r.value.contains(v), "{v} outside {}", r.value);
            }
        }
    }
}
