//! Deterministic schedule exploration for message-passing state machines.
//!
//! A minimal in-tree model checker in the spirit of loom: a concurrent
//! system is modelled as a [`Model`] — an initial state, a set of enabled
//! atomic actions per state, and a deterministic transition function. The
//! explorer walks **every** reachable interleaving by depth-first search
//! over the state graph (deduplicating states, so confluent interleavings
//! are visited once) and checks:
//!
//! * the state invariant holds in every reachable state;
//! * no non-terminal state is stuck (deadlock-freedom: some action is
//!   always enabled until the system terminates);
//! * every terminal state satisfies the model's terminal checks.
//!
//! On failure the explorer reports a minimal-by-construction action trace
//! from the initial state to the offending state, which is a replayable
//! schedule — the property that makes the harness useful in CI.
//!
//! Two optional extensions, enabled per run through [`ExploreOptions`]:
//!
//! * **Ample-set partial-order reduction** ([`ExploreOptions::reduction`]).
//!   When a state has several threads enabled and one of them only has
//!   *local* actions pending — actions the model declares (via
//!   [`Model::is_local`]) to commute with every other thread's actions and
//!   to be invisible to all checked properties — the explorer expands only
//!   that thread and defers the rest. Interleavings that differ merely in
//!   where the local action lands are collapsed to one representative. A
//!   stack proviso keeps the reduction sound: a candidate thread whose
//!   successor lies on the current DFS stack is rejected, so no action can
//!   be indefinitely postponed around a cycle (the "ignoring problem").
//!   This is what lets the serve protocol matrix scale past the streaming
//!   model's ~20k-state full expansion.
//!
//! * **Liveness via lasso detection** ([`ExploreOptions::liveness`]).
//!   Deadlock detection cannot see a thread that spins forever — every
//!   state has an enabled action, yet no progress happens. With liveness
//!   on, the explorer records the transition graph, finds its strongly
//!   connected components, and flags any SCC that some actor sits in a
//!   *waiting* state throughout ([`Model::waiting_actors`]) while every
//!   always-enabled actor participates in the cycle: a weakly-fair
//!   scheduler can then loop forever and starve the waiter. The reported
//!   schedule is a lasso — a stem from the initial state plus the cycle.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// A concurrent system with explicitly enumerated atomic steps.
pub trait Model {
    /// Global system state. States are deduplicated by `Eq + Hash`, so the
    /// state must capture everything the transition function reads.
    type State: Clone + Eq + Hash + Debug;
    /// One atomic step some thread can take.
    type Action: Copy + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;
    /// All actions enabled in `s`. Empty for terminal states; empty for a
    /// non-terminal state means deadlock.
    fn enabled(&self, s: &Self::State) -> Vec<Self::Action>;
    /// Apply one enabled action. Must be deterministic.
    fn step(&self, s: &Self::State, a: Self::Action) -> Self::State;
    /// Is `s` a legitimate end state (all threads exited)?
    fn is_terminal(&self, s: &Self::State) -> bool;
    /// Invariant checked on every reachable state (including terminal
    /// ones). Return `Err` with a description to fail exploration.
    fn check(&self, s: &Self::State) -> Result<(), String>;

    /// Which thread/actor performs `a`. Used to group actions for the
    /// ample-set reduction and to attribute cycle participation in the
    /// liveness check. The default (everything is actor 0) disables both.
    fn actor(&self, a: Self::Action) -> usize {
        let _ = a;
        0
    }

    /// Does `a`, taken from `s`, commute with every *other* actor's
    /// enabled actions and stay invisible to [`Model::check`],
    /// [`Model::is_terminal`], and [`Model::waiting_actors`]? Only actions
    /// for which this holds may be collapsed by the reduction; the default
    /// `false` keeps exploration exhaustive.
    fn is_local(&self, s: &Self::State, a: Self::Action) -> bool {
        let _ = (s, a);
        false
    }

    /// Actors that are blocked waiting for progress by others in `s`
    /// (parked on a condvar, spinning on a flag). Drives the liveness
    /// check: an actor waiting in *every* state of a fair cycle is starved.
    /// The default (nobody waits) makes liveness trivially pass.
    fn waiting_actors(&self, s: &Self::State) -> Vec<usize> {
        let _ = s;
        Vec::new()
    }
}

/// Knobs for one exploration run. Construct with [`ExploreOptions::new`]
/// and flip the extensions on as needed.
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Bound on distinct states; exceeding it is an error, never a silent
    /// truncation.
    pub max_states: usize,
    /// Enable ample-set partial-order reduction (needs [`Model::actor`]
    /// and [`Model::is_local`] to be meaningful).
    pub reduction: bool,
    /// Enable lasso-based liveness checking (needs
    /// [`Model::waiting_actors`] to be meaningful).
    pub liveness: bool,
}

impl ExploreOptions {
    /// Exhaustive exploration bounded by `max_states`, extensions off.
    pub fn new(max_states: usize) -> ExploreOptions {
        ExploreOptions {
            max_states,
            reduction: false,
            liveness: false,
        }
    }

    /// Turn ample-set reduction on.
    pub fn with_reduction(mut self) -> ExploreOptions {
        self.reduction = true;
        self
    }

    /// Turn lasso liveness checking on.
    pub fn with_liveness(mut self) -> ExploreOptions {
        self.liveness = true;
        self
    }
}

/// Statistics from a completed exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states reached.
    pub terminal_states: usize,
    /// Transitions taken (edges in the state graph).
    pub transitions: usize,
    /// States where the ample-set reduction pruned siblings (0 when the
    /// reduction is off or never applicable).
    pub ample_states: usize,
}

/// A schedule that violates a property, with the action trace leading to it.
#[derive(Debug, Clone)]
pub struct ScheduleError {
    /// What went wrong (invariant message, deadlock, livelock, state-space
    /// overflow).
    pub message: String,
    /// Debug-formatted actions from the initial state to the failure. For
    /// liveness violations this is a lasso: stem, a `-- cycle --` marker,
    /// then the repeating suffix.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}: {a}")?;
        }
        Ok(())
    }
}

/// Exhaustively explore every reachable interleaving of `model`.
///
/// `max_states` bounds the state space: exceeding it is an error (the
/// model is bigger than the harness is prepared to prove things about),
/// never a silent truncation. Equivalent to [`explore_with`] with both
/// extensions off.
pub fn explore<M: Model>(model: &M, max_states: usize) -> Result<Exploration, ScheduleError> {
    explore_with(model, ExploreOptions::new(max_states))
}

/// A recorded transition, kept only when liveness checking is on.
struct Edge {
    to: usize,
    actor: usize,
    label: String,
}

/// Per-state facts the liveness pass needs after the DFS finishes.
struct LivenessLog {
    /// Outgoing edges per state id (includes edges to already-visited
    /// states — exactly the back edges that close lassos).
    edges: Vec<Vec<Edge>>,
    /// Actors with at least one enabled action, per state id.
    enabled_actors: Vec<BTreeSet<usize>>,
    /// [`Model::waiting_actors`] per state id.
    waiting: Vec<BTreeSet<usize>>,
}

/// One suspended node of the iterative DFS.
struct Frame<M: Model> {
    id: usize,
    state: M::State,
    /// Actions this frame will expand (the ample set, or everything).
    actions: Vec<M::Action>,
    next: usize,
}

/// Explore with explicit [`ExploreOptions`].
pub fn explore_with<M: Model>(
    model: &M,
    opts: ExploreOptions,
) -> Result<Exploration, ScheduleError> {
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut on_stack: Vec<bool> = Vec::new();
    let mut stats = Exploration {
        states: 0,
        terminal_states: 0,
        transitions: 0,
        ample_states: 0,
    };
    let mut log = LivenessLog {
        edges: Vec::new(),
        enabled_actors: Vec::new(),
        waiting: Vec::new(),
    };
    // Labels of the edges from the root to the top frame — the replayable
    // schedule for any failure discovered at the top of the stack.
    let mut labels: Vec<String> = Vec::new();
    let mut stack: Vec<Frame<M>> = Vec::new();

    let init = model.initial();
    match admit(
        model,
        init,
        &opts,
        &mut index,
        &mut on_stack,
        &mut stats,
        &mut log,
        &labels,
    )? {
        Admitted::New(frame) => stack.push(frame),
        Admitted::Seen(_) => {}
    }

    while let Some(top) = stack.last_mut() {
        if top.next >= top.actions.len() {
            on_stack[top.id] = false;
            stack.pop();
            // The root frame has no incoming edge label.
            if !stack.is_empty() {
                labels.pop();
            }
            continue;
        }
        let a = top.actions[top.next];
        top.next += 1;
        stats.transitions += 1;
        let from = top.id;
        let next_state = model.step(&top.state, a);
        let label = format!("{a:?}");
        labels.push(label.clone());
        let admitted = admit(
            model,
            next_state,
            &opts,
            &mut index,
            &mut on_stack,
            &mut stats,
            &mut log,
            &labels,
        )?;
        let to = match &admitted {
            Admitted::New(f) => f.id,
            Admitted::Seen(id) => *id,
        };
        if opts.liveness {
            log.edges[from].push(Edge {
                to,
                actor: model.actor(a),
                label,
            });
        }
        match admitted {
            Admitted::New(frame) => stack.push(frame),
            Admitted::Seen(_) => {
                labels.pop();
            }
        }
    }

    if opts.liveness {
        check_lassos(&log, &index)?;
    }
    Ok(stats)
}

enum Admitted<M: Model> {
    New(Frame<M>),
    Seen(usize),
}

/// First-visit processing of a state: dedup, bound check, invariant,
/// deadlock/terminal checks, stats, and (if reduction is on) ample-set
/// selection. `labels` is the schedule that reached this state.
#[allow(clippy::too_many_arguments)]
fn admit<M: Model>(
    model: &M,
    state: M::State,
    opts: &ExploreOptions,
    index: &mut HashMap<M::State, usize>,
    on_stack: &mut Vec<bool>,
    stats: &mut Exploration,
    log: &mut LivenessLog,
    labels: &[String],
) -> Result<Admitted<M>, ScheduleError> {
    if let Some(&id) = index.get(&state) {
        return Ok(Admitted::Seen(id));
    }
    if index.len() >= opts.max_states {
        return Err(ScheduleError {
            message: format!("state space exceeds {} states", opts.max_states),
            trace: labels.to_vec(),
        });
    }
    model.check(&state).map_err(|message| ScheduleError {
        message: format!("invariant violated: {message}\n  in state: {state:?}"),
        trace: labels.to_vec(),
    })?;
    let actions = model.enabled(&state);
    let terminal = model.is_terminal(&state);
    if actions.is_empty() && !terminal {
        return Err(ScheduleError {
            message: format!("deadlock: no action enabled in non-terminal state\n  {state:?}"),
            trace: labels.to_vec(),
        });
    }
    if terminal && !actions.is_empty() {
        return Err(ScheduleError {
            message: format!("terminal state still has enabled actions {actions:?}\n  {state:?}"),
            trace: labels.to_vec(),
        });
    }
    let id = index.len();
    index.insert(state.clone(), id);
    on_stack.push(true);
    stats.states += 1;
    if terminal {
        stats.terminal_states += 1;
    }
    if opts.liveness {
        log.edges.push(Vec::new());
        log.enabled_actors
            .push(actions.iter().map(|&a| model.actor(a)).collect());
        log.waiting
            .push(model.waiting_actors(&state).into_iter().collect());
    }
    let selected = if opts.reduction {
        select_ample(model, &state, &actions, index, on_stack, stats)
    } else {
        actions
    };
    Ok(Admitted::New(Frame {
        id,
        state,
        actions: selected,
        next: 0,
    }))
}

/// Pick an ample subset of `actions` to expand from `state`, or return
/// them all. A candidate is one actor's complete set of enabled actions,
/// all declared local; the stack proviso rejects a candidate whose any
/// successor is on the current DFS stack (which would let a non-local
/// action be ignored forever around a cycle). Because the DFS stack below
/// a frame never changes while the frame is live, checking the proviso
/// once at selection time is exact.
fn select_ample<M: Model>(
    model: &M,
    state: &M::State,
    actions: &[M::Action],
    index: &HashMap<M::State, usize>,
    on_stack: &[bool],
    stats: &mut Exploration,
) -> Vec<M::Action> {
    let mut by_actor: BTreeMap<usize, Vec<M::Action>> = BTreeMap::new();
    for &a in actions {
        by_actor.entry(model.actor(a)).or_default().push(a);
    }
    if by_actor.len() < 2 {
        return actions.to_vec();
    }
    'candidates: for group in by_actor.values() {
        for &a in group {
            if !model.is_local(state, a) {
                continue 'candidates;
            }
            let succ = model.step(state, a);
            if let Some(&sid) = index.get(&succ) {
                if on_stack[sid] {
                    continue 'candidates;
                }
            }
        }
        stats.ample_states += 1;
        return group.clone();
    }
    actions.to_vec()
}

/// Scan the recorded transition graph for starving cycles: an SCC some
/// actor waits in throughout, while every actor enabled in all of its
/// states also steps inside it (so a weakly-fair scheduler can spin there
/// forever). Reports the lasso schedule on violation.
fn check_lassos<S: Eq + Hash + Debug>(
    log: &LivenessLog,
    index: &HashMap<S, usize>,
) -> Result<(), ScheduleError> {
    let n = log.edges.len();
    let sccs = tarjan_sccs(&log.edges, n);
    for scc in &sccs {
        let members: HashSet<usize> = scc.iter().copied().collect();
        // Actors driving edges that stay inside the SCC; an SCC without
        // internal edges (trivial, no self-loop) cannot be looped in.
        let mut steppers: BTreeSet<usize> = BTreeSet::new();
        let mut has_internal = false;
        for &s in scc {
            for e in &log.edges[s] {
                if members.contains(&e.to) {
                    has_internal = true;
                    steppers.insert(e.actor);
                }
            }
        }
        if !has_internal {
            continue;
        }
        let mut always_waiting = log.waiting[scc[0]].clone();
        let mut always_enabled = log.enabled_actors[scc[0]].clone();
        for &s in &scc[1..] {
            always_waiting = always_waiting
                .intersection(&log.waiting[s])
                .copied()
                .collect();
            always_enabled = always_enabled
                .intersection(&log.enabled_actors[s])
                .copied()
                .collect();
        }
        if always_waiting.is_empty() {
            continue;
        }
        if always_enabled.iter().all(|a| steppers.contains(a)) {
            let trace = lasso_trace(log, &members, scc[0]);
            let state_desc = index
                .iter()
                .find(|(_, &id)| id == scc[0])
                .map(|(s, _)| format!("{s:?}"))
                .unwrap_or_default();
            return Err(ScheduleError {
                message: format!(
                    "liveness violation: actor(s) {:?} wait forever around a reachable \
                     {}-state cycle that a weakly-fair scheduler can repeat \
                     (cycle actors: {:?})\n  a cycle state: {}",
                    always_waiting.iter().collect::<Vec<_>>(),
                    scc.len(),
                    steppers.iter().collect::<Vec<_>>(),
                    state_desc,
                ),
                trace,
            });
        }
    }
    Ok(())
}

/// Iterative Tarjan SCC over the recorded edges. Returns every component
/// (including trivial ones; the caller filters by internal edges).
fn tarjan_sccs(edges: &[Vec<Edge>], n: usize) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut idx = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut comp_stack: Vec<usize> = Vec::new();
    let mut on_comp = vec![false; n];
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // (node, next outgoing edge to examine)
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if idx[root] != UNSET {
            continue;
        }
        call.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                idx[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                comp_stack.push(v);
                on_comp[v] = true;
            }
            if *ei < edges[v].len() {
                let w = edges[v][*ei].to;
                *ei += 1;
                if idx[w] == UNSET {
                    call.push((w, 0));
                } else if on_comp[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == idx[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = comp_stack.pop().expect("component stack non-empty");
                        on_comp[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Build the lasso schedule: BFS stem from state 0 to `entry`, a
/// `-- cycle --` marker, then a BFS cycle from `entry` back to itself
/// using only SCC-internal edges.
fn lasso_trace(log: &LivenessLog, members: &HashSet<usize>, entry: usize) -> Vec<String> {
    let n = log.edges.len();
    let mut trace = bfs_path(log, 0, entry, n, None);
    trace.push("-- cycle --".to_string());
    // A self-loop on entry is the shortest cycle; otherwise walk to a
    // predecessor of entry inside the SCC and close the loop.
    if let Some(e) = log.edges[entry].iter().find(|e| e.to == entry) {
        trace.push(e.label.clone());
        return trace;
    }
    // First hop out of entry inside the SCC, then BFS back to entry.
    if let Some(first) = log.edges[entry].iter().find(|e| members.contains(&e.to)) {
        trace.push(first.label.clone());
        let back = bfs_path(log, first.to, entry, n, Some(members));
        trace.extend(back);
    }
    trace
}

/// Labels along a shortest edge path `from → to` (empty if `from == to`),
/// optionally restricted to nodes in `within`.
fn bfs_path(
    log: &LivenessLog,
    from: usize,
    to: usize,
    n: usize,
    within: Option<&HashSet<usize>>,
) -> Vec<String> {
    if from == to {
        return Vec::new();
    }
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (node, edge idx)
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = vec![false; n];
    seen[from] = true;
    'bfs: while let Some(v) = queue.pop_front() {
        for (i, e) in log.edges[v].iter().enumerate() {
            if let Some(w) = within {
                if !w.contains(&e.to) {
                    continue;
                }
            }
            if !seen[e.to] {
                seen[e.to] = true;
                prev[e.to] = Some((v, i));
                if e.to == to {
                    break 'bfs;
                }
                queue.push_back(e.to);
            }
        }
    }
    let mut labels = Vec::new();
    let mut cur = to;
    while cur != from {
        match prev[cur] {
            Some((p, i)) => {
                labels.push(log.edges[p][i].label.clone());
                cur = p;
            }
            None => break, // unreachable target: return what we have
        }
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two workers increment a shared counter twice each, atomically.
    /// Terminal: counter == 4 regardless of interleaving.
    struct Counter;

    impl Model for Counter {
        type State = (u8, u8, u8); // (worker A remaining, worker B remaining, counter)
        type Action = u8; // 0 = A steps, 1 = B steps

        fn initial(&self) -> Self::State {
            (2, 2, 0)
        }
        fn enabled(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if s.0 > 0 {
                v.push(0);
            }
            if s.1 > 0 {
                v.push(1);
            }
            v
        }
        fn step(&self, s: &Self::State, a: u8) -> Self::State {
            match a {
                0 => (s.0 - 1, s.1, s.2 + 1),
                _ => (s.0, s.1 - 1, s.2 + 1),
            }
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == 0 && s.1 == 0
        }
        fn check(&self, s: &Self::State) -> Result<(), String> {
            if self.is_terminal(s) && s.2 != 4 {
                return Err(format!("terminal counter {} ≠ 4", s.2));
            }
            Ok(())
        }
    }

    #[test]
    fn counter_explores_all_interleavings() {
        let r = explore(&Counter, 1000).unwrap();
        // states: (a, b) remaining pairs × counter is determined → 3×3 = 9
        assert_eq!(r.states, 9);
        assert_eq!(r.terminal_states, 1);
        // transitions = edges of the 3×3 grid DAG: 2·3·2 = 12
        assert_eq!(r.transitions, 12);
        assert_eq!(r.ample_states, 0);
    }

    /// A model with a buried deadlock: B can only step after A has fully
    /// finished, but A's second step requires B to have started.
    struct Deadlocky;

    impl Model for Deadlocky {
        type State = (u8, u8);
        type Action = u8;

        fn initial(&self) -> Self::State {
            (0, 0)
        }
        fn enabled(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if s.0 == 0 || (s.0 == 1 && s.1 >= 1) {
                v.push(0);
            }
            if s.1 == 0 && s.0 == 2 {
                v.push(1);
            }
            v
        }
        fn step(&self, s: &Self::State, a: u8) -> Self::State {
            match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            }
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == 2 && s.1 == 1
        }
        fn check(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlock_is_reported_with_schedule() {
        let err = explore(&Deadlocky, 1000).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        // the schedule that reaches the stuck state: A once, then nothing
        assert_eq!(err.trace.len(), 1);
        assert!(err.to_string().contains("schedule"));
    }

    #[test]
    fn state_space_overflow_is_loud() {
        let err = explore(&Counter, 3).unwrap_err();
        assert!(err.message.contains("exceeds 3 states"), "{}", err.message);
    }

    /// `threads` workers each take `steps` purely local steps then finish.
    /// Fully independent, so the reduced exploration should collapse to a
    /// single serialized order while the full one is exponential-ish.
    struct LocalWorkers {
        threads: usize,
        steps: u8,
    }

    impl Model for LocalWorkers {
        type State = Vec<u8>; // remaining steps per worker
        type Action = (usize, ()); // worker index

        fn initial(&self) -> Self::State {
            vec![self.steps; self.threads]
        }
        fn enabled(&self, s: &Self::State) -> Vec<Self::Action> {
            s.iter()
                .enumerate()
                .filter(|(_, &r)| r > 0)
                .map(|(i, _)| (i, ()))
                .collect()
        }
        fn step(&self, s: &Self::State, a: Self::Action) -> Self::State {
            let mut next = s.clone();
            next[a.0] -= 1;
            next
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.iter().all(|&r| r == 0)
        }
        fn check(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
        fn actor(&self, a: Self::Action) -> usize {
            a.0
        }
        fn is_local(&self, _: &Self::State, _: Self::Action) -> bool {
            true
        }
    }

    #[test]
    fn reduction_collapses_independent_workers() {
        let m = LocalWorkers {
            threads: 4,
            steps: 3,
        };
        let full = explore_with(&m, ExploreOptions::new(100_000)).unwrap();
        let reduced = explore_with(&m, ExploreOptions::new(100_000).with_reduction()).unwrap();
        // full: 4^4 = 256 states; reduced: one serialized chain = 13 states
        assert_eq!(full.states, 256);
        assert_eq!(reduced.states, 13);
        assert_eq!(reduced.terminal_states, full.terminal_states);
        assert!(reduced.ample_states > 0);
        assert_eq!(full.ample_states, 0);
    }

    #[test]
    fn reduction_preserves_counter_results() {
        // Counter declares nothing local, so reduction must change nothing.
        let full = explore_with(&Counter, ExploreOptions::new(1000)).unwrap();
        let reduced = explore_with(&Counter, ExploreOptions::new(1000).with_reduction()).unwrap();
        assert_eq!(full, reduced);
    }

    /// Actor 1 waits for a flag that actor 0 never sets: actor 0 spins in
    /// a self-loop instead. No deadlock (0 is always enabled), but actor 1
    /// starves — only the lasso check can see it.
    struct Spinner;

    impl Model for Spinner {
        type State = (bool, bool); // (flag set, waiter done)
        type Action = u8; // 0 = spinner polls, 1 = waiter proceeds (needs flag)

        fn initial(&self) -> Self::State {
            (false, false)
        }
        fn enabled(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if !s.1 {
                v.push(0); // spinner polls forever until waiter finishes
                if s.0 {
                    v.push(1);
                }
            }
            v
        }
        fn step(&self, s: &Self::State, a: u8) -> Self::State {
            match a {
                0 => *s, // poll: no state change — the self-loop
                _ => (s.0, true),
            }
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.1
        }
        fn check(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
        fn actor(&self, a: Self::Action) -> usize {
            a as usize
        }
        fn waiting_actors(&self, s: &Self::State) -> Vec<usize> {
            if !s.0 && !s.1 {
                vec![1] // waiter is blocked until the flag appears
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn lasso_liveness_catches_spin_starvation() {
        // Safety-only exploration passes: every state has an action.
        explore_with(&Spinner, ExploreOptions::new(100)).unwrap();
        // Liveness sees actor 1 starving around the poll self-loop.
        let err = explore_with(&Spinner, ExploreOptions::new(100).with_liveness()).unwrap_err();
        assert!(err.message.contains("liveness violation"), "{err}");
        assert!(err.trace.iter().any(|l| l == "-- cycle --"), "{err}");
    }

    #[test]
    fn liveness_passes_when_waiter_is_served() {
        /// Like Spinner but the flag starts set, so the waiter can always
        /// finish; the poll cycle exists but the waiter is not waiting.
        struct Served;
        impl Model for Served {
            type State = (bool, bool);
            type Action = u8;
            fn initial(&self) -> Self::State {
                (true, false)
            }
            fn enabled(&self, s: &Self::State) -> Vec<u8> {
                if s.1 {
                    Vec::new()
                } else {
                    vec![0, 1]
                }
            }
            fn step(&self, s: &Self::State, a: u8) -> Self::State {
                match a {
                    0 => *s,
                    _ => (s.0, true),
                }
            }
            fn is_terminal(&self, s: &Self::State) -> bool {
                s.1
            }
            fn check(&self, _: &Self::State) -> Result<(), String> {
                Ok(())
            }
            fn actor(&self, a: Self::Action) -> usize {
                a as usize
            }
            fn waiting_actors(&self, _: &Self::State) -> Vec<usize> {
                Vec::new()
            }
        }
        explore_with(&Served, ExploreOptions::new(100).with_liveness()).unwrap();
    }
}
