//! Deterministic schedule exploration for message-passing state machines.
//!
//! A minimal in-tree model checker in the spirit of loom: a concurrent
//! system is modelled as a [`Model`] — an initial state, a set of enabled
//! atomic actions per state, and a deterministic transition function. The
//! explorer walks **every** reachable interleaving by depth-first search
//! over the state graph (deduplicating states, so confluent interleavings
//! are visited once) and checks:
//!
//! * the state invariant holds in every reachable state;
//! * no non-terminal state is stuck (deadlock-freedom: some action is
//!   always enabled until the system terminates);
//! * every terminal state satisfies the model's terminal checks.
//!
//! On failure the explorer reports a minimal-by-construction action trace
//! from the initial state to the offending state, which is a replayable
//! schedule — the property that makes the harness useful in CI.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

/// A concurrent system with explicitly enumerated atomic steps.
pub trait Model {
    /// Global system state. States are deduplicated by `Eq + Hash`, so the
    /// state must capture everything the transition function reads.
    type State: Clone + Eq + Hash + Debug;
    /// One atomic step some thread can take.
    type Action: Copy + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;
    /// All actions enabled in `s`. Empty for terminal states; empty for a
    /// non-terminal state means deadlock.
    fn enabled(&self, s: &Self::State) -> Vec<Self::Action>;
    /// Apply one enabled action. Must be deterministic.
    fn step(&self, s: &Self::State, a: Self::Action) -> Self::State;
    /// Is `s` a legitimate end state (all threads exited)?
    fn is_terminal(&self, s: &Self::State) -> bool;
    /// Invariant checked on every reachable state (including terminal
    /// ones). Return `Err` with a description to fail exploration.
    fn check(&self, s: &Self::State) -> Result<(), String>;
}

/// Statistics from a completed exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states reached.
    pub terminal_states: usize,
    /// Transitions taken (edges in the state graph).
    pub transitions: usize,
}

/// A schedule that violates a property, with the action trace leading to it.
#[derive(Debug, Clone)]
pub struct ScheduleError {
    /// What went wrong (invariant message, deadlock, state-space overflow).
    pub message: String,
    /// Debug-formatted actions from the initial state to the failure.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}: {a}")?;
        }
        Ok(())
    }
}

/// Exhaustively explore every reachable interleaving of `model`.
///
/// `max_states` bounds the state space: exceeding it is an error (the
/// model is bigger than the harness is prepared to prove things about),
/// never a silent truncation.
pub fn explore<M: Model>(model: &M, max_states: usize) -> Result<Exploration, ScheduleError> {
    let mut visited: HashSet<M::State> = HashSet::new();
    let mut stats = Exploration {
        states: 0,
        terminal_states: 0,
        transitions: 0,
    };
    let mut trace: Vec<String> = Vec::new();
    let init = model.initial();
    dfs(
        model,
        init,
        &mut visited,
        &mut stats,
        &mut trace,
        max_states,
    )?;
    Ok(stats)
}

fn dfs<M: Model>(
    model: &M,
    state: M::State,
    visited: &mut HashSet<M::State>,
    stats: &mut Exploration,
    trace: &mut Vec<String>,
    max_states: usize,
) -> Result<(), ScheduleError> {
    if visited.contains(&state) {
        return Ok(());
    }
    if visited.len() >= max_states {
        return Err(ScheduleError {
            message: format!("state space exceeds {max_states} states"),
            trace: trace.clone(),
        });
    }
    model.check(&state).map_err(|message| ScheduleError {
        message: format!("invariant violated: {message}\n  in state: {state:?}"),
        trace: trace.clone(),
    })?;
    let actions = model.enabled(&state);
    let terminal = model.is_terminal(&state);
    if actions.is_empty() && !terminal {
        return Err(ScheduleError {
            message: format!("deadlock: no action enabled in non-terminal state\n  {state:?}"),
            trace: trace.clone(),
        });
    }
    if terminal && !actions.is_empty() {
        return Err(ScheduleError {
            message: format!("terminal state still has enabled actions {actions:?}\n  {state:?}"),
            trace: trace.clone(),
        });
    }
    visited.insert(state.clone());
    stats.states += 1;
    if terminal {
        stats.terminal_states += 1;
    }
    for a in actions {
        stats.transitions += 1;
        let next = model.step(&state, a);
        trace.push(format!("{a:?}"));
        dfs(model, next, visited, stats, trace, max_states)?;
        trace.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two workers increment a shared counter twice each, atomically.
    /// Terminal: counter == 4 regardless of interleaving.
    struct Counter;

    impl Model for Counter {
        type State = (u8, u8, u8); // (worker A remaining, worker B remaining, counter)
        type Action = u8; // 0 = A steps, 1 = B steps

        fn initial(&self) -> Self::State {
            (2, 2, 0)
        }
        fn enabled(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if s.0 > 0 {
                v.push(0);
            }
            if s.1 > 0 {
                v.push(1);
            }
            v
        }
        fn step(&self, s: &Self::State, a: u8) -> Self::State {
            match a {
                0 => (s.0 - 1, s.1, s.2 + 1),
                _ => (s.0, s.1 - 1, s.2 + 1),
            }
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == 0 && s.1 == 0
        }
        fn check(&self, s: &Self::State) -> Result<(), String> {
            if self.is_terminal(s) && s.2 != 4 {
                return Err(format!("terminal counter {} ≠ 4", s.2));
            }
            Ok(())
        }
    }

    #[test]
    fn counter_explores_all_interleavings() {
        let r = explore(&Counter, 1000).unwrap();
        // states: (a, b) remaining pairs × counter is determined → 3×3 = 9
        assert_eq!(r.states, 9);
        assert_eq!(r.terminal_states, 1);
        // transitions = edges of the 3×3 grid DAG: 2·3·2 = 12
        assert_eq!(r.transitions, 12);
    }

    /// A model with a buried deadlock: B can only step after A has fully
    /// finished, but A's second step requires B to have started.
    struct Deadlocky;

    impl Model for Deadlocky {
        type State = (u8, u8);
        type Action = u8;

        fn initial(&self) -> Self::State {
            (0, 0)
        }
        fn enabled(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if s.0 == 0 || (s.0 == 1 && s.1 >= 1) {
                v.push(0);
            }
            if s.1 == 0 && s.0 == 2 {
                v.push(1);
            }
            v
        }
        fn step(&self, s: &Self::State, a: u8) -> Self::State {
            match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            }
        }
        fn is_terminal(&self, s: &Self::State) -> bool {
            s.0 == 2 && s.1 == 1
        }
        fn check(&self, _: &Self::State) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlock_is_reported_with_schedule() {
        let err = explore(&Deadlocky, 1000).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        // the schedule that reaches the stuck state: A once, then nothing
        assert_eq!(err.trace.len(), 1);
        assert!(err.to_string().contains("schedule"));
    }

    #[test]
    fn state_space_overflow_is_loud() {
        let err = explore(&Counter, 3).unwrap_err();
        assert!(err.message.contains("exceeds 3 states"), "{}", err.message);
    }
}
