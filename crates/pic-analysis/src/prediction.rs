//! Validity gate for outbound prediction responses.
//!
//! The resident prediction service (`picpredict serve`) refuses to emit a
//! response whose numeric payload is degenerate: a NaN or negative
//! predicted kernel time is always a bug upstream (a model admitted past
//! [`crate::expr_check`] despite a divergent region, a workload row that
//! escaped [`crate::workload`]'s catalog), and shipping it to a client
//! turns a positioned server-side diagnostic into a silently wrong
//! downstream plot. The checks here are O(payload) and allocation-light —
//! cheap enough to run on every response.

use std::fmt;

/// One degenerate value in a predicted kernel-time payload.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionViolation {
    /// Trace-sample index of the offending value.
    pub sample: usize,
    /// Rank index of the offending value.
    pub rank: usize,
    /// Kernel slot (index into `KernelKind::ALL` order).
    pub kernel: usize,
    /// The offending value.
    pub value: f64,
    /// What is wrong with it.
    pub reason: PredictionDefect,
}

/// Why a predicted value is unacceptable in a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionDefect {
    /// Not a number — arithmetic escaped the models' protected operators.
    NotFinite,
    /// A negative execution time.
    Negative,
}

impl fmt::Display for PredictionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.reason {
            PredictionDefect::NotFinite => "non-finite",
            PredictionDefect::Negative => "negative",
        };
        write!(
            f,
            "{what} predicted kernel time {} at (sample {}, rank {}, kernel slot {})",
            self.value, self.sample, self.rank, self.kernel
        )
    }
}

/// Scan a `[sample][rank][kernel]` prediction payload (the
/// `predict_kernel_seconds` shape) for values no response may carry.
/// Also flags ragged rank arity — every sample must predict for the same
/// rank count.
pub fn check_prediction(predicted: &[Vec<[f64; 6]>]) -> Vec<PredictionViolation> {
    let mut out = Vec::new();
    let ranks = predicted.first().map(|s| s.len()).unwrap_or(0);
    for (t, per_rank) in predicted.iter().enumerate() {
        if per_rank.len() != ranks {
            out.push(PredictionViolation {
                sample: t,
                rank: per_rank.len(),
                kernel: 0,
                value: ranks as f64,
                reason: PredictionDefect::NotFinite,
            });
            continue;
        }
        for (r, row) in per_rank.iter().enumerate() {
            for (k, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    out.push(PredictionViolation {
                        sample: t,
                        rank: r,
                        kernel: k,
                        value: v,
                        reason: PredictionDefect::NotFinite,
                    });
                } else if v < 0.0 {
                    out.push(PredictionViolation {
                        sample: t,
                        rank: r,
                        kernel: k,
                        value: v,
                        reason: PredictionDefect::Negative,
                    });
                }
            }
        }
    }
    out
}

/// [`check_prediction`] as a gate: `Err` with the first violations folded
/// into a positioned message when the payload must not ship.
pub fn assert_prediction_valid(predicted: &[Vec<[f64; 6]>]) -> pic_types::Result<()> {
    let violations = check_prediction(predicted);
    if violations.is_empty() {
        return Ok(());
    }
    let shown: Vec<String> = violations.iter().take(3).map(|v| v.to_string()).collect();
    Err(pic_types::PicError::model(format!(
        "prediction payload failed response gate ({} violation(s)): {}{}",
        violations.len(),
        shown.join("; "),
        if violations.len() > shown.len() {
            "; ..."
        } else {
            ""
        }
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(samples: usize, ranks: usize) -> Vec<Vec<[f64; 6]>> {
        vec![vec![[1e-3; 6]; ranks]; samples]
    }

    #[test]
    fn clean_payload_passes() {
        assert!(check_prediction(&clean(3, 4)).is_empty());
        assert!(assert_prediction_valid(&clean(3, 4)).is_ok());
        assert!(check_prediction(&[]).is_empty());
        // zero is a legitimate predicted time (idle rank, empty sample)
        assert!(check_prediction(&[vec![[0.0; 6]; 2]]).is_empty());
    }

    #[test]
    fn nan_and_negative_are_positioned() {
        let mut p = clean(2, 3);
        p[1][2][4] = f64::NAN;
        p[0][1][0] = -0.5;
        let v = check_prediction(&p);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|x| x.sample == 1
            && x.rank == 2
            && x.kernel == 4
            && x.reason == PredictionDefect::NotFinite));
        assert!(v.iter().any(|x| x.sample == 0
            && x.rank == 1
            && x.kernel == 0
            && x.reason == PredictionDefect::Negative));
        let err = assert_prediction_valid(&p).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("sample 1"), "{msg}");
    }

    #[test]
    fn infinity_fails() {
        let mut p = clean(1, 1);
        p[0][0][5] = f64::INFINITY;
        assert_eq!(check_prediction(&p).len(), 1);
    }

    #[test]
    fn ragged_rank_arity_fails() {
        let mut p = clean(2, 3);
        p[1].pop();
        assert!(!check_prediction(&p).is_empty());
    }
}
