//! Explicit-state models of the `picpredict serve` concurrency layer.
//!
//! Three protocols, one model each, all checked by the [`crate::sched`]
//! explorer with ample-set partial-order reduction and lasso liveness:
//!
//! * [`single_flight`] — leader election, follower parking, publish /
//!   notify / remove ordering, and leader panic/abandonment;
//! * [`lru`] — byte-budgeted LRU weight accounting (counter never
//!   drifts, budget holds after every settling eviction, the admitted
//!   entry survives its own insert);
//! * [`shutdown`] — the flag + condvar + accept-poke + drain handshake.
//!
//! [`verify_serve_protocols`] runs each model over a configuration
//! matrix, both reduced and (for reporting) fully expanded, so the
//! reduction factor is visible. [`serve_mutant_corpus`] runs the seeded
//! bugs — one per bug class the checker claims to catch — and reports
//! whether each was *caught*; CI fails if any slips through. Surfaced to
//! users as `picpredict check --serve`.

pub mod lru;
pub mod shutdown;
pub mod single_flight;

use crate::sched::{explore_with, Exploration, ExploreOptions, ScheduleError};
use lru::{LruModel, LruMutant, LruSpec};
use shutdown::{SdMutant, ShutdownModel, ShutdownSpec};
use single_flight::{SfMutant, SingleFlightModel, SingleFlightSpec};

/// State bound for any single configuration; exceeding it is a checker
/// bug (the matrix is sized to stay far below).
const MAX_STATES: usize = 500_000;

/// Skip the full (unreduced) comparison run when the reduced exploration
/// already visited this many states — the full run is for reporting the
/// reduction factor, not for soundness.
const FULL_RUN_CEILING: usize = 60_000;

/// Result of verifying one model configuration.
#[derive(Debug, Clone)]
pub struct ProtocolVerdict {
    /// Which protocol model (`"single-flight"`, `"lru"`, `"shutdown"`).
    pub model: &'static str,
    /// Debug rendering of the configuration explored.
    pub config: String,
    /// Statistics of the reduced (ample-set + liveness) exploration.
    pub reduced: Exploration,
    /// Statistics of the full exploration, when it was cheap enough to
    /// also run for comparison.
    pub full: Option<Exploration>,
}

impl ProtocolVerdict {
    /// `full states / reduced states`, when both were run.
    pub fn reduction_factor(&self) -> Option<f64> {
        self.full
            .map(|f| f.states as f64 / self.reduced.states.max(1) as f64)
    }
}

/// Outcome of one seeded mutant.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Corpus name of the mutant.
    pub name: &'static str,
    /// Did exploration report the seeded bug?
    pub caught: bool,
    /// First line of the checker's error (or a note that nothing fired).
    pub detail: String,
}

fn verify_one<M: crate::sched::Model>(
    model: &M,
    name: &'static str,
    config: String,
) -> Result<ProtocolVerdict, ScheduleError> {
    let reduced = explore_with(
        model,
        ExploreOptions::new(MAX_STATES)
            .with_reduction()
            .with_liveness(),
    )
    .map_err(|mut e| {
        e.message = format!("[{name} {config}] {}", e.message);
        e
    })?;
    let full = if reduced.states <= FULL_RUN_CEILING {
        Some(
            explore_with(model, ExploreOptions::new(MAX_STATES).with_liveness()).map_err(
                |mut e| {
                    e.message = format!("[{name} {config} full] {}", e.message);
                    e
                },
            )?,
        )
    } else {
        None
    };
    Ok(ProtocolVerdict {
        model: name,
        config,
        reduced,
        full,
    })
}

/// The single-flight configuration matrix: thread counts around the
/// interesting contention shapes, compute steps for reduction fodder,
/// and the panicking-leader path with the abandonment guard in place.
fn single_flight_matrix() -> Vec<SingleFlightSpec> {
    let mut specs = Vec::new();
    for threads in 2..=4 {
        for &compute_steps in &[0u8, 2] {
            for &leader_panics in &[false, true] {
                specs.push(SingleFlightSpec {
                    threads,
                    compute_steps,
                    leader_panics,
                    abandonment_guard: true,
                    mutant: SfMutant::None,
                });
            }
        }
    }
    specs
}

/// The LRU configuration matrix: budgets tight enough to force eviction,
/// an oversized artifact, and weight growth on/off.
fn lru_matrix() -> Vec<LruSpec> {
    let mut specs = Vec::new();
    for &(budget, weights) in &[(4u8, [2u8, 2, 3]), (5, [2, 3, 6]), (3, [1, 1, 1])] {
        for &grow in &[false, true] {
            specs.push(LruSpec {
                budget,
                weights,
                ops: 5,
                grow,
                mutant: LruMutant::None,
            });
        }
    }
    specs
}

/// The shutdown configuration matrix: handler counts and work steps.
fn shutdown_matrix() -> Vec<ShutdownSpec> {
    let mut specs = Vec::new();
    for handlers in 0..=2 {
        for &handler_steps in &[0u8, 2] {
            specs.push(ShutdownSpec {
                handlers,
                handler_steps,
                mutant: SdMutant::None,
            });
        }
    }
    specs
}

/// Exhaustively verify all three serve protocols over their config
/// matrices: deadlock-free, lost-wakeup-free (liveness lassos), leak-free
/// (terminal invariants), with per-config reduced-vs-full state counts.
pub fn verify_serve_protocols() -> Result<Vec<ProtocolVerdict>, ScheduleError> {
    let mut verdicts = Vec::new();
    for spec in single_flight_matrix() {
        verdicts.push(verify_one(
            &SingleFlightModel { spec },
            "single-flight",
            format!(
                "threads={} compute={} panics={}",
                spec.threads, spec.compute_steps, spec.leader_panics
            ),
        )?);
    }
    for spec in lru_matrix() {
        verdicts.push(verify_one(
            &LruModel { spec },
            "lru",
            format!(
                "budget={} weights={:?} ops={} grow={}",
                spec.budget, spec.weights, spec.ops, spec.grow
            ),
        )?);
    }
    for spec in shutdown_matrix() {
        verdicts.push(verify_one(
            &ShutdownModel { spec },
            "shutdown",
            format!("handlers={} steps={}", spec.handlers, spec.handler_steps),
        )?);
    }
    Ok(verdicts)
}

fn run_mutant<M: crate::sched::Model>(model: &M, name: &'static str) -> MutantOutcome {
    match explore_with(
        model,
        ExploreOptions::new(MAX_STATES)
            .with_reduction()
            .with_liveness(),
    ) {
        Ok(stats) => MutantOutcome {
            name,
            caught: false,
            detail: format!(
                "NOT CAUGHT: exploration passed ({} states, {} terminal)",
                stats.states, stats.terminal_states
            ),
        },
        Err(e) => MutantOutcome {
            name,
            caught: true,
            detail: e.message.lines().next().unwrap_or("").to_string(),
        },
    }
}

/// Run the seeded-mutant corpus: one representative bug per class the
/// checker claims to catch (dropped notify, reordered unlock/remove,
/// skipped weight decrement, lost wakeup, skipped connection-count
/// decrement, missing abandonment guard). Every entry must come back
/// `caught` — CI enforces it.
pub fn serve_mutant_corpus() -> Vec<MutantOutcome> {
    let sf = |leader_panics, abandonment_guard, mutant| SingleFlightModel {
        spec: SingleFlightSpec {
            threads: 3,
            compute_steps: 1,
            leader_panics,
            abandonment_guard,
            mutant,
        },
    };
    let lru = |mutant| LruModel {
        spec: LruSpec {
            budget: 4,
            weights: [2, 2, 3],
            ops: 5,
            grow: true,
            mutant,
        },
    };
    let sd = |mutant| ShutdownModel {
        spec: ShutdownSpec {
            handlers: 2,
            handler_steps: 1,
            mutant,
        },
    };
    vec![
        run_mutant(&sf(true, false, SfMutant::None), "sf-no-abandonment-guard"),
        run_mutant(&sf(false, true, SfMutant::DropNotify), "sf-drop-notify"),
        run_mutant(
            &sf(false, true, SfMutant::SkipTableRemove),
            "sf-skip-table-remove",
        ),
        run_mutant(
            &sf(false, true, SfMutant::RemoveBeforePublish),
            "sf-remove-before-publish",
        ),
        run_mutant(
            &lru(LruMutant::SkipEvictDecrement),
            "lru-skip-weight-decrement",
        ),
        run_mutant(
            &lru(LruMutant::DoubleCountReinsert),
            "lru-double-count-reinsert",
        ),
        run_mutant(&lru(LruMutant::EvictNewest), "lru-evict-newest"),
        run_mutant(&sd(SdMutant::DropNotify), "shutdown-drop-notify"),
        run_mutant(&sd(SdMutant::DropPoke), "shutdown-drop-poke"),
        run_mutant(&sd(SdMutant::FlagOutsideLock), "shutdown-flag-outside-lock"),
        run_mutant(
            &sd(SdMutant::SkipActiveDecrement),
            "shutdown-skip-active-decrement",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_verify_clean() {
        let verdicts = verify_serve_protocols().unwrap();
        assert_eq!(verdicts.len(), 12 + 6 + 6);
        for v in &verdicts {
            assert!(
                v.reduced.states > 0,
                "{} {}: empty exploration",
                v.model,
                v.config
            );
            if let Some(full) = v.full {
                assert!(
                    v.reduced.states <= full.states,
                    "{} {}: reduction grew the state space",
                    v.model,
                    v.config
                );
                assert_eq!(
                    v.reduced.terminal_states, full.terminal_states,
                    "{} {}: reduction changed the terminal-state set",
                    v.model, v.config
                );
            }
        }
        // The reduction must actually bite somewhere in the matrix.
        assert!(
            verdicts.iter().any(|v| v.reduced.ample_states > 0),
            "ample-set reduction never applied"
        );
        assert!(
            verdicts
                .iter()
                .any(|v| v.reduction_factor().is_some_and(|f| f > 1.5)),
            "no configuration showed a meaningful reduction factor"
        );
    }

    #[test]
    fn every_seeded_mutant_is_caught() {
        let outcomes = serve_mutant_corpus();
        assert_eq!(outcomes.len(), 11);
        let escaped: Vec<_> = outcomes.iter().filter(|o| !o.caught).collect();
        assert!(escaped.is_empty(), "mutants escaped: {escaped:#?}");
    }

    #[test]
    fn abandonment_deadlock_reports_replayable_schedule() {
        let m = SingleFlightModel {
            spec: SingleFlightSpec {
                threads: 2,
                compute_steps: 0,
                leader_panics: true,
                abandonment_guard: false,
                mutant: SfMutant::None,
            },
        };
        let err = explore_with(&m, ExploreOptions::new(10_000)).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        assert!(!err.trace.is_empty());
    }

    #[test]
    fn skipped_decrement_is_a_liveness_not_safety_bug() {
        let m = ShutdownModel {
            spec: ShutdownSpec {
                handlers: 1,
                handler_steps: 0,
                mutant: SdMutant::SkipActiveDecrement,
            },
        };
        // Safety-only exploration is blind to the spin.
        explore_with(&m, ExploreOptions::new(10_000)).unwrap();
        // The lasso check sees the waiter starving around the drain loop.
        let err = explore_with(&m, ExploreOptions::new(10_000).with_liveness()).unwrap_err();
        assert!(err.message.contains("liveness violation"), "{err}");
        assert!(err.trace.iter().any(|l| l == "-- cycle --"), "{err}");
    }
}
