//! Explicit-state model of the serve layer's single-flight protocol.
//!
//! Faithful to `pic-predict/src/serve/mod.rs::single_flight`: the first
//! thread to find no in-flight entry for its key becomes the *leader* —
//! it registers a `Flight` in the inflight table, computes, publishes the
//! result into `flight.done` under the flight mutex, wakes every parked
//! *follower* with `notify_all`, and removes the table entry. Followers
//! that arrive while the flight is registered park on the flight condvar
//! (`wait_while done.is_none()`) and read the published result.
//!
//! The model covers the abandonment path PR 8 fixes: a leader that
//! panics mid-compute either runs its drop guard (publishing an
//! `abandoned` 500 so followers unpark, then clearing the table so a
//! later request elects a fresh leader) or — modelling the pre-fix code
//! via [`SfMutant`]-less `abandonment_guard: false` — simply dies,
//! leaving followers parked forever, which exploration reports as a
//! deadlock with the exact schedule.
//!
//! Compute steps are the model's *local* actions: they only advance the
//! leader's private counter, so the ample-set reduction collapses the
//! interleavings that differ merely in where compute lands.

use crate::sched::Model;

/// Seeded bugs for the mutant corpus; `None` is the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfMutant {
    /// The faithful protocol.
    None,
    /// Leader publishes but never calls `notify_all`: parked followers
    /// are lost (deadlock).
    DropNotify,
    /// Leader never removes the completed flight from the inflight
    /// table: the table leaks and every later request for the key is
    /// served the stale flight forever (terminal leak invariant).
    SkipTableRemove,
    /// Leader removes the table entry *before* publishing: a window
    /// where the flight is gone but unpublished (order invariant; a new
    /// leader can be elected while the old flight's followers still
    /// park).
    RemoveBeforePublish,
}

/// One point of the single-flight configuration matrix.
#[derive(Debug, Clone, Copy)]
pub struct SingleFlightSpec {
    /// Concurrent requester threads for the same key (2..=4 is plenty:
    /// leader + contended followers + a late arrival).
    pub threads: usize,
    /// Local compute steps the leader takes before publishing — pure
    /// partial-order-reduction fodder.
    pub compute_steps: u8,
    /// The first elected leader panics mid-compute.
    pub leader_panics: bool,
    /// The panicking leader's drop guard publishes an `abandoned` result
    /// and clears the table (the PR 8 fix). With `leader_panics` and no
    /// guard, followers hang — the bug this model exists to catch.
    pub abandonment_guard: bool,
    /// Seeded bug, if any.
    pub mutant: SfMutant,
}

/// What a thread observed as its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfResp {
    /// A normally published result.
    Ok,
    /// The drop-guard's abandonment 500.
    Abandoned,
}

/// Lifecycle phase of one requester thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfPhase {
    /// Has not yet locked the inflight table.
    Start,
    /// Elected leader of flight `gen`, `step` compute steps done.
    Leading {
        /// Flight this thread leads.
        gen: u8,
        /// Compute steps completed so far.
        step: u8,
    },
    /// Leader post-compute pipeline position `stage` (0, 1, 2); the
    /// operation each stage performs depends on the mutant.
    Finishing {
        /// Flight this thread leads.
        gen: u8,
        /// Pipeline position: 0, 1, 2.
        stage: u8,
    },
    /// Panicking leader unwinding through the drop guard, `stage` ∈
    /// {publish-abandoned, notify, remove}.
    Unwinding {
        /// Flight this thread leads.
        gen: u8,
        /// Guard position: 0, 1, 2.
        stage: u8,
    },
    /// Panicked without a guard (or finished unwinding): thread is gone.
    Dead,
    /// Follower holding `flight.done`, about to check the predicate.
    Checking {
        /// Flight this follower joined.
        gen: u8,
    },
    /// Follower parked on the flight condvar.
    Parked {
        /// Flight this follower joined.
        gen: u8,
    },
    /// Finished with a response.
    Done {
        /// The response this thread observed.
        resp: SfResp,
    },
}

/// A flight record. Kept (with `removed` set) after table removal —
/// followers still hold their `Arc` in the real code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SfFlight {
    /// Published result, if any.
    pub done: Option<SfResp>,
    /// Removed from the inflight table.
    pub removed: bool,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SfState {
    /// Per-thread phase.
    pub threads: Vec<SfPhase>,
    /// All flights ever created (index = generation).
    pub flights: Vec<SfFlight>,
    /// Inflight-table entry for the key: the registered generation.
    pub table: Option<u8>,
}

/// The operation a thread's single enabled action performs.
#[derive(Debug, Clone, Copy)]
pub enum SfOp {
    /// Lock the table; become leader (insert flight) or follower.
    Acquire,
    /// One local compute step (leader).
    Compute,
    /// Leader panics: start unwinding (guard) or die (no guard).
    Panic,
    /// Set `flight.done` (normal or abandoned publish).
    Publish,
    /// `notify_all` on the flight condvar.
    Notify,
    /// Remove the flight from the inflight table.
    Remove,
    /// Follower checks the predicate under `flight.done`.
    Check,
}

/// Action: `(thread index, operation)`. Each thread has at most one
/// enabled operation per state, derived from its phase.
pub type SfAction = (usize, SfOp);

/// The model over one [`SingleFlightSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SingleFlightModel {
    /// The configuration being explored.
    pub spec: SingleFlightSpec,
}

impl SingleFlightModel {
    /// Ordered post-compute pipeline for a finishing leader. The faithful
    /// order is publish → notify → remove; mutants permute or neuter it.
    fn finish_op(&self, stage: u8) -> SfOp {
        match (self.spec.mutant, stage) {
            (SfMutant::RemoveBeforePublish, 0) => SfOp::Remove,
            (SfMutant::RemoveBeforePublish, 1) => SfOp::Publish,
            (SfMutant::RemoveBeforePublish, _) => SfOp::Notify,
            (_, 0) => SfOp::Publish,
            (_, 1) => SfOp::Notify,
            (_, _) => SfOp::Remove,
        }
    }
}

impl Model for SingleFlightModel {
    type State = SfState;
    type Action = SfAction;

    fn initial(&self) -> SfState {
        SfState {
            threads: vec![SfPhase::Start; self.spec.threads],
            flights: Vec::new(),
            table: None,
        }
    }

    fn enabled(&self, s: &SfState) -> Vec<SfAction> {
        let mut v = Vec::new();
        for (i, &ph) in s.threads.iter().enumerate() {
            let op = match ph {
                SfPhase::Start => Some(SfOp::Acquire),
                SfPhase::Leading { gen, step } => {
                    if step < self.spec.compute_steps {
                        Some(SfOp::Compute)
                    } else if self.spec.leader_panics && gen == 0 {
                        Some(SfOp::Panic)
                    } else {
                        // Transitions into the finishing pipeline happen
                        // lazily: the first finishing op is stage 0.
                        Some(self.finish_op(0))
                    }
                }
                SfPhase::Finishing { stage, .. } => Some(self.finish_op(stage)),
                SfPhase::Unwinding { stage, .. } => Some(match stage {
                    0 => SfOp::Publish,
                    1 => SfOp::Notify,
                    _ => SfOp::Remove,
                }),
                SfPhase::Checking { .. } => Some(SfOp::Check),
                // Parked followers are woken by a leader's notify; dead
                // and done threads take no further steps.
                SfPhase::Parked { .. } | SfPhase::Dead | SfPhase::Done { .. } => None,
            };
            if let Some(op) = op {
                v.push((i, op));
            }
        }
        v
    }

    fn step(&self, s: &SfState, (i, op): SfAction) -> SfState {
        let mut n = s.clone();
        match (s.threads[i], op) {
            (SfPhase::Start, SfOp::Acquire) => match s.table {
                Some(gen) => n.threads[i] = SfPhase::Checking { gen },
                None => {
                    let gen = n.flights.len() as u8;
                    n.flights.push(SfFlight {
                        done: None,
                        removed: false,
                    });
                    n.table = Some(gen);
                    n.threads[i] = SfPhase::Leading { gen, step: 0 };
                }
            },
            (SfPhase::Leading { gen, step }, SfOp::Compute) => {
                n.threads[i] = SfPhase::Leading {
                    gen,
                    step: step + 1,
                };
            }
            (SfPhase::Leading { gen, .. }, SfOp::Panic) => {
                n.threads[i] = if self.spec.abandonment_guard {
                    SfPhase::Unwinding { gen, stage: 0 }
                } else {
                    // Pre-fix code: the flight is never published, never
                    // removed; followers park forever.
                    SfPhase::Dead
                };
            }
            // First finishing op comes straight from Leading.
            (SfPhase::Leading { gen, .. }, _) => {
                self.apply_finish(&mut n, i, gen, 0);
            }
            (SfPhase::Finishing { gen, stage }, _) => {
                self.apply_finish(&mut n, i, gen, stage);
            }
            (SfPhase::Unwinding { gen, stage }, _) => {
                let g = gen as usize;
                match stage {
                    0 => n.flights[g].done = Some(SfResp::Abandoned),
                    1 => wake_parked(&mut n, gen),
                    _ => {
                        n.flights[g].removed = true;
                        if n.table == Some(gen) {
                            n.table = None;
                        }
                    }
                }
                n.threads[i] = if stage == 2 {
                    SfPhase::Dead
                } else {
                    SfPhase::Unwinding {
                        gen,
                        stage: stage + 1,
                    }
                };
            }
            (SfPhase::Checking { gen }, SfOp::Check) => {
                n.threads[i] = match s.flights[gen as usize].done {
                    Some(resp) => SfPhase::Done { resp },
                    None => SfPhase::Parked { gen },
                };
            }
            (ph, op) => unreachable!("phase {ph:?} cannot perform {op:?}"),
        }
        n
    }

    fn is_terminal(&self, s: &SfState) -> bool {
        s.threads
            .iter()
            .all(|ph| matches!(ph, SfPhase::Done { .. } | SfPhase::Dead))
    }

    fn check(&self, s: &SfState) -> Result<(), String> {
        for (g, f) in s.flights.iter().enumerate() {
            if f.removed && f.done.is_none() {
                return Err(format!(
                    "flight {g} removed from the inflight table before its result \
                     was published: a racing request elects a second leader while \
                     this flight's followers are still parked on an unpublished slot"
                ));
            }
        }
        if self.is_terminal(s) {
            if let Some(gen) = s.table {
                return Err(format!(
                    "inflight table leaks completed flight {gen}: every future \
                     request for this key will be served the stale flight forever"
                ));
            }
        }
        Ok(())
    }

    fn actor(&self, (i, _): SfAction) -> usize {
        i
    }

    fn is_local(&self, _: &SfState, (_, op): SfAction) -> bool {
        // Compute only advances the leader's private step counter.
        matches!(op, SfOp::Compute)
    }

    fn waiting_actors(&self, s: &SfState) -> Vec<usize> {
        s.threads
            .iter()
            .enumerate()
            .filter(|(_, ph)| matches!(ph, SfPhase::Parked { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

impl SingleFlightModel {
    /// Apply finishing-pipeline stage `stage` for leader `i` of `gen`.
    fn apply_finish(&self, n: &mut SfState, i: usize, gen: u8, stage: u8) {
        let g = gen as usize;
        match self.finish_op(stage) {
            SfOp::Publish => n.flights[g].done = Some(SfResp::Ok),
            SfOp::Notify => {
                if self.spec.mutant != SfMutant::DropNotify {
                    wake_parked(n, gen);
                }
            }
            SfOp::Remove => {
                if self.spec.mutant != SfMutant::SkipTableRemove {
                    n.flights[g].removed = true;
                    if n.table == Some(gen) {
                        n.table = None;
                    }
                }
            }
            op => unreachable!("{op:?} is not a finishing op"),
        }
        n.threads[i] = if stage == 2 {
            SfPhase::Done { resp: SfResp::Ok }
        } else {
            SfPhase::Finishing {
                gen,
                stage: stage + 1,
            }
        };
    }
}

/// `notify_all`: every follower parked on flight `gen` re-checks the
/// predicate (wait_while semantics — wakeup means re-check, not proceed).
fn wake_parked(n: &mut SfState, gen: u8) {
    for ph in &mut n.threads {
        if *ph == (SfPhase::Parked { gen }) {
            *ph = SfPhase::Checking { gen };
        }
    }
}
