//! Explicit-state model of the serve registry's byte-budgeted LRU
//! weight accounting.
//!
//! Faithful to the discipline shared by `TraceRegistry` and the
//! sweep-engine `AssignmentCache`: every resident artifact has a weight
//! (its byte cost), a running `accounted` counter mirrors the sum of
//! resident weights, ingest of a new artifact charges the counter and
//! then evicts least-recently-used entries until the counter is back
//! under budget (never evicting the just-inserted entry, never evicting
//! below one resident), re-ingest of a resident artifact is a recency
//! bump that must *not* re-charge the counter, and an artifact's weight
//! can grow between ingests (its per-trace assignment cache fills up
//! during sweeps) — pushing the counter over budget until the next
//! ingest's eviction pass settles it again.
//!
//! The explorer enumerates **every** op sequence up to the ops budget,
//! which is exactly what the proptest satellite samples randomly — the
//! model proves the small cases exhaustively, the proptest covers the
//! real implementation on big ones.
//!
//! Checked invariants (every reachable state):
//! * `accounted == Σ resident weights` — the counter never drifts;
//! * settled ⇒ `accounted ≤ budget` or a single oversized resident;
//! * settled ⇒ the most recently ingested artifact is resident (an
//!   eviction pass must never evict what it was admitting).

use crate::sched::Model;

/// Distinct artifact addresses the model ingests.
pub const LRU_ADDRS: usize = 3;

/// Seeded bugs for the mutant corpus; `None` is the faithful discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruMutant {
    /// The faithful accounting discipline.
    None,
    /// Eviction removes the entry but forgets to decrement the counter:
    /// `accounted` drifts above the true resident sum and the registry
    /// under-admits forever after ("leaks on evict").
    SkipEvictDecrement,
    /// Re-ingest of a resident artifact charges the counter again:
    /// `accounted` drifts above the true sum.
    DoubleCountReinsert,
    /// Eviction removes the most recent entry instead of the least:
    /// the artifact being admitted is thrown away by its own insert.
    EvictNewest,
}

/// One point of the LRU configuration matrix.
#[derive(Debug, Clone, Copy)]
pub struct LruSpec {
    /// Byte budget.
    pub budget: u8,
    /// Initial weight of each address.
    pub weights: [u8; LRU_ADDRS],
    /// Total operations to enumerate sequences of.
    pub ops: u8,
    /// Allow `Grow` ops (weight inflation between ingests, modelling the
    /// per-trace assignment cache filling during sweeps).
    pub grow: bool,
    /// Seeded bug, if any.
    pub mutant: LruMutant,
}

/// Global model state: the resident list in LRU order plus the counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LruState {
    /// Resident `(address, weight)` pairs, oldest first.
    pub resident: Vec<(u8, u8)>,
    /// The incremental resident-bytes counter.
    pub accounted: u8,
    /// Ops remaining in the enumeration budget.
    pub ops_left: u8,
    /// An eviction pass has run since the last counter change that could
    /// exceed the budget (false right after `Grow`).
    pub settled: bool,
    /// Address of the most recent `Ingest`, for the newest-survives check.
    pub last_ingest: Option<u8>,
}

/// One registry operation.
#[derive(Debug, Clone, Copy)]
pub enum LruOp {
    /// Ingest an artifact: insert-and-evict, or a recency bump if already
    /// resident.
    Ingest(u8),
    /// Query a resident artifact (recency bump only).
    Get(u8),
    /// The artifact's weight grows by one outside any eviction pass.
    Grow(u8),
}

/// The model over one [`LruSpec`]. Single actor: the registry lock
/// serializes all operations, so op *sequences* are the faithful model.
#[derive(Debug, Clone, Copy)]
pub struct LruModel {
    /// The configuration being explored.
    pub spec: LruSpec,
}

impl LruState {
    fn pos(&self, addr: u8) -> Option<usize> {
        self.resident.iter().position(|&(a, _)| a == addr)
    }
}

impl Model for LruModel {
    type State = LruState;
    type Action = LruOp;

    fn initial(&self) -> LruState {
        LruState {
            resident: Vec::new(),
            accounted: 0,
            ops_left: self.spec.ops,
            settled: true,
            last_ingest: None,
        }
    }

    fn enabled(&self, s: &LruState) -> Vec<LruOp> {
        if s.ops_left == 0 {
            return Vec::new();
        }
        let mut v = Vec::new();
        for a in 0..LRU_ADDRS as u8 {
            v.push(LruOp::Ingest(a));
            if s.pos(a).is_some() {
                v.push(LruOp::Get(a));
                if self.spec.grow {
                    v.push(LruOp::Grow(a));
                }
            }
        }
        v
    }

    fn step(&self, s: &LruState, op: LruOp) -> LruState {
        let mut n = s.clone();
        n.ops_left -= 1;
        match op {
            LruOp::Ingest(addr) => {
                match n.pos(addr) {
                    Some(p) => {
                        // Re-ingest: recency bump, entry (and its grown
                        // weight) kept warm. The real registry returns
                        // early here — no eviction pass runs, so a
                        // grown-over-budget state is NOT settled by a
                        // re-ingest. No counter charge either...
                        let e = n.resident.remove(p);
                        n.resident.push(e);
                        if self.spec.mutant == LruMutant::DoubleCountReinsert {
                            // ...unless the mutant charges it again.
                            n.accounted = n.accounted.saturating_add(e.1);
                        }
                        n.last_ingest = Some(addr);
                    }
                    None => {
                        let w = self.spec.weights[addr as usize];
                        n.resident.push((addr, w));
                        n.accounted = n.accounted.saturating_add(w);
                        // Eviction pass: LRU victims until under budget,
                        // never the just-inserted entry, never below one.
                        while n.accounted > self.spec.budget && n.resident.len() > 1 {
                            let victim = match self.spec.mutant {
                                LruMutant::EvictNewest => n.resident.len() - 1,
                                _ => 0,
                            };
                            let (_, vw) = n.resident.remove(victim);
                            if self.spec.mutant != LruMutant::SkipEvictDecrement {
                                n.accounted = n.accounted.saturating_sub(vw);
                            }
                            // With the skipped decrement the counter never
                            // falls, so the `len > 1` bound is what stops
                            // the loop — exactly like the real bug, which
                            // evicts everything evictable and still thinks
                            // it is over budget.
                        }
                        n.last_ingest = Some(addr);
                        n.settled = true;
                    }
                }
            }
            LruOp::Get(addr) => {
                let p = n.pos(addr).expect("Get only enabled when resident");
                let e = n.resident.remove(p);
                n.resident.push(e);
            }
            LruOp::Grow(addr) => {
                let p = n.pos(addr).expect("Grow only enabled when resident");
                n.resident[p].1 = n.resident[p].1.saturating_add(1);
                n.accounted = n.accounted.saturating_add(1);
                n.settled = false;
            }
        }
        n
    }

    fn is_terminal(&self, s: &LruState) -> bool {
        s.ops_left == 0
    }

    fn check(&self, s: &LruState) -> Result<(), String> {
        let true_sum: u32 = s.resident.iter().map(|&(_, w)| w as u32).sum();
        if true_sum != s.accounted as u32 {
            return Err(format!(
                "resident-bytes counter drifted: accounted {} ≠ Σ resident weights {} \
                 — the registry will mis-admit from here on",
                s.accounted, true_sum
            ));
        }
        if s.settled && s.accounted > self.spec.budget && s.resident.len() > 1 {
            return Err(format!(
                "budget exceeded after a settling eviction pass: accounted {} > budget {} \
                 with {} residents (only a single oversized artifact may exceed it)",
                s.accounted,
                self.spec.budget,
                s.resident.len()
            ));
        }
        if s.settled {
            if let Some(a) = s.last_ingest {
                if s.pos(a).is_none() {
                    return Err(format!(
                        "artifact {a} was evicted by its own ingest's eviction pass: \
                         the newest entry must survive admission"
                    ));
                }
            }
        }
        Ok(())
    }
}
