//! Explicit-state model of the serve daemon's shutdown handshake.
//!
//! Faithful to `pic-predict/src/serve/mod.rs`: a *requester* thread
//! (`begin_shutdown`) sets the shutdown flag under its mutex, wakes the
//! shutdown condvar, and pokes the blocked accept loop with a loopback
//! connection; a *waiter* thread (`wait_shutdown` + `Server::cleanup`)
//! parks on the condvar until the flag is set, joins the accept thread,
//! then drains: spins until `active_connections` reaches zero as each
//! in-flight *handler* finishes and decrements the counter. The *accept*
//! actor blocks in `accept()` until a connection (the poke) arrives,
//! re-checks the flag, and exits.
//!
//! The four seeded mutants cover one failure mode each:
//!
//! * [`SdMutant::DropNotify`] — the waiter parks forever (deadlock);
//! * [`SdMutant::DropPoke`] — the accept loop never wakes, the waiter
//!   hangs in join (deadlock);
//! * [`SdMutant::FlagOutsideLock`] — the waiter's flag check and its
//!   park are no longer atomic against the flag write, so the notify can
//!   fire in the window between them: a textbook lost wakeup (deadlock
//!   on one specific schedule, which the explorer prints);
//! * [`SdMutant::SkipActiveDecrement`] — a handler exits without
//!   decrementing `active_connections`. The drain loop spins forever but
//!   is never *stuck* — every state has an enabled action — so deadlock
//!   detection is blind to it; only the lasso liveness check reports the
//!   waiter starving around the spin cycle.
//!
//! Handler work steps are the model's local actions (POR fodder).

use crate::sched::Model;

/// Seeded bugs for the mutant corpus; `None` is the faithful handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdMutant {
    /// The faithful handshake.
    None,
    /// `begin_shutdown` never notifies the condvar.
    DropNotify,
    /// `begin_shutdown` never pokes the accept loop.
    DropPoke,
    /// The flag is written outside the mutex the waiter checks under:
    /// check-then-park is no longer atomic against the write+notify.
    FlagOutsideLock,
    /// A finishing handler skips the `active_connections` decrement.
    SkipActiveDecrement,
}

/// One point of the shutdown configuration matrix.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownSpec {
    /// In-flight connection handlers at shutdown time.
    pub handlers: usize,
    /// Local work steps each handler takes before finishing.
    pub handler_steps: u8,
    /// Seeded bug, if any.
    pub mutant: SdMutant,
}

/// Requester (`begin_shutdown`) phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqPhase {
    /// About to set the flag.
    Start,
    /// Flag set; about to notify.
    FlagSet,
    /// Notified; about to poke the accept loop.
    Notified,
    /// Handshake sent.
    Done,
}

/// Waiter (`wait_shutdown` + cleanup) phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitPhase {
    /// About to (atomically) check the flag under the mutex.
    Idle,
    /// Saw the flag unset and released the lock before parking — only
    /// reachable under [`SdMutant::FlagOutsideLock`]; this is the lost-
    /// wakeup window.
    SawFalse,
    /// Parked on the shutdown condvar.
    Parked,
    /// Joining the accept thread (blocked until it exits).
    Joining,
    /// Spinning until `active` reaches zero.
    Draining,
    /// Shutdown complete.
    Done,
}

/// Accept-loop phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceptPhase {
    /// Blocked in `accept()` until a connection (the poke) arrives.
    Blocked,
    /// Saw the flag after a wakeup and exited the loop.
    Exited,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SdState {
    /// Requester phase.
    pub req: ReqPhase,
    /// Waiter phase.
    pub waiter: WaitPhase,
    /// Accept-loop phase.
    pub accept: AcceptPhase,
    /// Work steps remaining per handler; `None` = finished.
    pub handlers: Vec<Option<u8>>,
    /// The shutdown flag.
    pub flag: bool,
    /// An un-consumed poke connection is queued at the listener.
    pub poke_pending: bool,
    /// The `active_connections` counter.
    pub active: u8,
}

/// One atomic step of the handshake.
#[derive(Debug, Clone, Copy)]
pub enum SdOp {
    /// Requester sets the flag.
    SetFlag,
    /// Requester notifies the shutdown condvar.
    NotifyAll,
    /// Requester pokes the accept loop.
    Poke,
    /// Waiter checks the flag under the mutex (atomically parking if
    /// unset — except under [`SdMutant::FlagOutsideLock`]).
    WaitCheck,
    /// Waiter parks after having released the lock (mutant only).
    Park,
    /// Waiter observes the accept thread exited (join returns).
    JoinAccept,
    /// Waiter polls the drain condition (self-loop while `active > 0`).
    Drain,
    /// Accept loop consumes a queued connection and re-checks the flag.
    AcceptWake,
    /// Handler does one local work step.
    Work,
    /// Handler finishes and decrements `active`.
    Finish,
}

/// Action: `(actor, op)`. Actor 0 = requester, 1 = waiter, 2 = accept,
/// `3 + i` = handler `i`.
pub type SdAction = (usize, SdOp);

/// Actor index of the waiter (for assertions in tests).
pub const WAITER: usize = 1;

/// The model over one [`ShutdownSpec`].
#[derive(Debug, Clone, Copy)]
pub struct ShutdownModel {
    /// The configuration being explored.
    pub spec: ShutdownSpec,
}

impl Model for ShutdownModel {
    type State = SdState;
    type Action = SdAction;

    fn initial(&self) -> SdState {
        SdState {
            req: ReqPhase::Start,
            waiter: WaitPhase::Idle,
            accept: AcceptPhase::Blocked,
            handlers: vec![Some(self.spec.handler_steps); self.spec.handlers],
            flag: false,
            poke_pending: false,
            active: self.spec.handlers as u8,
        }
    }

    fn enabled(&self, s: &SdState) -> Vec<SdAction> {
        let mut v = Vec::new();
        match s.req {
            ReqPhase::Start => v.push((0, SdOp::SetFlag)),
            ReqPhase::FlagSet => v.push((0, SdOp::NotifyAll)),
            ReqPhase::Notified => v.push((0, SdOp::Poke)),
            ReqPhase::Done => {}
        }
        match s.waiter {
            WaitPhase::Idle => v.push((WAITER, SdOp::WaitCheck)),
            WaitPhase::SawFalse => v.push((WAITER, SdOp::Park)),
            // Parked: woken only by the requester's notify.
            WaitPhase::Parked => {}
            // Joining blocks until the accept thread has exited.
            WaitPhase::Joining => {
                if s.accept == AcceptPhase::Exited {
                    v.push((WAITER, SdOp::JoinAccept));
                }
            }
            WaitPhase::Draining => v.push((WAITER, SdOp::Drain)),
            WaitPhase::Done => {}
        }
        if s.accept == AcceptPhase::Blocked && s.poke_pending {
            v.push((2, SdOp::AcceptWake));
        }
        for (i, h) in s.handlers.iter().enumerate() {
            match h {
                Some(0) => v.push((3 + i, SdOp::Finish)),
                Some(_) => v.push((3 + i, SdOp::Work)),
                None => {}
            }
        }
        v
    }

    fn step(&self, s: &SdState, (actor, op): SdAction) -> SdState {
        let mut n = s.clone();
        match op {
            SdOp::SetFlag => {
                n.flag = true;
                n.req = ReqPhase::FlagSet;
            }
            SdOp::NotifyAll => {
                if self.spec.mutant != SdMutant::DropNotify && n.waiter == WaitPhase::Parked {
                    // wait_while semantics: a wakeup means re-check.
                    n.waiter = WaitPhase::Idle;
                }
                n.req = ReqPhase::Notified;
            }
            SdOp::Poke => {
                if self.spec.mutant != SdMutant::DropPoke {
                    n.poke_pending = true;
                }
                n.req = ReqPhase::Done;
            }
            SdOp::WaitCheck => {
                n.waiter = if s.flag {
                    WaitPhase::Joining
                } else if self.spec.mutant == SdMutant::FlagOutsideLock {
                    // The check released the lock before parking: the
                    // flag write and notify can land in this window.
                    WaitPhase::SawFalse
                } else {
                    WaitPhase::Parked
                };
            }
            SdOp::Park => n.waiter = WaitPhase::Parked,
            SdOp::JoinAccept => n.waiter = WaitPhase::Draining,
            SdOp::Drain => {
                if s.active == 0 {
                    n.waiter = WaitPhase::Done;
                }
                // else: the spin — a genuine self-loop in the state graph.
            }
            SdOp::AcceptWake => {
                n.poke_pending = false;
                if s.flag {
                    n.accept = AcceptPhase::Exited;
                }
                // else: spurious connection, back to Blocked (no change).
            }
            SdOp::Work => {
                let h = &mut n.handlers[actor - 3];
                *h = h.map(|r| r - 1);
            }
            SdOp::Finish => {
                n.handlers[actor - 3] = None;
                if self.spec.mutant != SdMutant::SkipActiveDecrement {
                    n.active -= 1;
                }
            }
        }
        n
    }

    fn is_terminal(&self, s: &SdState) -> bool {
        s.req == ReqPhase::Done
            && s.waiter == WaitPhase::Done
            && s.accept == AcceptPhase::Exited
            && s.handlers.iter().all(Option::is_none)
    }

    fn check(&self, _: &SdState) -> Result<(), String> {
        // Deliberately no counter invariant: the skipped decrement must
        // be caught by the liveness lasso, proving that detector's worth.
        Ok(())
    }

    fn actor(&self, (a, _): SdAction) -> usize {
        a
    }

    fn is_local(&self, _: &SdState, (_, op): SdAction) -> bool {
        // A work step only advances the handler's private counter.
        matches!(op, SdOp::Work)
    }

    fn waiting_actors(&self, s: &SdState) -> Vec<usize> {
        match s.waiter {
            WaitPhase::Parked | WaitPhase::Joining | WaitPhase::Draining => vec![WAITER],
            _ => Vec::new(),
        }
    }
}
