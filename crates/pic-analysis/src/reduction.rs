//! Error-budget gate for SimPoint-style trace reduction.
//!
//! A [`pic_workload::ReductionPlan`] is an approximation: every
//! non-representative sample's workload is stood in for by its cluster
//! representative. Before a reduced replay is trusted — committed as a
//! replay artifact, served from the resident registry, used for a
//! scalability sweep — this gate measures the approximation on a
//! deterministic *holdout*: non-representative samples replayed exactly
//! through the full per-sample kernel and compared against the reduced
//! reconstruction's claim for them.
//!
//! The gated metric is the per-sample **peak load** (max over ranks of
//! real + received-ghost particles) — the quantity the paper's
//! critical-path predictions rest on. A reduction whose worst holdout
//! relative error exceeds the budget is rejected with a positioned error
//! naming the breaching sample, mirroring the
//! [`workload`](crate::workload) gate idiom.

use pic_trace::ParticleTrace;
use pic_types::rng::SplitMix64;
use pic_types::{PicError, Result};
use pic_workload::reduce::{exact_sample_loads, peak_load_series};
use pic_workload::{DynamicWorkload, ReductionPlan, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// How much reduction error is tolerable, and how hard to look for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionBudget {
    /// Maximum tolerated relative error of any holdout sample's peak load
    /// (and of the global peak). The paper-scale target is 2%.
    pub max_peak_rel_error: f64,
    /// Number of holdout samples to replay exactly. Drawn without
    /// replacement from the non-representative samples; capped at their
    /// count.
    pub holdout: usize,
    /// Seed of the deterministic holdout draw.
    pub seed: u64,
}

impl Default for ReductionBudget {
    fn default() -> ReductionBudget {
        ReductionBudget {
            max_peak_rel_error: 0.02,
            holdout: 8,
            seed: 0x5eed_0bed,
        }
    }
}

/// One holdout comparison: the reduced reconstruction's claim for a
/// sample vs its exact replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldoutPoint {
    /// Trace sample index (never a representative).
    pub sample: usize,
    /// Peak load the reduced workload claims at this sample.
    pub predicted_peak: u64,
    /// Peak load of the exact single-sample replay.
    pub exact_peak: u64,
    /// `|predicted − exact| / exact` (infinite if exact is 0 and
    /// predicted is not; 0 when both are 0).
    pub rel_error: f64,
}

/// The gate's full evidence: every holdout point plus the worst error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionReport {
    /// Budget the reduction was checked against.
    pub budget: ReductionBudget,
    /// Representatives in the plan (`K`).
    pub k: usize,
    /// Trace samples (`T`).
    pub total_samples: usize,
    /// Every holdout comparison, ascending by sample index.
    pub points: Vec<HoldoutPoint>,
    /// Worst holdout relative error (0 when the holdout is empty).
    pub max_rel_error: f64,
    /// Whether the reduction stays within budget.
    pub within_budget: bool,
}

fn rel_error(predicted: u64, exact: u64) -> f64 {
    if exact == 0 {
        return if predicted == 0 { 0.0 } else { f64::INFINITY };
    }
    (predicted as f64 - exact as f64).abs() / exact as f64
}

/// Deterministic holdout draw: up to `budget.holdout` distinct
/// non-representative samples, seeded Fisher–Yates prefix, returned
/// sorted ascending.
pub fn holdout_samples(plan: &ReductionPlan, budget: &ReductionBudget) -> Vec<usize> {
    let mut is_rep = vec![false; plan.total_samples];
    for &s in &plan.representatives {
        is_rep[s] = true;
    }
    let mut pool: Vec<usize> = (0..plan.total_samples).filter(|&s| !is_rep[s]).collect();
    let n = budget.holdout.min(pool.len());
    let mut rng = SplitMix64::new(budget.seed);
    for i in 0..n {
        let j = i + rng.next_below((pool.len() - i) as u64) as usize;
        pool.swap(i, j);
    }
    let mut chosen = pool[..n].to_vec();
    chosen.sort_unstable();
    chosen
}

/// Measure a reduction against its budget.
///
/// `reduced` must be the reduced replay of `trace` under `plan` with
/// configuration `cfg` (arity mismatches are config errors). Holdout
/// samples are replayed exactly — cost `O(holdout)` full-kernel samples,
/// not `O(T)` — and compared on peak load. Representatives themselves
/// are never drawn: the reduced path replays them through the identical
/// kernel, so their error is zero by construction.
pub fn check_reduction(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&pic_grid::ElementMesh>,
    plan: &ReductionPlan,
    reduced: &DynamicWorkload,
    budget: &ReductionBudget,
) -> Result<ReductionReport> {
    plan.validate()?;
    if plan.total_samples != trace.sample_count() {
        return Err(PicError::config(format!(
            "reduction plan covers {} samples, trace has {}",
            plan.total_samples,
            trace.sample_count()
        )));
    }
    if reduced.samples() != plan.total_samples {
        return Err(PicError::config(format!(
            "reduced workload has {} samples, plan reconstructs {}",
            reduced.samples(),
            plan.total_samples
        )));
    }
    // NaN budgets are as invalid as negative ones.
    if budget.max_peak_rel_error.is_nan() || budget.max_peak_rel_error < 0.0 {
        return Err(PicError::config(format!(
            "reduction budget must be a non-negative error bound, got {}",
            budget.max_peak_rel_error
        )));
    }
    let samples = holdout_samples(plan, budget);
    let predicted = peak_load_series(reduced);
    let exact = exact_sample_loads(trace, cfg, mesh, &samples)?;
    let points: Vec<HoldoutPoint> = samples
        .iter()
        .zip(&exact)
        .map(|(&s, loads)| {
            let exact_peak = loads.iter().copied().max().unwrap_or(0);
            let predicted_peak = predicted[s];
            HoldoutPoint {
                sample: s,
                predicted_peak,
                exact_peak,
                rel_error: rel_error(predicted_peak, exact_peak),
            }
        })
        .collect();
    let max_rel_error = points.iter().map(|p| p.rel_error).fold(0.0, f64::max);
    Ok(ReductionReport {
        budget: *budget,
        k: plan.k(),
        total_samples: plan.total_samples,
        within_budget: max_rel_error <= budget.max_peak_rel_error,
        points,
        max_rel_error,
    })
}

/// [`check_reduction`] as a hard gate: a budget breach becomes one
/// [`PicError`] naming the worst holdout sample and its error.
pub fn assert_reduction_valid(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&pic_grid::ElementMesh>,
    plan: &ReductionPlan,
    reduced: &DynamicWorkload,
    budget: &ReductionBudget,
) -> Result<ReductionReport> {
    let report = check_reduction(trace, cfg, mesh, plan, reduced, budget)?;
    if report.within_budget {
        return Ok(report);
    }
    let worst = report
        .points
        .iter()
        .max_by(|a, b| a.rel_error.total_cmp(&b.rel_error))
        .expect("breach implies a nonempty holdout");
    Err(PicError::model(format!(
        "reduction exceeds error budget: peak-load error {:.4} > {:.4} at sample {} \
         (predicted {}, exact {}; K={} of T={})",
        worst.rel_error,
        budget.max_peak_rel_error,
        worst.sample,
        worst.predicted_peak,
        worst.exact_peak,
        report.k,
        report.total_samples
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_mapping::MappingAlgorithm;
    use pic_trace::TraceMeta;
    use pic_types::{Aabb, Vec3};
    use pic_workload::reduce::generate_reduced;

    fn phased_trace(np: usize, t: usize) -> ParticleTrace {
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "gate");
        let mut tr = ParticleTrace::new(meta);
        let mut rng = SplitMix64::new(7);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        for k in 0..t {
            // two plateaus: tight cloud, then spread cloud
            let scale = if k < t / 2 { 0.05 } else { 0.25 };
            let positions: Vec<Vec3> = dirs
                .iter()
                .map(|d| (Vec3::splat(0.5) + *d * scale).clamp(Vec3::ZERO, Vec3::ONE))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn identity_reduction_passes_any_budget() {
        let tr = phased_trace(200, 8);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        let plan = ReductionPlan::identity(tr.sample_count());
        let reduced = generate_reduced(&tr, &cfg, None, &plan).unwrap();
        let budget = ReductionBudget {
            max_peak_rel_error: 0.0,
            ..Default::default()
        };
        let report = assert_reduction_valid(&tr, &cfg, None, &plan, &reduced, &budget).unwrap();
        // identity plan has no non-representative samples to hold out
        assert!(report.points.is_empty());
        assert_eq!(report.max_rel_error, 0.0);
        assert!(report.within_budget);
    }

    #[test]
    fn good_two_phase_reduction_passes_and_bad_one_breaches() {
        let tr = phased_trace(300, 10);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        let budget = ReductionBudget {
            holdout: 8,
            ..Default::default()
        };
        // aligned with the phase boundary: reps 0 and 5 stand in exactly
        let good = ReductionPlan::new(10, vec![0, 5], vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]).unwrap();
        let reduced = generate_reduced(&tr, &cfg, None, &good).unwrap();
        let report = assert_reduction_valid(&tr, &cfg, None, &good, &reduced, &budget).unwrap();
        assert!(report.within_budget);
        assert_eq!(report.points.len(), 8);

        // one representative for both phases cannot describe the spread half
        let bad = ReductionPlan::new(10, vec![0], vec![0; 10]).unwrap();
        let reduced = generate_reduced(&tr, &cfg, None, &bad).unwrap();
        let err = assert_reduction_valid(&tr, &cfg, None, &bad, &reduced, &budget).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("error budget"), "{msg}");
        assert!(msg.contains("K=1 of T=10"), "{msg}");
    }

    #[test]
    fn holdout_draw_is_deterministic_and_avoids_representatives() {
        let plan =
            ReductionPlan::new(12, vec![0, 6], vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]).unwrap();
        let budget = ReductionBudget {
            holdout: 5,
            seed: 42,
            ..Default::default()
        };
        let a = holdout_samples(&plan, &budget);
        let b = holdout_samples(&plan, &budget);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&s| s != 0 && s != 6));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // asking for more holdout than exists caps at the pool
        let big = ReductionBudget {
            holdout: 100,
            ..budget
        };
        assert_eq!(holdout_samples(&plan, &big).len(), 10);
    }

    #[test]
    fn arity_and_budget_mismatches_are_config_errors() {
        let tr = phased_trace(50, 4);
        let cfg = WorkloadConfig::new(4, MappingAlgorithm::BinBased, 0.05);
        let plan = ReductionPlan::identity(4);
        let reduced = generate_reduced(&tr, &cfg, None, &plan).unwrap();
        // wrong trace
        let short = phased_trace(50, 3);
        assert!(check_reduction(&short, &cfg, None, &plan, &reduced, &Default::default()).is_err());
        // negative budget
        let bad = ReductionBudget {
            max_peak_rel_error: -0.5,
            ..Default::default()
        };
        assert!(check_reduction(&tr, &cfg, None, &plan, &reduced, &bad).is_err());
    }
}
