//! Static invariant checking of generated [`DynamicWorkload`]s.
//!
//! The Dynamic Workload Generator's output obeys a catalog of structural
//! invariants that follow from its construction (particles are conserved,
//! migrations explain per-rank count deltas, ghost copies balance, ...).
//! A workload that violates any of them is corrupt — truncated on disk,
//! hand-edited, produced by a buggy generator build — and feeding it to
//! the simulator yields silently wrong predictions. This module checks the
//! whole catalog and reports every violation with `(rank, sample)`
//! coordinates.
//!
//! Invariant catalog (codes):
//!
//! | code | invariant |
//! |------|-----------|
//! | `shape` | all matrices agree on `R` and `T`; `R > 0` |
//! | `iterations` | sample iteration numbers strictly increase |
//! | `conservation` | per-sample real-particle total equals `N_p` |
//! | `comm-first` | `comm.entries[0]` is empty (no predecessor sample) |
//! | `comm-rank` | migration endpoints lie in `0..R` |
//! | `comm-self` | no self-loop migrations |
//! | `comm-zero` | no zero-count migration triples |
//! | `comm-order` | triples sorted strictly by `(from, to)` (no dups) |
//! | `comm-flow` | `real[r][t] − real[r][t−1]` equals inflow − outflow |
//! | `comm-volume` | migrations per sample never exceed `N_p` |
//! | `ghost-balance` | total ghost copies sent equals total received |
//! | `ghost-recv` | a rank receives at most one ghost per foreign particle |
//! | `ghost-sent` | a rank sends at most `R−1` copies per owned particle |

use pic_types::PicError;
use pic_workload::DynamicWorkload;
use serde::Serialize;

/// One violated invariant, positioned as precisely as the invariant allows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadViolation {
    /// Invariant code from the catalog (`conservation`, `comm-flow`, ...).
    pub code: &'static str,
    /// Explanation with the offending values.
    pub message: String,
    /// Offending rank, when the invariant is per-rank.
    pub rank: Option<u32>,
    /// Offending sample, when the invariant is per-sample.
    pub sample: Option<usize>,
}

impl std::fmt::Display for WorkloadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code)?;
        match (self.rank, self.sample) {
            (Some(r), Some(t)) => write!(f, " at (rank {r}, sample {t})")?,
            (Some(r), None) => write!(f, " at rank {r}")?,
            (None, Some(t)) => write!(f, " at sample {t}")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.message)
    }
}

struct Checker {
    violations: Vec<WorkloadViolation>,
}

impl Checker {
    fn push(
        &mut self,
        code: &'static str,
        rank: Option<u32>,
        sample: Option<usize>,
        message: String,
    ) {
        self.violations.push(WorkloadViolation {
            code,
            message,
            rank,
            sample,
        });
    }
}

/// Check every catalog invariant, returning all violations (empty = valid).
///
/// `expected_particles` pins the conservation total to the trace's `N_p`;
/// without it, sample 0's total is used as the reference, so a workload
/// that is *internally* consistent but truncated in particle count still
/// passes — pass the trace metadata when available.
pub fn check_workload(
    w: &DynamicWorkload,
    expected_particles: Option<u64>,
) -> Vec<WorkloadViolation> {
    let mut c = Checker {
        violations: Vec::new(),
    };
    let ranks = w.ranks;
    let samples = w.iterations.len();

    // -- shape: everything else indexes by (rank, sample), so stop early
    // on disagreement rather than panicking on out-of-bounds access.
    if ranks == 0 {
        c.push("shape", None, None, "workload declares zero ranks".into());
    }
    for (name, m) in [
        ("real", &w.real),
        ("ghost_recv", &w.ghost_recv),
        ("ghost_sent", &w.ghost_sent),
    ] {
        if m.ranks() != ranks {
            c.push(
                "shape",
                None,
                None,
                format!(
                    "{name} matrix has {} ranks, workload declares {ranks}",
                    m.ranks()
                ),
            );
        }
        if m.samples() != samples {
            c.push(
                "shape",
                None,
                None,
                format!(
                    "{name} matrix has {} samples, iterations list {samples}",
                    m.samples()
                ),
            );
        }
    }
    if w.comm.entries.len() != samples {
        c.push(
            "shape",
            None,
            None,
            format!(
                "comm matrix has {} samples, iterations list {samples}",
                w.comm.entries.len()
            ),
        );
    }
    if w.bin_counts.len() != samples {
        c.push(
            "shape",
            None,
            None,
            format!(
                "bin_counts has {} samples, iterations list {samples}",
                w.bin_counts.len()
            ),
        );
    }
    if !c.violations.is_empty() {
        return c.violations;
    }

    // -- iterations strictly increasing
    for t in 1..samples {
        if w.iterations[t] <= w.iterations[t - 1] {
            c.push(
                "iterations",
                None,
                Some(t),
                format!(
                    "iteration numbers not strictly increasing: {} after {}",
                    w.iterations[t],
                    w.iterations[t - 1]
                ),
            );
        }
    }

    // -- conservation: every sample holds exactly N_p real particles
    let reference = expected_particles.or_else(|| (samples > 0).then(|| w.real.sample_total(0)));
    if let Some(n_p) = reference {
        for t in 0..samples {
            let total = w.real.sample_total(t);
            if total != n_p {
                c.push(
                    "conservation",
                    None,
                    Some(t),
                    format!("real-particle total {total} ≠ expected {n_p}"),
                );
            }
        }
    }

    // -- communication matrix hygiene
    if samples > 0 && !w.comm.entries[0].is_empty() {
        c.push(
            "comm-first",
            None,
            Some(0),
            format!(
                "sample 0 has {} migration triple(s) but no predecessor sample",
                w.comm.entries[0].len()
            ),
        );
    }
    for (t, entries) in w.comm.entries.iter().enumerate() {
        let mut prev: Option<(u32, u32)> = None;
        for &(from, to, count) in entries {
            for endpoint in [from, to] {
                if endpoint as usize >= ranks {
                    c.push(
                        "comm-rank",
                        Some(endpoint),
                        Some(t),
                        format!("migration ({from}→{to}, ×{count}) references rank {endpoint} outside 0..{ranks}"),
                    );
                }
            }
            if from == to {
                c.push(
                    "comm-self",
                    Some(from),
                    Some(t),
                    format!("self-loop migration ({from}→{to}, ×{count})"),
                );
            }
            if count == 0 {
                c.push(
                    "comm-zero",
                    Some(from),
                    Some(t),
                    format!("zero-count migration triple ({from}→{to})"),
                );
            }
            if let Some(p) = prev {
                if p >= (from, to) {
                    c.push(
                        "comm-order",
                        Some(from),
                        Some(t),
                        format!(
                            "triples not sorted strictly by (from, to): ({},{}) then ({from},{to})",
                            p.0, p.1
                        ),
                    );
                }
            }
            prev = Some((from, to));
        }
        // volume: at most one migration per particle per sample step
        if let Some(n_p) = reference {
            let moved = w.comm.sample_total(t);
            if moved > n_p {
                c.push(
                    "comm-volume",
                    None,
                    Some(t),
                    format!("{moved} migrations exceed particle count {n_p}"),
                );
            }
        }
    }

    // -- flow: migrations fully explain per-rank count deltas
    for t in 1..samples {
        let mut delta = vec![0i64; ranks];
        for &(from, to, count) in &w.comm.entries[t] {
            if (from as usize) < ranks {
                delta[from as usize] -= count as i64;
            }
            if (to as usize) < ranks {
                delta[to as usize] += count as i64;
            }
        }
        for (r, &net) in delta.iter().enumerate() {
            let prev = w.real.get(pic_types::Rank::from_index(r), t - 1) as i64;
            let cur = w.real.get(pic_types::Rank::from_index(r), t) as i64;
            if cur - prev != net {
                c.push(
                    "comm-flow",
                    Some(r as u32),
                    Some(t),
                    format!(
                        "count delta {} (from {prev} to {cur}) not explained by migrations (net {net})",
                        cur - prev,
                    ),
                );
            }
        }
    }

    // -- ghost sanity
    for t in 0..samples {
        let sent: u64 = w.ghost_sent.sample_total(t);
        let recv: u64 = w.ghost_recv.sample_total(t);
        if sent != recv {
            c.push(
                "ghost-balance",
                None,
                Some(t),
                format!("{sent} ghost copies sent but {recv} received"),
            );
        }
        let total = w.real.sample_total(t);
        for r in 0..ranks {
            let rank = pic_types::Rank::from_index(r);
            let real = w.real.get(rank, t) as u64;
            let g_recv = w.ghost_recv.get(rank, t) as u64;
            let g_sent = w.ghost_sent.get(rank, t) as u64;
            let foreign = total.saturating_sub(real);
            if g_recv > foreign {
                c.push(
                    "ghost-recv",
                    Some(r as u32),
                    Some(t),
                    format!("{g_recv} ghosts received exceed the {foreign} foreign particles"),
                );
            }
            let max_sent = real * (ranks as u64 - 1);
            if g_sent > max_sent {
                c.push(
                    "ghost-sent",
                    Some(r as u32),
                    Some(t),
                    format!(
                        "{g_sent} ghost copies sent exceed {real} particles × {} peers",
                        ranks - 1
                    ),
                );
            }
        }
    }

    c.violations
}

/// [`check_workload`] as a hard gate: formats the violations into one
/// [`PicError`] for pipeline call sites.
pub fn assert_workload_valid(
    w: &DynamicWorkload,
    expected_particles: Option<u64>,
) -> Result<(), PicError> {
    let violations = check_workload(w, expected_particles);
    if violations.is_empty() {
        return Ok(());
    }
    let shown: Vec<String> = violations.iter().take(5).map(|v| v.to_string()).collect();
    let suffix = if violations.len() > 5 {
        format!(" (+{} more)", violations.len() - 5)
    } else {
        String::new()
    };
    Err(PicError::model(format!(
        "workload failed invariant check with {} violation(s): {}{suffix}",
        violations.len(),
        shown.join("; ")
    )))
}

/// One violated invariant inside a sweep grid, positioned by grid point on
/// top of the invariant's own `(rank, sample)` coordinates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepViolation {
    /// Index of the offending workload in the sweep's point list.
    pub point: usize,
    /// The underlying invariant violation.
    pub violation: WorkloadViolation,
}

impl std::fmt::Display for SweepViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {}: {}", self.point, self.violation)
    }
}

/// Run the full invariant catalog over every grid point a sweep emitted —
/// one call, `(point, rank, sample)`-positioned diagnostics.
///
/// `expected_particles` pins every point's conservation total to the
/// trace's `N_p`; the sweep engine replays one trace for the whole grid,
/// so a single reference count applies to every point.
pub fn check_sweep(
    workloads: &[DynamicWorkload],
    expected_particles: Option<u64>,
) -> Vec<SweepViolation> {
    workloads
        .iter()
        .enumerate()
        .flat_map(|(point, w)| {
            check_workload(w, expected_particles)
                .into_iter()
                .map(move |violation| SweepViolation { point, violation })
        })
        .collect()
}

/// [`check_sweep`] as a hard gate: formats the violations into one
/// [`PicError`] for sweep call sites (`picpredict sweep` refuses to emit a
/// grid that fails it).
pub fn assert_sweep_valid(
    workloads: &[DynamicWorkload],
    expected_particles: Option<u64>,
) -> Result<(), PicError> {
    let violations = check_sweep(workloads, expected_particles);
    if violations.is_empty() {
        return Ok(());
    }
    let shown: Vec<String> = violations.iter().take(5).map(|v| v.to_string()).collect();
    let suffix = if violations.len() > 5 {
        format!(" (+{} more)", violations.len() - 5)
    } else {
        String::new()
    };
    Err(PicError::model(format!(
        "sweep failed invariant check with {} violation(s) across {} grid point(s): {}{suffix}",
        violations.len(),
        workloads.len(),
        shown.join("; ")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_workload::{CommMatrix, CompMatrix};

    /// A small hand-built workload satisfying every invariant:
    /// 3 ranks, 3 samples, 10 particles.
    fn valid() -> DynamicWorkload {
        let real = CompMatrix::from_rows(3, vec![vec![4, 3, 3], vec![3, 4, 3], vec![3, 3, 4]]);
        let ghost_recv =
            CompMatrix::from_rows(3, vec![vec![1, 1, 0], vec![0, 1, 1], vec![1, 0, 1]]);
        let ghost_sent =
            CompMatrix::from_rows(3, vec![vec![0, 1, 1], vec![1, 1, 0], vec![1, 1, 0]]);
        let mut comm = CommMatrix::with_samples(3);
        comm.entries[1] = vec![(0, 1, 1)];
        comm.entries[2] = vec![(1, 2, 1)];
        DynamicWorkload {
            ranks: 3,
            iterations: vec![0, 10, 20],
            real,
            ghost_recv,
            ghost_sent,
            comm,
            bin_counts: vec![None, None, None],
        }
    }

    #[test]
    fn valid_workload_passes() {
        let w = valid();
        assert_eq!(check_workload(&w, Some(10)), vec![]);
        assert_eq!(check_workload(&w, None), vec![]);
        assert!(assert_workload_valid(&w, Some(10)).is_ok());
    }

    #[test]
    fn conservation_pins_to_expected_count() {
        let w = valid();
        // internally consistent, but the trace says 11 particles
        let v = check_workload(&w, Some(11));
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.code == "conservation"));
        assert_eq!(v[0].sample, Some(0));
    }

    #[test]
    fn shape_mismatch_short_circuits() {
        let mut w = valid();
        w.iterations.push(30); // now 4 iterations vs 3-sample matrices
        let v = check_workload(&w, None);
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| x.code == "shape"), "{v:?}");
    }

    #[test]
    fn zero_ranks_is_shape_violation() {
        let w = DynamicWorkload {
            ranks: 0,
            iterations: vec![],
            real: CompMatrix::new(0),
            ghost_recv: CompMatrix::new(0),
            ghost_sent: CompMatrix::new(0),
            comm: CommMatrix::with_samples(0),
            bin_counts: vec![],
        };
        let v = check_workload(&w, None);
        assert!(v.iter().any(|x| x.code == "shape"));
    }

    #[test]
    fn ghost_bounds_catch_impossible_counts() {
        let mut w = valid();
        // rank 0 at sample 0 claims 7 ghosts but only 6 foreign particles
        w.ghost_recv = CompMatrix::from_rows(3, vec![vec![7, 1, 0], vec![0, 1, 1], vec![1, 0, 1]]);
        let v = check_workload(&w, Some(10));
        let codes: Vec<_> = v.iter().map(|x| x.code).collect();
        assert!(codes.contains(&"ghost-recv"), "{v:?}");
        assert!(codes.contains(&"ghost-balance"), "{v:?}");
        let gr = v.iter().find(|x| x.code == "ghost-recv").unwrap();
        assert_eq!((gr.rank, gr.sample), (Some(0), Some(0)));
    }

    #[test]
    fn sweep_check_positions_by_grid_point() {
        let good = valid();
        let mut bad = valid();
        bad.comm.entries[1][0].2 = 2; // comm-flow violations at point 2
        let grid = vec![good.clone(), good, bad];
        let v = check_sweep(&grid, Some(10));
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| x.point == 2), "{v:?}");
        assert!(v.iter().any(|x| x.violation.code == "comm-flow"));
        let s = v[0].to_string();
        assert!(s.starts_with("point 2:"), "{s}");
        let err = assert_sweep_valid(&grid, Some(10)).unwrap_err();
        assert!(err.to_string().contains("point 2"), "{err}");
        assert!(err.to_string().contains("3 grid point(s)"), "{err}");
    }

    #[test]
    fn sweep_check_accepts_clean_grids() {
        let grid = vec![valid(), valid()];
        assert_eq!(check_sweep(&grid, Some(10)), vec![]);
        assert!(assert_sweep_valid(&grid, Some(10)).is_ok());
        assert!(assert_sweep_valid(&[], None).is_ok());
    }

    #[test]
    fn display_carries_coordinates() {
        let mut w = valid();
        w.comm.entries[1][0].2 = 2; // breaks flow at ranks 0 and 1, sample 1
        let v = check_workload(&w, Some(10));
        assert!(v.iter().any(|x| x.code == "comm-flow"));
        let s = v[0].to_string();
        assert!(s.contains("sample 1"), "{s}");
        let err = assert_workload_valid(&w, Some(10)).unwrap_err();
        assert!(err.to_string().contains("comm-flow"), "{err}");
    }
}
