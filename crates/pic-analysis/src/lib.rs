//! # pic-analysis
//!
//! The static verification layer of the prediction framework: analyses
//! that run *before* a model is trusted, a workload is simulated, or a
//! concurrent pipeline ships — catching entire bug classes at admission
//! time instead of as silently wrong predictions.
//!
//! Four analyzers:
//!
//! * [`expr_check`] — abstract interpretation of `pic_models::Expr` over
//!   the [`interval`] domain, seeded with per-column value ranges from the
//!   training dataset. Flags reachable protected-division degeneracies,
//!   overflow, out-of-range variable reads, and dead/constant subtrees,
//!   each positioned by preorder node index and root-relative path. The
//!   error subset gates model deserialization.
//! * [`workload`] — the invariant catalog for generated `DynamicWorkload`
//!   matrices (particle conservation, migration/delta consistency, ghost
//!   bounds, ...), every violation carrying `(rank, sample)` coordinates.
//!   Backs the `picpredict check` subcommand.
//! * [`prediction`] — the outbound response gate for the resident
//!   prediction service: no NaN, infinite, negative, or ragged predicted
//!   kernel time ever leaves the server, each rejection positioned by
//!   `(sample, rank, kernel)`.
//! * [`sched`] + [`pipeline_model`] — a minimal loom-style deterministic
//!   schedule explorer (with optional ample-set partial-order reduction
//!   and lasso-based liveness checking), plus a faithful model of the
//!   streaming workload generator's decoder→workers→merge pipeline.
//!   Exhaustive exploration proves its shutdown paths hang- and leak-free
//!   for a matrix of configurations, in CI, with a replayable schedule on
//!   any failure.
//! * [`reduction`] — the error-budget gate for SimPoint-style trace
//!   reduction: exact replay of a deterministic holdout of
//!   non-representative samples, compared against the reduced
//!   reconstruction on peak load. A reduction that breaches its budget
//!   (default 2%) is rejected before anything downstream trusts it.
//! * [`serve_model`] — explicit-state models of the three `picpredict
//!   serve` concurrency protocols (single-flight batching, LRU registry
//!   weight accounting, the shutdown handshake), verified over a config
//!   matrix by `picpredict check --serve`, plus a seeded-mutant corpus
//!   proving the checker catches each protocol's bug classes.
//! * [`des_batch`] — batching-soundness model for the DES barrier fast
//!   path and inlined message delivery: every causal processing order of
//!   a bulk-synchronous step must reach the fast path's closed-form
//!   barrier time. Verified by `picpredict check --des`, with a mutant
//!   corpus covering the double-count and early-release bug classes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des_batch;
pub mod expr_check;
pub mod interval;
pub mod pipeline_model;
pub mod prediction;
pub mod reduction;
pub mod sched;
pub mod serve_model;
pub mod workload;

pub use des_batch::{
    des_batch_mutants, verify_des_batching, BarrierStepModel, DesBatchMutant, DesBatchVerdict,
};
pub use expr_check::{
    analyze_expr, check_compiled_equivalence, check_model_expr, Diagnostic, ExprReport,
    FeatureSpace, Severity,
};
pub use interval::Interval;
pub use pipeline_model::{verify_pipeline, verify_streaming_shutdown, PipelineSpec};
pub use prediction::{
    assert_prediction_valid, check_prediction, PredictionDefect, PredictionViolation,
};
pub use reduction::{
    assert_reduction_valid, check_reduction, holdout_samples, HoldoutPoint, ReductionBudget,
    ReductionReport,
};
pub use sched::{explore, explore_with, Exploration, ExploreOptions, Model, ScheduleError};
pub use serve_model::{
    serve_mutant_corpus, verify_serve_protocols, MutantOutcome, ProtocolVerdict,
};
pub use workload::{
    assert_sweep_valid, assert_workload_valid, check_sweep, check_workload, SweepViolation,
    WorkloadViolation,
};
