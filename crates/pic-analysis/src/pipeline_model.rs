//! A faithful state-machine model of `pic_workload::generate_streaming`'s
//! concurrent pipeline, checked exhaustively with [`crate::sched`].
//!
//! The real pipeline is: a decoder thread reads frames and sends them into
//! a bounded channel; a pool of worker threads maps frames to per-sample
//! outcomes and sends them into a second bounded channel; the caller's
//! thread merges outcomes back into sample order through a reorder buffer.
//! Shutdown is driven purely by channel disconnection: the decoder drops
//! its sender when the stream ends (cleanly or with an error), workers
//! exit when the frame channel drains and disconnects, and the merger
//! finishes when the outcome channel disconnects — then joins the decoder
//! to learn whether the stream ended in an error.
//!
//! The model captures exactly the events that order-matter: sends into and
//! receives out of both bounded channels, channel closure (sender drop),
//! worker exit, and the decoder's terminal status. Exhaustive exploration
//! over every interleaving proves, for each configuration:
//!
//! * **no deadlock** — every non-terminal state has an enabled action;
//! * **no loss or duplication** — each decoded frame lives in exactly one
//!   place (channel, worker, reorder buffer, or merged output);
//! * **in-order delivery** — the merged output is always a prefix of the
//!   decoded sequence;
//! * **clean shutdown** — terminal states have all threads exited, both
//!   channels empty, and every decoded frame merged;
//! * **error propagation** — the merger reports an error if and only if
//!   the decoder ended with one.

use crate::sched::{explore, Exploration, Model, ScheduleError};

/// One pipeline configuration to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Frames the decoder produces before hitting end-of-stream.
    pub frames: u8,
    /// Whether the stream terminates with a decode error after the last
    /// good frame (the truncated-trace path) instead of clean EOF.
    pub fail: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Capacity of the decoder→workers frame channel.
    pub frame_cap: usize,
    /// Capacity of the workers→merger outcome channel.
    pub out_cap: usize,
}

/// What the decoder thread is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Decoder {
    /// Still reading; `next` frames already sent downstream.
    Reading { next: u8 },
    /// Sender dropped; `err` records whether the stream ended in error,
    /// `sent` how many frames went downstream before that.
    Done { err: bool, sent: u8 },
}

/// What one worker thread is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Worker {
    /// Blocked on (or about to call) frame-channel `recv`.
    Idle,
    /// Processed a frame, waiting to send it downstream.
    Holding(u8),
    /// Observed frame-channel disconnect and returned.
    Exited,
}

/// Global pipeline state. Everything the transition function reads is in
/// here, so state-graph deduplication is sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PipeState {
    decoder: Decoder,
    frame_chan: Vec<u8>,
    workers: Vec<Worker>,
    out_chan: Vec<u8>,
    /// Reorder buffer: out-of-order frames parked by the merger (sorted).
    pending: Vec<u8>,
    /// Frames merged so far — always the in-order prefix `0..merged`.
    merged: u8,
    merger_done: bool,
    /// Terminal verdict: did the merger observe a decoder error?
    result_err: Option<bool>,
}

/// One atomic step of some pipeline thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeAction {
    /// Decoder sends the next frame into the frame channel.
    DecoderSend,
    /// Decoder hits end-of-stream and drops its sender.
    DecoderClose,
    /// Decoder's blocked send fails because every worker already exited.
    DecoderSendFail,
    /// Worker `i` receives a frame.
    WorkerRecv(usize),
    /// Worker `i` sends its processed outcome downstream.
    WorkerSend(usize),
    /// Worker `i` observes frame-channel disconnect and exits.
    WorkerExit(usize),
    /// Merger receives one outcome and drains its reorder buffer.
    MergerRecv,
    /// Merger observes outcome-channel disconnect and joins the decoder.
    MergerFinish,
}

/// The model driving [`crate::sched::explore`].
pub struct PipelineModel {
    spec: PipelineSpec,
}

impl PipelineModel {
    /// Model one configuration.
    pub fn new(spec: PipelineSpec) -> PipelineModel {
        PipelineModel { spec }
    }
}

impl Model for PipelineModel {
    type State = PipeState;
    type Action = PipeAction;

    fn initial(&self) -> PipeState {
        PipeState {
            decoder: Decoder::Reading { next: 0 },
            frame_chan: Vec::new(),
            workers: vec![Worker::Idle; self.spec.workers],
            out_chan: Vec::new(),
            pending: Vec::new(),
            merged: 0,
            merger_done: false,
            result_err: None,
        }
    }

    fn enabled(&self, s: &PipeState) -> Vec<PipeAction> {
        let mut v = Vec::new();
        let all_workers_exited = s.workers.iter().all(|w| *w == Worker::Exited);
        if let Decoder::Reading { next } = s.decoder {
            if next < self.spec.frames {
                if all_workers_exited {
                    // a send into a channel with no receivers errors out
                    v.push(PipeAction::DecoderSendFail);
                } else if s.frame_chan.len() < self.spec.frame_cap {
                    v.push(PipeAction::DecoderSend);
                }
                // else: the bounded send blocks — no decoder action
            } else {
                v.push(PipeAction::DecoderClose);
            }
        }
        for (i, w) in s.workers.iter().enumerate() {
            match w {
                Worker::Idle => {
                    if !s.frame_chan.is_empty() {
                        v.push(PipeAction::WorkerRecv(i));
                    } else if matches!(s.decoder, Decoder::Done { .. }) {
                        v.push(PipeAction::WorkerExit(i));
                    }
                    // else: blocked in recv on a live, empty channel
                }
                Worker::Holding(_) => {
                    if s.out_chan.len() < self.spec.out_cap && !s.merger_done {
                        v.push(PipeAction::WorkerSend(i));
                    }
                }
                Worker::Exited => {}
            }
        }
        if !s.merger_done {
            if !s.out_chan.is_empty() {
                v.push(PipeAction::MergerRecv);
            } else if all_workers_exited {
                v.push(PipeAction::MergerFinish);
            }
            // else: blocked in recv on a live, empty outcome channel
        }
        v
    }

    fn step(&self, s: &PipeState, a: PipeAction) -> PipeState {
        let mut n = s.clone();
        match a {
            PipeAction::DecoderSend => {
                let Decoder::Reading { next } = n.decoder else {
                    unreachable!()
                };
                n.frame_chan.push(next);
                n.decoder = Decoder::Reading { next: next + 1 };
            }
            PipeAction::DecoderClose => {
                let Decoder::Reading { next } = n.decoder else {
                    unreachable!()
                };
                n.decoder = Decoder::Done {
                    err: self.spec.fail,
                    sent: next,
                };
            }
            PipeAction::DecoderSendFail => {
                // the real decoder treats a failed send as "receivers gone,
                // stop early" and exits without an error of its own
                let Decoder::Reading { next } = n.decoder else {
                    unreachable!()
                };
                n.decoder = Decoder::Done {
                    err: false,
                    sent: next,
                };
            }
            PipeAction::WorkerRecv(i) => {
                let f = n.frame_chan.remove(0);
                n.workers[i] = Worker::Holding(f);
            }
            PipeAction::WorkerSend(i) => {
                let Worker::Holding(f) = n.workers[i] else {
                    unreachable!()
                };
                n.out_chan.push(f);
                n.workers[i] = Worker::Idle;
            }
            PipeAction::WorkerExit(i) => {
                n.workers[i] = Worker::Exited;
            }
            PipeAction::MergerRecv => {
                let f = n.out_chan.remove(0);
                let pos = n.pending.binary_search(&f).unwrap_err();
                n.pending.insert(pos, f);
                while n.pending.first() == Some(&n.merged) {
                    n.pending.remove(0);
                    n.merged += 1;
                }
            }
            PipeAction::MergerFinish => {
                n.merger_done = true;
                let Decoder::Done { err, .. } = n.decoder else {
                    // workers only exit after the decoder closed; enforced
                    // again by check()
                    unreachable!("merger finished while decoder alive")
                };
                n.result_err = Some(err);
            }
        }
        n
    }

    fn is_terminal(&self, s: &PipeState) -> bool {
        s.merger_done
    }

    fn check(&self, s: &PipeState) -> Result<(), String> {
        // conservation: every sent frame lives in exactly one place
        let sent = match s.decoder {
            Decoder::Reading { next } => next,
            Decoder::Done { sent, .. } => sent,
        };
        let mut alive: Vec<u8> = Vec::new();
        alive.extend(0..s.merged);
        alive.extend(&s.frame_chan);
        alive.extend(&s.out_chan);
        alive.extend(&s.pending);
        for w in &s.workers {
            if let Worker::Holding(f) = w {
                alive.push(*f);
            }
        }
        alive.sort_unstable();
        let expect: Vec<u8> = (0..sent).collect();
        if alive != expect {
            return Err(format!(
                "frame loss/duplication: have {alive:?}, expect {expect:?}"
            ));
        }
        // in-order delivery: reorder buffer never holds already-merged ids
        if s.pending.first().is_some_and(|&f| f < s.merged) {
            return Err(format!(
                "reorder buffer holds already-merged frame: {:?}",
                s.pending
            ));
        }
        if s.merger_done {
            // clean shutdown: nothing in flight, everything merged
            if !s.workers.iter().all(|w| *w == Worker::Exited) {
                return Err("merger finished with live workers".into());
            }
            if !s.frame_chan.is_empty() || !s.out_chan.is_empty() || !s.pending.is_empty() {
                return Err("terminal state leaks frames in channels or buffers".into());
            }
            if s.merged != self.spec.frames {
                return Err(format!(
                    "terminal merged {} of {} frames",
                    s.merged, self.spec.frames
                ));
            }
            // error propagation: merger verdict mirrors the decoder's end
            if s.result_err != Some(self.spec.fail) {
                return Err(format!(
                    "error propagation broken: decoder fail={}, merger saw {:?}",
                    self.spec.fail, s.result_err
                ));
            }
        }
        Ok(())
    }
}

/// Exhaustively verify one configuration.
pub fn verify_pipeline(spec: PipelineSpec) -> Result<Exploration, ScheduleError> {
    explore(&PipelineModel::new(spec), 2_000_000)
}

/// The configuration matrix verified in CI: frame counts around the
/// channel capacities, both pool sizes the scheduler distinguishes, both
/// stream endings. Returns aggregate statistics over all configurations.
pub fn verify_streaming_shutdown() -> Result<Exploration, ScheduleError> {
    let mut total = Exploration {
        states: 0,
        terminal_states: 0,
        transitions: 0,
        ample_states: 0,
    };
    for frames in 0..=4u8 {
        for &workers in &[1usize, 2, 3] {
            for &frame_cap in &[1usize, 2] {
                for &out_cap in &[1usize, 2] {
                    for &fail in &[false, true] {
                        let spec = PipelineSpec {
                            frames,
                            fail,
                            workers,
                            frame_cap,
                            out_cap,
                        };
                        let r = verify_pipeline(spec).map_err(|mut e| {
                            e.message = format!("{spec:?}: {}", e.message);
                            e
                        })?;
                        total.states += r.states;
                        total.terminal_states += r.terminal_states;
                        total.transitions += r.transitions;
                    }
                }
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_clean_shutdown() {
        let r = verify_pipeline(PipelineSpec {
            frames: 2,
            fail: false,
            workers: 1,
            frame_cap: 1,
            out_cap: 1,
        })
        .unwrap();
        assert!(r.states > 0);
        assert!(r.terminal_states >= 1);
    }

    #[test]
    fn error_path_propagates() {
        verify_pipeline(PipelineSpec {
            frames: 1,
            fail: true,
            workers: 2,
            frame_cap: 1,
            out_cap: 1,
        })
        .unwrap();
    }

    #[test]
    fn zero_frames_still_shuts_down() {
        // the empty stream: decoder closes immediately, workers must all
        // exit, merger must still finish
        for &fail in &[false, true] {
            verify_pipeline(PipelineSpec {
                frames: 0,
                fail,
                workers: 2,
                frame_cap: 2,
                out_cap: 2,
            })
            .unwrap();
        }
    }

    #[test]
    fn broken_model_is_caught() {
        // Sanity that the harness can fail: a model variant whose merger
        // finishes while a worker still holds a frame would violate the
        // terminal checks. We simulate by checking a corrupted state
        // directly.
        let m = PipelineModel::new(PipelineSpec {
            frames: 1,
            fail: false,
            workers: 1,
            frame_cap: 1,
            out_cap: 1,
        });
        let mut s = m.initial();
        s.merger_done = true; // workers never exited, nothing merged
        assert!(m.check(&s).is_err());
    }
}
