//! Property-based evidence for the analyzer's core soundness claim: the
//! interval computed for an expression contains every value the concrete
//! evaluator produces on inputs drawn from the feature space.

use pic_analysis::{analyze_expr, FeatureSpace, Interval};
use pic_models::Expr;
use proptest::prelude::*;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-5.0..5.0f64).prop_map(Expr::Const),
        (0usize..3).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(4, 64, 2, |inner| {
        (inner.clone(), inner, 0..4u8).prop_map(|(a, b, op)| match op {
            0 => Expr::Add(Box::new(a), Box::new(b)),
            1 => Expr::Sub(Box::new(a), Box::new(b)),
            2 => Expr::Mul(Box::new(a), Box::new(b)),
            _ => Expr::Div(Box::new(a), Box::new(b)),
        })
    })
}

/// Columns bounded to [-4, 4]; evaluation points inside them.
fn space() -> FeatureSpace {
    FeatureSpace::from_ranges(vec![Interval::new(-4.0, 4.0); 3])
}

proptest! {
    #[test]
    fn abstract_value_contains_concrete_eval(
        e in expr_strategy(),
        xs in proptest::collection::vec(proptest::collection::vec(-4.0..4.0f64, 3), 1..10),
    ) {
        let report = analyze_expr(&e, &space());
        for x in &xs {
            let v = e.eval(x);
            if v.is_finite() {
                // one ulp of outward slack per operation, absorbed by a
                // relative tolerance on the bound comparison
                let tol = 1e-9 * v.abs().max(1.0);
                prop_assert!(
                    report.value.lo - tol <= v && v <= report.value.hi + tol,
                    "{v} outside {} for {e:?} at {x:?}", report.value
                );
            }
        }
    }

    #[test]
    fn error_free_report_means_eval_never_reads_out_of_range(e in expr_strategy()) {
        // the strategy only generates in-range variables, so the analyzer
        // must never produce E001/E002 for them
        let report = analyze_expr(&e, &space());
        prop_assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn canonical_form_analyzes_within_original_range(e in expr_strategy()) {
        // canonicalization can only tighten (or preserve) the value range
        // on point-free structure; at minimum it must stay sound, so both
        // reports' intervals must overlap on any concretely reachable value
        let canon = e.clone().canonicalize();
        let ra = analyze_expr(&e, &space());
        let rb = analyze_expr(&canon, &space());
        for x in [[-3.0, 0.5, 2.0], [0.0, 0.0, 0.0], [3.9, -3.9, 1.0]] {
            let v = canon.eval(&x);
            if v.is_finite() {
                let tol = 1e-9 * v.abs().max(1.0);
                prop_assert!(rb.value.lo - tol <= v && v <= rb.value.hi + tol);
                prop_assert!(ra.value.lo - tol <= v && v <= ra.value.hi + tol);
            }
        }
    }
}
