//! Mutation-style tests for the workload invariant checker: start from a
//! genuinely generated workload (so the baseline is exactly what the DWG
//! produces), seed single-entry corruptions, and assert that every
//! corruption class is detected *with the right coordinates*. This is the
//! evidence that the checker catches real corruption, not just that it
//! stays quiet on good data.

use pic_analysis::{check_workload, WorkloadViolation};
use pic_mapping::MappingAlgorithm;
use pic_trace::{ParticleTrace, TraceMeta};
use pic_types::{Aabb, Rank, Vec3};
use pic_workload::{generator, CompMatrix, DynamicWorkload, WorkloadConfig};

const PARTICLES: usize = 40;
const SAMPLES: usize = 6;
const RANKS: usize = 4;

/// A deterministic drifting-cloud trace: particles sweep across the unit
/// box so every sample has migrations and ghost exchange.
fn workload() -> DynamicWorkload {
    let mut trace = ParticleTrace::new(TraceMeta::new(
        PARTICLES,
        100,
        Aabb::unit(),
        "mutation-fixture",
    ));
    for s in 0..SAMPLES {
        let mut pos = Vec::with_capacity(PARTICLES);
        for p in 0..PARTICLES {
            let spread = (p as f64 * 0.618_034) % 1.0;
            let drift = (s as f64 + 1.0) / (SAMPLES as f64 + 1.0);
            let x = (spread * 0.4 + drift * 0.55).min(0.999);
            let y = ((p as f64 * 0.414_214) % 1.0) * 0.9 + 0.05;
            let z = ((p as f64 * 0.732_051 + s as f64 * 0.1) % 1.0) * 0.9 + 0.05;
            pos.push(Vec3::new(x, y, z));
        }
        trace.push_positions(pos).unwrap();
    }
    let cfg = WorkloadConfig::new(RANKS, MappingAlgorithm::BinBased, 0.08);
    generator::generate(&trace, &cfg).unwrap()
}

fn rows(m: &CompMatrix) -> Vec<Vec<u32>> {
    (0..m.samples()).map(|t| m.sample_row(t).to_vec()).collect()
}

/// Rebuild a comp matrix with one cell changed.
fn patch(m: &CompMatrix, rank: usize, sample: usize, f: impl Fn(u32) -> u32) -> CompMatrix {
    let mut r = rows(m);
    r[sample][rank] = f(r[sample][rank]);
    CompMatrix::from_rows(m.ranks(), r)
}

/// A (rank, sample) cell that is nonzero in the matrix, searching from the
/// last sample backwards so flow checks upstream are unaffected.
fn nonzero_cell(m: &CompMatrix) -> (usize, usize) {
    for t in (0..m.samples()).rev() {
        for r in 0..m.ranks() {
            if m.get(Rank::from_index(r), t) > 0 {
                return (r, t);
            }
        }
    }
    panic!("matrix is all zeros");
}

fn codes(v: &[WorkloadViolation]) -> Vec<&'static str> {
    v.iter().map(|x| x.code).collect()
}

#[test]
fn generated_workload_is_clean() {
    let w = workload();
    assert!(w.comm.total() > 0, "fixture should have migrations");
    assert!(w.ghost_recv.peak() > 0, "fixture should have ghosts");
    let v = check_workload(&w, Some(PARTICLES as u64));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn bumped_real_count_breaks_conservation_at_the_cell() {
    let w0 = workload();
    let (r, t) = nonzero_cell(&w0.real);
    let w = DynamicWorkload {
        real: patch(&w0.real, r, t, |c| c + 1),
        ..w0
    };
    let v = check_workload(&w, Some(PARTICLES as u64));
    let conservation: Vec<_> = v.iter().filter(|x| x.code == "conservation").collect();
    assert_eq!(conservation.len(), 1, "{v:?}");
    assert_eq!(conservation[0].sample, Some(t));
    // and the unexplained delta is pinned to the exact rank
    assert!(
        v.iter()
            .any(|x| x.code == "comm-flow" && x.rank == Some(r as u32) && x.sample == Some(t)),
        "{v:?}"
    );
}

#[test]
fn altered_comm_count_breaks_flow_at_both_endpoints() {
    let mut w = workload();
    let t = (1..w.samples())
        .find(|&t| !w.comm.entries[t].is_empty())
        .expect("fixture has migrations");
    let (from, to, _) = w.comm.entries[t][0];
    w.comm.entries[t][0].2 += 3;
    let v = check_workload(&w, Some(PARTICLES as u64));
    for rank in [from, to] {
        assert!(
            v.iter()
                .any(|x| x.code == "comm-flow" && x.rank == Some(rank) && x.sample == Some(t)),
            "missing comm-flow for rank {rank}: {v:?}"
        );
    }
}

#[test]
fn removed_comm_triple_breaks_flow() {
    let mut w = workload();
    let t = (1..w.samples())
        .find(|&t| !w.comm.entries[t].is_empty())
        .expect("fixture has migrations");
    w.comm.entries[t].remove(0);
    let v = check_workload(&w, Some(PARTICLES as u64));
    assert!(codes(&v).contains(&"comm-flow"), "{v:?}");
    assert!(v.iter().all(|x| x.sample == Some(t)), "{v:?}");
}

#[test]
fn self_loop_migration_is_detected() {
    let mut w = workload();
    let t = 1;
    w.comm.entries[t].insert(0, (0, 0, 2));
    let v = check_workload(&w, Some(PARTICLES as u64));
    let hit = v
        .iter()
        .find(|x| x.code == "comm-self")
        .expect("self-loop detected");
    assert_eq!((hit.rank, hit.sample), (Some(0), Some(t)));
}

#[test]
fn unsorted_and_duplicate_triples_are_detected() {
    let mut w = workload();
    let t = (1..w.samples())
        .find(|&t| !w.comm.entries[t].is_empty())
        .expect("fixture has migrations");
    // duplicate the first triple: equal (from, to) keys violate strict order
    let first = w.comm.entries[t][0];
    w.comm.entries[t].insert(1, first);
    let v = check_workload(&w, None);
    assert!(codes(&v).contains(&"comm-order"), "{v:?}");

    // out-of-order arrangement
    let mut w2 = workload();
    w2.comm.entries[t].insert(0, (u32::MAX - 1, 0, 1));
    let v2 = check_workload(&w2, None);
    assert!(
        codes(&v2).contains(&"comm-order") || codes(&v2).contains(&"comm-rank"),
        "{v2:?}"
    );
}

#[test]
fn out_of_range_rank_is_detected() {
    let mut w = workload();
    let t = 2;
    w.comm.entries[t].push((RANKS as u32, RANKS as u32 + 1, 1));
    let v = check_workload(&w, None);
    let hit = v
        .iter()
        .find(|x| x.code == "comm-rank")
        .expect("rank range detected");
    assert_eq!(hit.sample, Some(t));
    assert_eq!(hit.rank, Some(RANKS as u32));
}

#[test]
fn nonempty_first_comm_sample_is_detected() {
    let mut w = workload();
    w.comm.entries[0].push((0, 1, 1));
    let v = check_workload(&w, Some(PARTICLES as u64));
    let hit = v
        .iter()
        .find(|x| x.code == "comm-first")
        .expect("first-sample detected");
    assert_eq!(hit.sample, Some(0));
}

#[test]
fn bumped_ghost_recv_breaks_balance() {
    let w0 = workload();
    let (r, t) = nonzero_cell(&w0.ghost_recv);
    let w = DynamicWorkload {
        ghost_recv: patch(&w0.ghost_recv, r, t, |c| c + 1),
        ..w0
    };
    let v = check_workload(&w, Some(PARTICLES as u64));
    let hit = v
        .iter()
        .find(|x| x.code == "ghost-balance")
        .expect("balance detected");
    assert_eq!(hit.sample, Some(t));
}

#[test]
fn impossible_ghost_recv_breaks_bound() {
    let w0 = workload();
    let (r, t) = nonzero_cell(&w0.ghost_recv);
    let w = DynamicWorkload {
        ghost_recv: patch(&w0.ghost_recv, r, t, |_| PARTICLES as u32 + 5),
        ..w0
    };
    let v = check_workload(&w, Some(PARTICLES as u64));
    let hit = v
        .iter()
        .find(|x| x.code == "ghost-recv")
        .expect("bound detected");
    assert_eq!((hit.rank, hit.sample), (Some(r as u32), Some(t)));
}

#[test]
fn non_monotonic_iterations_are_detected() {
    let mut w = workload();
    let t = w.samples() - 1;
    w.iterations[t] = w.iterations[t - 1];
    let v = check_workload(&w, Some(PARTICLES as u64));
    let hit = v
        .iter()
        .find(|x| x.code == "iterations")
        .expect("monotonicity detected");
    assert_eq!(hit.sample, Some(t));
}

#[test]
fn truncated_matrix_is_a_shape_violation() {
    let mut w = workload();
    let r = rows(&w.real);
    w.real = CompMatrix::from_rows(RANKS, r[..SAMPLES - 1].to_vec());
    let v = check_workload(&w, Some(PARTICLES as u64));
    assert!(codes(&v).contains(&"shape"), "{v:?}");
}

#[test]
fn every_corruption_also_fails_the_hard_gate() {
    let mut w = workload();
    w.iterations[1] = 0;
    assert!(pic_analysis::assert_workload_valid(&w, Some(PARTICLES as u64)).is_err());
}
