//! Exhaustive interleaving verification of the streaming workload
//! generator's pipeline model — the CI gate for the concurrency layer.
//! Every reachable schedule of channel sends, receives, closures, worker
//! exits, and the final join is explored for the whole configuration
//! matrix; any hang, frame loss, or broken error propagation fails with a
//! replayable schedule.

use pic_analysis::{verify_pipeline, verify_streaming_shutdown, PipelineSpec};

#[test]
fn streaming_pipeline_shutdown_matrix_is_hang_and_leak_free() {
    let stats = verify_streaming_shutdown().unwrap_or_else(|e| panic!("{e}"));
    // The matrix is 5 frame counts × 3 pool sizes × 2×2 capacities × 2
    // endings = 120 configurations; the aggregate state count documents
    // the exploration actually did work.
    assert!(
        stats.states > 10_000,
        "suspiciously small exploration: {stats:?}"
    );
    assert!(
        stats.terminal_states >= 120,
        "every config reaches at least one terminal state"
    );
}

#[test]
fn deeper_single_configuration_with_more_frames() {
    // One deeper configuration past the CI matrix: more frames than the
    // combined channel capacity, forcing every backpressure path.
    let r = verify_pipeline(PipelineSpec {
        frames: 6,
        fail: true,
        workers: 2,
        frame_cap: 2,
        out_cap: 1,
    })
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(r.states > 100);
}
