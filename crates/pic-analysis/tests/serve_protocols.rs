//! CI gate for the serve-layer protocol models (ISSUE 8).
//!
//! Mirrors what `picpredict check --serve` runs, through the public
//! `pic-analysis` API: the full configuration matrix must verify clean
//! (deadlock-, lost-wakeup-, and leak-free), the ample-set reduction must
//! demonstrably shrink the state space without changing the terminal-state
//! set, and every seeded mutant in the corpus must be caught.

use pic_analysis::sched::{explore_with, ExploreOptions};
use pic_analysis::serve_model::single_flight::{SfMutant, SingleFlightModel, SingleFlightSpec};
use pic_analysis::{serve_mutant_corpus, verify_serve_protocols};

#[test]
fn serve_protocol_matrix_verifies_clean() {
    let verdicts = verify_serve_protocols().expect("all serve protocols must verify");
    let mut by_model = std::collections::BTreeMap::new();
    for v in &verdicts {
        *by_model.entry(v.model).or_insert(0usize) += 1;
        assert!(v.reduced.states > 0);
    }
    assert_eq!(by_model["single-flight"], 12);
    assert_eq!(by_model["lru"], 6);
    assert_eq!(by_model["shutdown"], 6);
}

#[test]
fn reduction_shrinks_without_losing_terminals() {
    let verdicts = verify_serve_protocols().unwrap();
    let mut best = 1.0f64;
    for v in &verdicts {
        if let Some(full) = v.full {
            assert!(
                v.reduced.states <= full.states,
                "{} {}: reduced {} > full {}",
                v.model,
                v.config,
                v.reduced.states,
                full.states
            );
            assert_eq!(v.reduced.terminal_states, full.terminal_states);
        }
        if let Some(f) = v.reduction_factor() {
            best = best.max(f);
        }
    }
    assert!(best > 1.5, "best reduction factor only {best:.2}");
}

#[test]
fn mutant_corpus_is_fully_caught() {
    for o in serve_mutant_corpus() {
        assert!(o.caught, "mutant {} escaped: {}", o.name, o.detail);
    }
}

#[test]
fn pre_fix_abandonment_hangs_followers() {
    // The exact bug satellite 1 fixes, demonstrated on the model: a
    // panicking leader with no drop guard deadlocks its followers.
    let model = SingleFlightModel {
        spec: SingleFlightSpec {
            threads: 3,
            compute_steps: 1,
            leader_panics: true,
            abandonment_guard: false,
            mutant: SfMutant::None,
        },
    };
    let err = explore_with(&model, ExploreOptions::new(100_000)).unwrap_err();
    assert!(err.message.contains("deadlock"), "{err}");
    // And the guard (the fix) makes the same configuration verify clean.
    let fixed = SingleFlightModel {
        spec: SingleFlightSpec {
            abandonment_guard: true,
            ..model.spec
        },
    };
    explore_with(&fixed, ExploreOptions::new(100_000)).unwrap();
}
