//! Multi-configuration sweep engine: one trace replay, many workloads.
//!
//! The paper's parameter studies (Figs 6, 9, 10) regenerate workload
//! matrices across processor counts, mapping algorithms, projection-filter
//! radii, and sampling strides. Running [`generator::generate`] per grid
//! point repeats work the points share: the mapper construction, the
//! per-sample particle assignment, the [`RegionIndex`] build, and — for
//! filter sweeps — the sphere queries themselves. This module amortizes
//! all of it:
//!
//! * **Grouping.** Sweep points whose assignment is provably identical are
//!   grouped: mesh-based mappings (`element-based`, `hilbert-ordered`,
//!   `load-balanced`) assign from `(mesh, ranks)` alone, so they group by
//!   `(mapping, ranks)`; `bin-based` partitions depend on the bin-size
//!   threshold too, so its key also carries the filter bits. Each group
//!   builds its mapper once and runs the assignment + index pass once per
//!   sample, no matter how many filters, ghost toggles, or strides ride
//!   on it.
//! * **Radius monotonicity.** Sphere–box overlap is monotone in the
//!   radius: a region touches the radius-`r` sphere iff its squared
//!   distance to the center is `≤ r²` — exactly the comparison
//!   [`RegionIndex::for_each_candidate_in_sphere`] reports. One candidate
//!   query per particle at the group's **maximum** filter radius therefore
//!   yields, by filtering the retained distances, results bit-identical to
//!   a dedicated query at every smaller radius. A six-filter sweep pays
//!   for one traversal, not six.
//! * **Strides.** A member with stride `s` consumes every `s`-th shared
//!   sample outcome, producing exactly the workload of
//!   `generate(&trace.subsample(s), cfg)` — the sampling-frequency study
//!   re-uses the full-trace replay instead of re-running it per stride.
//!
//! Outputs are **bit-identical** to the per-configuration
//! [`generator::generate_with_mesh`] path (and hence to the sequential
//! [`generator::generate_reference`] oracle); the equivalence is enforced
//! by tests here, by the property corpus in `tests/props.rs`, and at
//! runtime by `sweep_bench`.
//!
//! [`sweep_streaming`] drives the same plan sample-by-sample off a
//! [`pic_trace::TraceReader`], holding one decoded frame per pipeline slot
//! and one accumulator row-set per sweep point — memory stays bounded by
//! one sample × configurations, never by trace length × configurations.

use crate::generator::{self, DynamicWorkload, WorkloadConfig};
use crate::matrices::{migration_pairs, CommMatrix, CompMatrix};
use pic_grid::ElementMesh;
use pic_mapping::{MappingAlgorithm, ParticleMapper, RegionIndex, RegionQueryScratch};
use pic_trace::ParticleTrace;
use pic_types::sync::TrackedMutex;
use pic_types::{Rank, Result, Vec3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One grid point of a sweep: a generator configuration plus a sampling
/// stride (`1` = every trace sample; `s` = the workload of
/// `trace.subsample(s)`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The generator configuration to evaluate.
    pub config: WorkloadConfig,
    /// Sampling stride over the trace (`0` is treated as `1`).
    pub stride: usize,
}

impl SweepPoint {
    /// A stride-1 point (every sample).
    pub fn new(config: WorkloadConfig) -> SweepPoint {
        SweepPoint { config, stride: 1 }
    }

    /// A point that consumes every `stride`-th sample.
    pub fn with_stride(config: WorkloadConfig, stride: usize) -> SweepPoint {
        SweepPoint { config, stride }
    }
}

/// Sharing accounting from one sweep run: how much replay the grouping
/// actually avoided.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Grid points evaluated.
    pub points: usize,
    /// Assignment groups the points collapsed into.
    pub groups: usize,
    /// Trace samples replayed.
    pub samples: usize,
    /// Assignment + index passes executed (`groups × samples`).
    pub assign_passes: usize,
    /// Passes the per-configuration loop would have run
    /// (`points × samples`).
    pub naive_assign_passes: usize,
    /// Distinct ghost radii evaluated across all groups.
    pub ghost_radii: usize,
    /// Groups whose ghost radii were served by a single shared
    /// maximum-radius candidate query per particle.
    pub shared_query_groups: usize,
    /// Groups whose assignment artifacts were served from an
    /// [`AssignmentCache`] instead of being recomputed (always `0` on the
    /// cacheless paths).
    #[serde(default)]
    pub cached_groups: usize,
}

/// One ghost-radius slot of a group: the radius and whether it joins the
/// shared maximum-radius candidate pass. Radii that are not `≥ 0` (NaN or
/// negative) stay outside the sharing argument and are evaluated through
/// the unmodified single-radius kernel, preserving its exact semantics.
pub(crate) struct GhostSlot {
    pub(crate) radius: f64,
    pub(crate) shared: bool,
}

/// One assignment group: a mapper built once, plus every ghost radius its
/// members need.
pub(crate) struct GroupPlan {
    pub(crate) mapper: Box<dyn ParticleMapper>,
    pub(crate) ranks: usize,
    /// The grouping key the plan built this group under (assignment
    /// identity: mapping, ranks, filter bits iff bin-based). Combined
    /// with a mesh fingerprint it addresses cached assignment artifacts.
    pub(crate) key: (MappingAlgorithm, usize, Option<u64>),
    pub(crate) slots: Vec<GhostSlot>,
    /// Maximum radius among shared slots (meaningless when none are).
    pub(crate) shared_max: f64,
}

impl GroupPlan {
    fn shared_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.shared).count()
    }
}

/// One sweep point resolved against the plan.
pub(crate) struct MemberPlan {
    pub(crate) group: usize,
    pub(crate) stride: usize,
    /// Index into the group's ghost slots; `None` when ghosts are off.
    pub(crate) ghost_slot: Option<usize>,
}

pub(crate) struct SweepPlan {
    pub(crate) groups: Vec<GroupPlan>,
    pub(crate) members: Vec<MemberPlan>,
}

/// Key under which two points share assignment outcomes. Mesh-based
/// mappings ignore the projection filter during assignment; the bin-based
/// partition cuts at the bin-size threshold, so its key carries the filter
/// bits.
fn group_key(cfg: &WorkloadConfig) -> (MappingAlgorithm, usize, Option<u64>) {
    let filter_bits =
        (cfg.mapping == MappingAlgorithm::BinBased).then(|| cfg.projection_filter.to_bits());
    (cfg.mapping, cfg.ranks, filter_bits)
}

pub(crate) fn build_plan(points: &[SweepPoint], mesh: Option<&ElementMesh>) -> Result<SweepPlan> {
    let mut keys: Vec<(MappingAlgorithm, usize, Option<u64>)> = Vec::new();
    let mut groups: Vec<GroupPlan> = Vec::new();
    let mut members = Vec::with_capacity(points.len());
    for p in points {
        let key = group_key(&p.config);
        let g = match keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                // Mapper construction (mesh validation, decomposition)
                // happens here, once per group — not once per grid point.
                keys.push(key);
                groups.push(GroupPlan {
                    mapper: generator::build_mapper(&p.config, mesh)?,
                    ranks: p.config.ranks,
                    key,
                    slots: Vec::new(),
                    shared_max: f64::NEG_INFINITY,
                });
                groups.len() - 1
            }
        };
        let group = &mut groups[g];
        let ghost_slot = if p.config.compute_ghosts {
            let radius = p.config.projection_filter;
            let existing = group
                .slots
                .iter()
                .position(|s| s.radius.to_bits() == radius.to_bits());
            Some(match existing {
                Some(k) => k,
                None => {
                    let shared = radius >= 0.0;
                    if shared {
                        group.shared_max = group.shared_max.max(radius);
                    }
                    group.slots.push(GhostSlot { radius, shared });
                    group.slots.len() - 1
                }
            })
        } else {
            None
        };
        members.push(MemberPlan {
            group: g,
            stride: p.stride.max(1),
            ghost_slot,
        });
    }
    Ok(SweepPlan { groups, members })
}

/// The radius-independent artifact of one (group, sample) assignment
/// pass: per-rank real counts, bin count, particle owners, and the
/// spatial [`RegionIndex`] built from the rank regions. Everything a
/// ghost query at *any* radius needs, which is what makes it the unit of
/// sharing for [`AssignmentCache`] — the resident prediction service
/// keeps these as registry artifacts keyed by (mesh, binning) and replays
/// filters/strides off them without re-running the assignment.
#[derive(Debug, Clone)]
pub struct SampleAssignment {
    pub(crate) real: Vec<u32>,
    pub(crate) bin_count: Option<usize>,
    pub(crate) owners: Vec<Rank>,
    pub(crate) index: RegionIndex,
}

impl SampleAssignment {
    /// Approximate resident bytes, for cache budget accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.real.capacity() * std::mem::size_of::<u32>()
            + self.owners.capacity() * std::mem::size_of::<Rank>()
            + self.index.approx_bytes()
    }
}

/// One sample's shared result for one group: the assignment artifact plus
/// `(recv, sent)` ghost histograms parallel to the group's ghost slots.
pub(crate) struct GroupSampleOutcome {
    pub(crate) assignment: SampleAssignment,
    pub(crate) ghosts: Vec<(Vec<u32>, Vec<u32>)>,
}

/// The assignment phase of one (group, sample): mapper pass, per-rank
/// counting, and the region-index build. Radius-independent by
/// construction — the cacheable half of [`process_group_sample`].
fn assign_group_sample(
    positions: &[Vec3],
    soa: &crate::soa::SoAPositions,
    group: &GroupPlan,
) -> SampleAssignment {
    let outcome = if group.mapper.supports_soa() {
        group.mapper.assign_soa(soa.xs(), soa.ys(), soa.zs())
    } else {
        group.mapper.assign(positions)
    };
    let mut real = vec![0u32; group.ranks];
    for r in &outcome.ranks {
        real[r.index()] += 1;
    }
    SampleAssignment {
        real,
        bin_count: outcome.bin_count,
        owners: outcome.ranks,
        index: RegionIndex::build(&outcome.rank_regions),
    }
}

/// The ghost phase: every radius slot of the group served off a shared
/// assignment artifact.
fn ghost_group_sample(
    positions: &[Vec3],
    soa: &crate::soa::SoAPositions,
    assignment: &SampleAssignment,
    group: &GroupPlan,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    if group.slots.is_empty() {
        Vec::new()
    } else {
        multi_radius_ghost_counts(positions, soa, &assignment.owners, &assignment.index, group)
    }
}

pub(crate) fn process_group_sample(positions: &[Vec3], group: &GroupPlan) -> GroupSampleOutcome {
    // One transpose serves the mapper's SoA assignment and every shared
    // ghost slot of the group (see `process_sample` for the AoS fallback).
    let soa = crate::soa::SoAPositions::from_positions(positions);
    let assignment = assign_group_sample(positions, &soa, group);
    let ghosts = ghost_group_sample(positions, &soa, &assignment, group);
    GroupSampleOutcome { assignment, ghosts }
}

/// Ghost histograms for every radius slot of a group, from one assignment.
///
/// Shared slots (`radius ≥ 0`) are served by a single candidate query per
/// particle at the group's maximum shared radius: a region touches the
/// radius-`r` sphere iff its retained squared distance is `≤ r²`, the same
/// closed comparison the single-radius kernel's
/// [`pic_types::Aabb::intersects_sphere`] performs, so the per-slot filter
/// is bit-exact — see DESIGN.md §11 for the superset argument. Non-shared
/// slots (NaN / negative radii) go through the unmodified single-radius
/// kernel so their edge-case behavior matches the per-config path by
/// construction rather than by argument.
fn multi_radius_ghost_counts(
    positions: &[Vec3],
    soa: &crate::soa::SoAPositions,
    owners: &[Rank],
    index: &RegionIndex,
    group: &GroupPlan,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    let ranks = group.ranks;
    let shared: Vec<(usize, f64)> = group
        .slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.shared)
        .map(|(k, s)| (k, s.radius))
        .collect();
    let mut out: Vec<(Vec<u32>, Vec<u32>)> = group
        .slots
        .iter()
        .map(|_| (vec![0u32; ranks], vec![0u32; ranks]))
        .collect();
    match shared.len() {
        0 => {}
        1 => {
            // A lone radius gains nothing from candidate retention; run
            // the single-radius matrix kernel (identical output).
            let (k, radius) = shared[0];
            out[k] = crate::soa::ghost_counts_soa(soa, owners, index, radius, ranks);
        }
        _ => {
            let rr: Vec<f64> = shared.iter().map(|&(_, r)| r * r).collect();
            let partials =
                crate::soa::multi_ghost_soa(soa, owners, index, group.shared_max, &rr, ranks);
            for (&(k, _), partial) in shared.iter().zip(partials) {
                out[k] = partial;
            }
        }
    }
    for (k, slot) in group.slots.iter().enumerate() {
        if !slot.shared {
            out[k] = generator::ghost_counts_chunked(positions, owners, index, slot.radius, ranks);
        }
    }
    out
}

/// Chunked multi-radius ghost kernel: same chunk geometry and
/// order-independent histogram merge as the single-radius
/// `ghost_counts_chunked`, but each particle's candidate set is gathered
/// once at `r_max` and counted once at its *first* (smallest) containing
/// radius; suffix sums then recover the per-radius histograms. The counts
/// are integers, so the regrouping is bit-identical to filtering every
/// radius independently.
#[doc(hidden)] // scalar reference kernel, exposed for benches and equivalence tests
pub fn multi_ghost_chunked(
    positions: &[Vec3],
    owners: &[Rank],
    index: &RegionIndex,
    r_max: f64,
    rr: &[f64],
    ranks: usize,
) -> Vec<(Vec<u32>, Vec<u32>)> {
    // First-inclusion counting needs the radii ascending; slot order is
    // arbitrary, so compute in sorted order and un-permute at the end.
    let mut order: Vec<usize> = (0..rr.len()).collect();
    order.sort_by(|&a, &b| rr[a].total_cmp(&rr[b]));
    let sorted_rr: Vec<f64> = order.iter().map(|&i| rr[i]).collect();
    let fresh = || -> Vec<(Vec<u32>, Vec<u32>)> {
        rr.iter()
            .map(|_| (vec![0u32; ranks], vec![0u32; ranks]))
            .collect()
    };
    let chunks = positions.len().div_ceil(generator::GHOST_CHUNK);
    let mut merged = if chunks <= 1 {
        let mut partial = fresh();
        multi_ghost_span(
            positions,
            owners,
            index,
            r_max,
            &sorted_rr,
            &mut RegionQueryScratch::new(),
            &mut partial,
        );
        partial
    } else {
        let partials: Vec<Vec<(Vec<u32>, Vec<u32>)>> = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * generator::GHOST_CHUNK;
                let hi = (lo + generator::GHOST_CHUNK).min(positions.len());
                let mut partial = fresh();
                multi_ghost_span(
                    &positions[lo..hi],
                    &owners[lo..hi],
                    index,
                    r_max,
                    &sorted_rr,
                    &mut RegionQueryScratch::new(),
                    &mut partial,
                );
                partial
            })
            .collect();
        let mut merged = fresh();
        for partial in &partials {
            for (acc, p) in merged.iter_mut().zip(partial) {
                for (a, v) in acc.0.iter_mut().zip(&p.0) {
                    *a += v;
                }
                for (a, v) in acc.1.iter_mut().zip(&p.1) {
                    *a += v;
                }
            }
        }
        merged
    };
    let mut out = fresh();
    for (pos, &slot) in order.iter().enumerate() {
        out[slot] = std::mem::take(&mut merged[pos]);
    }
    out
}

/// Sequential multi-radius counting over one aligned span, `rr_sorted`
/// ascending: each candidate is tallied once at the first radius that
/// contains it, and a suffix pass completes the larger radii. Returns
/// histograms in `rr_sorted` order.
#[inline]
fn multi_ghost_span(
    positions: &[Vec3],
    owners: &[Rank],
    index: &RegionIndex,
    r_max: f64,
    rr_sorted: &[f64],
    scratch: &mut RegionQueryScratch,
    partial: &mut [(Vec<u32>, Vec<u32>)],
) {
    let nr = rr_sorted.len();
    let mut count_first = vec![0u32; nr];
    for (&p, &home) in positions.iter().zip(owners) {
        count_first.iter_mut().for_each(|c| *c = 0);
        // Every candidate satisfies d2 ≤ r_max² (the query's own visit
        // condition), and r_max is the largest shared radius, so the
        // first-inclusion scan always terminates inside the slice.
        index.for_each_candidate_in_sphere(p, r_max, scratch, |t, d2| {
            if t == home {
                return;
            }
            let mut j = 0;
            while d2 > rr_sorted[j] {
                j += 1;
            }
            partial[j].0[t.index()] += 1;
            count_first[j] += 1;
        });
        let mut copies = 0u32;
        for (j, &c) in count_first.iter().enumerate() {
            copies += c;
            partial[j].1[home.index()] += copies;
        }
    }
    // Suffix-complete the recv histograms: a region first touched at
    // radius j is a ghost source at every radius ≥ j.
    for j in 1..nr {
        let (lo, hi) = partial.split_at_mut(j);
        for (a, &v) in hi[0].0.iter_mut().zip(&lo[j - 1].0) {
            *a += v;
        }
    }
}

/// One sample's ghost histograms: a `(recv, sent)` pair per radius slot.
type GhostSlots = Vec<(Vec<u32>, Vec<u32>)>;

/// One sample's shared view: its assignment plus its ghost slot pairs.
type SampleView<'a> = (&'a SampleAssignment, &'a [(Vec<u32>, Vec<u32>)]);

/// Assemble one member's workload from its group's shared per-sample
/// views (`(assignment, ghost histograms)` per trace sample).
fn assemble_member(
    member: &MemberPlan,
    ranks: usize,
    samples: &[SampleView<'_>],
    iterations: &[u64],
) -> DynamicWorkload {
    let retained: Vec<usize> = (0..samples.len()).step_by(member.stride).collect();
    let mut real = CompMatrix::new(ranks);
    let mut ghost_recv = CompMatrix::new(ranks);
    let mut ghost_sent = CompMatrix::new(ranks);
    let mut bin_counts = Vec::with_capacity(retained.len());
    let mut iters = Vec::with_capacity(retained.len());
    let mut comm_entries = Vec::with_capacity(retained.len());
    let zeros = vec![0u32; ranks];
    let mut prev: Option<usize> = None;
    for &t in &retained {
        let (a, ghosts) = samples[t];
        real.push_sample(&a.real);
        match member.ghost_slot {
            Some(k) => {
                ghost_recv.push_sample(&ghosts[k].0);
                ghost_sent.push_sample(&ghosts[k].1);
            }
            None => {
                ghost_recv.push_sample(&zeros);
                ghost_sent.push_sample(&zeros);
            }
        }
        bin_counts.push(a.bin_count);
        iters.push(iterations[t]);
        comm_entries.push(match prev {
            Some(pt) => migration_pairs(&samples[pt].0.owners, &a.owners),
            None => Vec::new(),
        });
        prev = Some(t);
    }
    DynamicWorkload {
        ranks,
        iterations: iters,
        real,
        ghost_recv,
        ghost_sent,
        comm: CommMatrix {
            entries: comm_entries,
        },
        bin_counts,
    }
}

fn stats_for(plan: &SweepPlan, samples: usize) -> SweepStats {
    SweepStats {
        points: plan.members.len(),
        groups: plan.groups.len(),
        samples,
        assign_passes: plan.groups.len() * samples,
        naive_assign_passes: plan.members.len() * samples,
        ghost_radii: plan.groups.iter().map(|g| g.slots.len()).sum(),
        shared_query_groups: plan.groups.iter().filter(|g| g.shared_slots() > 1).count(),
        cached_groups: 0,
    }
}

/// Replay `trace` once and produce one [`DynamicWorkload`] per sweep
/// point, in point order, each bit-identical to what
/// [`generator::generate_with_mesh`] (over `trace.subsample(stride)`)
/// would return for that point.
///
/// Errors mirror the per-configuration path: a point whose configuration
/// would fail there (zero ranks, mesh-requiring mapping without a mesh,
/// invalid bin threshold) fails the sweep.
pub fn sweep(
    trace: &ParticleTrace,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
) -> Result<Vec<DynamicWorkload>> {
    sweep_with_stats(trace, points, mesh).map(|(w, _)| w)
}

/// [`sweep`], additionally returning the sharing accounting.
pub fn sweep_with_stats(
    trace: &ParticleTrace,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
) -> Result<(Vec<DynamicWorkload>, SweepStats)> {
    let plan = build_plan(points, mesh)?;
    let samples: Vec<&pic_trace::TraceSample> = trace.samples().collect();
    let t_count = samples.len();
    // Flattened (group, sample) fan-out: outer-level parallelism across
    // configurations composed with the chunked intra-sample ghost kernel
    // (big samples split further inside process_group_sample).
    let outcomes: Vec<GroupSampleOutcome> = pic_types::pool::install(|| {
        (0..plan.groups.len() * t_count)
            .into_par_iter()
            .map(|i| {
                let (g, t) = (i / t_count, i % t_count);
                process_group_sample(&samples[t].positions, &plan.groups[g])
            })
            .collect()
    });
    let iterations = trace.iterations();
    let workloads: Vec<DynamicWorkload> = pic_types::pool::install(|| {
        plan.members
            .par_iter()
            .map(|m| {
                let group = &plan.groups[m.group];
                let span = &outcomes[m.group * t_count..(m.group + 1) * t_count];
                let views: Vec<SampleView<'_>> = span
                    .iter()
                    .map(|o| (&o.assignment, o.ghosts.as_slice()))
                    .collect();
                assemble_member(m, group.ranks, &views, &iterations)
            })
            .collect()
    });
    let stats = stats_for(&plan, t_count);
    Ok((workloads, stats))
}

/// Structural fingerprint of a mesh specification: two meshes with the
/// same domain bits, dimensions, and order assign identically under every
/// mesh-based mapping, so their fingerprints may (and do) collide — that
/// collision is exactly the sharing the [`AssignmentCache`] wants.
pub fn mesh_fingerprint(mesh: &ElementMesh) -> u64 {
    let mut bytes = Vec::with_capacity(6 * 8 + 4 * 8);
    let d = mesh.domain();
    for v in [d.min, d.max] {
        for c in [v.x, v.y, v.z] {
            bytes.extend_from_slice(&c.to_bits().to_le_bytes());
        }
    }
    for n in mesh.dims().to_array() {
        bytes.extend_from_slice(&(n as u64).to_le_bytes());
    }
    bytes.extend_from_slice(&(mesh.order() as u64).to_le_bytes());
    pic_types::hash::fnv1a_64(&bytes)
}

/// Cache key for one group's assignment artifacts **within one trace**:
/// the assignment-identity group key plus a mesh fingerprint. Bin-based
/// partitions ignore the mesh entirely, so their keys carry no mesh
/// component and survive mesh changes. The key deliberately does *not*
/// identify the trace — an [`AssignmentCache`] is scoped to the trace it
/// was populated from (the serve registry keeps one per resident trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssignmentKey {
    mapping: MappingAlgorithm,
    ranks: usize,
    filter_bits: Option<u64>,
    mesh_fp: Option<u64>,
}

impl AssignmentKey {
    fn for_group(
        key: (MappingAlgorithm, usize, Option<u64>),
        mesh_fp: Option<u64>,
    ) -> AssignmentKey {
        let (mapping, ranks, filter_bits) = key;
        AssignmentKey {
            mapping,
            ranks,
            filter_bits,
            // Bin-based assignment never consults the mesh.
            mesh_fp: (mapping != MappingAlgorithm::BinBased)
                .then_some(mesh_fp)
                .flatten(),
        }
    }

    /// The key a sweep point's assignment artifacts live under, given the
    /// mesh (if any) the sweep runs against.
    pub fn for_config(cfg: &WorkloadConfig, mesh: Option<&ElementMesh>) -> AssignmentKey {
        AssignmentKey::for_group(group_key(cfg), mesh.map(mesh_fingerprint))
    }
}

/// Counters exposed by [`AssignmentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentCacheStats {
    /// Lookups served from resident artifacts.
    pub hits: u64,
    /// Lookups that required an assignment replay.
    pub misses: u64,
    /// Entries dropped to stay within the byte budget.
    pub evictions: u64,
    /// Approximate bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheEntry {
    artifacts: Arc<Vec<SampleAssignment>>,
    bytes: usize,
    last_used: u64,
}

struct CacheInner {
    entries: HashMap<AssignmentKey, CacheEntry>,
    resident_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Lock-order level of the assignment-cache mutex. The serve layer
/// (`pic-predict::serve::lock_order`) tops out at 50; the registry's
/// `entry_bytes` calls [`AssignmentCache::stats`] *while holding* the
/// registry lock, so this class must sit strictly above every serve
/// class in the declared hierarchy (see DESIGN.md §14).
const ASSIGNMENT_CACHE_LOCK_LEVEL: u32 = 100;

/// Byte-budgeted LRU cache of per-sample assignment artifacts, shared
/// across concurrent sweeps of **one** trace (`Send + Sync`; interior
/// mutability behind a mutex — lookups move `Arc`s, never artifact data).
///
/// [`sweep_with_cache`] consults it per assignment group: a hit skips the
/// group's entire assignment + index replay and goes straight to the
/// ghost phase, which is why the resident prediction service answers
/// repeat sweeps at a different filter radius or stride without touching
/// the mapper at all. Eviction is strict LRU by lookup/insert tick; an
/// entry larger than the whole budget is admitted alone (the cache never
/// refuses to serve the request it was asked to back).
pub struct AssignmentCache {
    budget_bytes: usize,
    inner: TrackedMutex<CacheInner>,
}

impl std::fmt::Debug for AssignmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("AssignmentCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &s)
            .finish()
    }
}

impl AssignmentCache {
    /// A cache that holds at most ~`budget_bytes` of artifacts.
    pub fn new(budget_bytes: usize) -> AssignmentCache {
        AssignmentCache {
            budget_bytes,
            inner: TrackedMutex::new(
                "workload.assignment_cache",
                ASSIGNMENT_CACHE_LOCK_LEVEL,
                CacheInner {
                    entries: HashMap::new(),
                    resident_bytes: 0,
                    tick: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                },
            ),
        }
    }

    /// Look up the artifacts for `key`, bumping its recency on a hit.
    pub fn get(&self, key: &AssignmentKey) -> Option<Arc<Vec<SampleAssignment>>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let out = Arc::clone(&e.artifacts);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the artifacts for `key`, then evict
    /// least-recently-used entries until the budget holds. The entry just
    /// inserted is never evicted by its own insertion.
    pub fn insert(&self, key: AssignmentKey, artifacts: Arc<Vec<SampleAssignment>>) {
        let bytes = artifacts.iter().map(|a| a.approx_bytes()).sum::<usize>()
            + artifacts.capacity() * std::mem::size_of::<SampleAssignment>();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            key,
            CacheEntry {
                artifacts,
                bytes,
                last_used: tick,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(v) => {
                    let e = inner.entries.remove(&v).expect("victim vanished");
                    inner.resident_bytes -= e.bytes;
                    inner.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> AssignmentCacheStats {
        let inner = self.inner.lock();
        AssignmentCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes,
            entries: inner.entries.len(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

/// [`sweep_with_stats`] backed by an [`AssignmentCache`]: assignment
/// groups whose artifacts are resident skip the mapper / counting / index
/// replay entirely and jump to the ghost phase; missing groups run the
/// normal pass and publish their artifacts for the next caller. Outputs
/// are bit-identical to [`sweep`] — artifacts are plain data produced by
/// the same kernels, so serving them from memory cannot perturb a bit —
/// and `stats.assign_passes` reports the passes actually executed, with
/// `stats.cached_groups` counting the groups served from cache.
pub fn sweep_with_cache(
    trace: &ParticleTrace,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
    cache: &AssignmentCache,
) -> Result<(Vec<DynamicWorkload>, SweepStats)> {
    let plan = build_plan(points, mesh)?;
    let samples: Vec<&pic_trace::TraceSample> = trace.samples().collect();
    let t_count = samples.len();
    let mesh_fp = mesh.map(mesh_fingerprint);

    let keys: Vec<AssignmentKey> = plan
        .groups
        .iter()
        .map(|g| AssignmentKey::for_group(g.key, mesh_fp))
        .collect();
    let mut assignments: Vec<Option<Arc<Vec<SampleAssignment>>>> =
        keys.iter().map(|k| cache.get(k)).collect();
    let missing: Vec<usize> = (0..plan.groups.len())
        .filter(|&g| assignments[g].is_none())
        .collect();

    // Missing groups run the fused pass (one SoA transpose serves both
    // phases, exactly as the cacheless path does); their ghosts are kept
    // so they aren't recomputed below.
    let mut ghosts: Vec<Vec<GhostSlots>> = (0..plan.groups.len()).map(|_| Vec::new()).collect();
    if !missing.is_empty() {
        let outcomes: Vec<GroupSampleOutcome> = pic_types::pool::install(|| {
            (0..missing.len() * t_count)
                .into_par_iter()
                .map(|i| {
                    let (mi, t) = (i / t_count, i % t_count);
                    process_group_sample(&samples[t].positions, &plan.groups[missing[mi]])
                })
                .collect()
        });
        let mut outcomes = outcomes.into_iter();
        for &g in &missing {
            let mut arts = Vec::with_capacity(t_count);
            let mut gh = Vec::with_capacity(t_count);
            for o in outcomes.by_ref().take(t_count) {
                arts.push(o.assignment);
                gh.push(o.ghosts);
            }
            let arts = Arc::new(arts);
            cache.insert(keys[g], Arc::clone(&arts));
            assignments[g] = Some(arts);
            ghosts[g] = gh;
        }
    }

    // Cache-hit groups still owe their ghost phase (radii are not part of
    // the artifact); replay it off the resident assignments.
    let hit_ghost_work: Vec<usize> = (0..plan.groups.len())
        .filter(|&g| ghosts[g].is_empty() && !plan.groups[g].slots.is_empty() && t_count > 0)
        .collect();
    if !hit_ghost_work.is_empty() {
        let assignments = &assignments;
        let computed: Vec<Vec<(Vec<u32>, Vec<u32>)>> = pic_types::pool::install(|| {
            (0..hit_ghost_work.len() * t_count)
                .into_par_iter()
                .map(|i| {
                    let (gi, t) = (i / t_count, i % t_count);
                    let g = hit_ghost_work[gi];
                    let positions = &samples[t].positions;
                    let soa = crate::soa::SoAPositions::from_positions(positions);
                    let arts = assignments[g].as_ref().expect("hit group lost artifacts");
                    ghost_group_sample(positions, &soa, &arts[t], &plan.groups[g])
                })
                .collect()
        });
        let mut computed = computed.into_iter();
        for &g in &hit_ghost_work {
            ghosts[g] = computed.by_ref().take(t_count).collect();
        }
    }
    // Ghost-free hit groups: give every sample its empty slot vector.
    for slots in ghosts.iter_mut() {
        if slots.is_empty() {
            *slots = vec![Vec::new(); t_count];
        }
    }

    let iterations = trace.iterations();
    let assignments_ref = &assignments;
    let ghosts_ref = &ghosts;
    let workloads: Vec<DynamicWorkload> = pic_types::pool::install(|| {
        plan.members
            .par_iter()
            .map(|m| {
                let group = &plan.groups[m.group];
                let arts = assignments_ref[m.group]
                    .as_ref()
                    .expect("group lost artifacts");
                let views: Vec<SampleView<'_>> = arts
                    .iter()
                    .zip(&ghosts_ref[m.group])
                    .map(|(a, gh)| (a, gh.as_slice()))
                    .collect();
                assemble_member(m, group.ranks, &views, &iterations)
            })
            .collect()
    });

    let mut stats = stats_for(&plan, t_count);
    stats.assign_passes = missing.len() * t_count;
    stats.cached_groups = plan.groups.len() - missing.len();
    Ok((workloads, stats))
}

/// Convenience: a stride-1 sweep over plain configurations.
pub fn sweep_configs(
    trace: &ParticleTrace,
    configs: &[WorkloadConfig],
    mesh: Option<&ElementMesh>,
) -> Result<Vec<DynamicWorkload>> {
    let points: Vec<SweepPoint> = configs.iter().cloned().map(SweepPoint::new).collect();
    sweep(trace, &points, mesh)
}

/// Per-member streaming accumulator: the rows of one output workload,
/// folded sample-by-sample.
struct MemberAccum {
    real: CompMatrix,
    ghost_recv: CompMatrix,
    ghost_sent: CompMatrix,
    bin_counts: Vec<Option<usize>>,
    iterations: Vec<u64>,
    comm_entries: Vec<Vec<(u32, u32, u32)>>,
    prev_owners: Option<Vec<Rank>>,
}

/// Decoded frames in flight between pipeline stages (mirrors the
/// single-config streaming path).
const PIPELINE_DEPTH: usize = 4;

/// Streaming sweep: drive every sweep point sample-by-sample off one
/// [`pic_trace::SampleSource`] pass (raw or compact on-disk format),
/// bit-identical to [`sweep`].
///
/// The pipeline is the single-config streaming generator's — decoder
/// thread → bounded channel → worker pool → in-order merge — except each
/// frame is processed once **per group** and folded into one accumulator
/// per member. Resident memory is `O(PIPELINE_DEPTH + workers)` frames
/// plus the accumulated output rows: bounded by one sample ×
/// configurations, never trace length × configurations. Error behavior
/// matches [`generator::generate_streaming`]: a corrupt stream fails the
/// run with the decoder's positioned error after every thread is joined.
pub fn sweep_streaming<S: pic_trace::SampleSource + Send>(
    mut reader: S,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
) -> Result<Vec<DynamicWorkload>> {
    let plan = build_plan(points, mesh)?;
    let plan = &plan;
    // Shared-pool policy: ambient installs override, else the
    // `RAYON_NUM_THREADS`-aware shared pool size applies.
    let workers = pic_types::pool::install(rayon::current_num_threads).max(1);

    std::thread::scope(|scope| -> Result<Vec<DynamicWorkload>> {
        let (frame_tx, frame_rx) =
            crossbeam::channel::bounded::<(usize, pic_trace::TraceSample)>(PIPELINE_DEPTH);
        let (out_tx, out_rx) = crossbeam::channel::bounded::<(usize, u64, Vec<GroupSampleOutcome>)>(
            PIPELINE_DEPTH + workers,
        );

        let decoder = scope.spawn(move || -> Result<()> {
            let mut i = 0usize;
            loop {
                match reader.read_sample() {
                    Ok(Some(frame)) => {
                        if frame_tx.send((i, frame)).is_err() {
                            return Ok(()); // every worker hung up; stop
                        }
                        i += 1;
                    }
                    Ok(None) => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
        });

        for _ in 0..workers {
            let rx = frame_rx.clone();
            let tx = out_tx.clone();
            scope.spawn(move || {
                // Frame-level fan-out is the parallelism; pin each
                // worker's intra-sample kernels to one thread so the
                // stages don't oversubscribe each other.
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(1)
                    .build()
                    .unwrap();
                while let Ok((i, frame)) = rx.recv() {
                    let outcomes: Vec<GroupSampleOutcome> = pool.install(|| {
                        plan.groups
                            .iter()
                            .map(|g| process_group_sample(&frame.positions, g))
                            .collect()
                    });
                    if tx.send((i, frame.iteration, outcomes)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(frame_rx);
        drop(out_tx);

        let mut accums: Vec<MemberAccum> = plan
            .members
            .iter()
            .map(|m| {
                let ranks = plan.groups[m.group].ranks;
                MemberAccum {
                    real: CompMatrix::new(ranks),
                    ghost_recv: CompMatrix::new(ranks),
                    ghost_sent: CompMatrix::new(ranks),
                    bin_counts: Vec::new(),
                    iterations: Vec::new(),
                    comm_entries: Vec::new(),
                    prev_owners: None,
                }
            })
            .collect();
        // Reorder buffer: results stall here until their predecessors
        // land, so the fold below always sees samples in trace order.
        let mut pending: std::collections::BTreeMap<usize, (u64, Vec<GroupSampleOutcome>)> =
            std::collections::BTreeMap::new();
        let mut next = 0usize;
        while let Ok((i, iteration, outcomes)) = out_rx.recv() {
            pending.insert(i, (iteration, outcomes));
            while let Some((iteration, outcomes)) = pending.remove(&next) {
                for (m, acc) in plan.members.iter().zip(&mut accums) {
                    if !next.is_multiple_of(m.stride) {
                        continue;
                    }
                    let o = &outcomes[m.group];
                    acc.real.push_sample(&o.assignment.real);
                    let ranks = plan.groups[m.group].ranks;
                    match m.ghost_slot {
                        Some(k) => {
                            acc.ghost_recv.push_sample(&o.ghosts[k].0);
                            acc.ghost_sent.push_sample(&o.ghosts[k].1);
                        }
                        None => {
                            let zeros = vec![0u32; ranks];
                            acc.ghost_recv.push_sample(&zeros);
                            acc.ghost_sent.push_sample(&zeros);
                        }
                    }
                    acc.bin_counts.push(o.assignment.bin_count);
                    acc.iterations.push(iteration);
                    acc.comm_entries.push(match &acc.prev_owners {
                        Some(prev) => migration_pairs(prev, &o.assignment.owners),
                        None => Vec::new(),
                    });
                    acc.prev_owners = Some(o.assignment.owners.clone());
                }
                next += 1;
            }
        }
        // out_rx closed ⇒ workers exited ⇒ the decoder has no readers
        // left; joining here cannot block on a stalled stream.
        decoder.join().expect("trace decoder thread panicked")?;

        Ok(plan
            .members
            .iter()
            .zip(accums)
            .map(|(m, acc)| DynamicWorkload {
                ranks: plan.groups[m.group].ranks,
                iterations: acc.iterations,
                real: acc.real,
                ghost_recv: acc.ghost_recv,
                ghost_sent: acc.ghost_sent,
                comm: CommMatrix {
                    entries: acc.comm_entries,
                },
                bin_counts: acc.bin_counts,
            })
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_grid::MeshDims;
    use pic_trace::TraceMeta;
    use pic_types::rng::SplitMix64;
    use pic_types::Aabb;

    fn make_trace(np: usize, t: usize, seed: u64) -> ParticleTrace {
        let mut rng = SplitMix64::new(seed);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "sweep-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let scale = 0.05 + 0.05 * k as f64;
            let drift = Vec3::new(0.03 * k as f64, 0.0, 0.0);
            let positions: Vec<Vec3> = dirs
                .iter()
                .map(|d| (Vec3::splat(0.5) + *d * scale + drift).clamp(Vec3::ZERO, Vec3::ONE))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    fn mesh() -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap()
    }

    /// The oracle: what the per-config sequential reference produces for
    /// one sweep point (subsampling the trace for stride > 1).
    fn reference_for(
        trace: &ParticleTrace,
        point: &SweepPoint,
        mesh: Option<&ElementMesh>,
    ) -> DynamicWorkload {
        let sub;
        let tr = if point.stride.max(1) == 1 {
            trace
        } else {
            sub = trace.subsample(point.stride);
            &sub
        };
        generator::generate_reference(tr, &point.config, mesh).unwrap()
    }

    fn assert_matches_reference(
        trace: &ParticleTrace,
        points: &[SweepPoint],
        mesh: Option<&ElementMesh>,
    ) {
        let swept = sweep(trace, points, mesh).unwrap();
        assert_eq!(swept.len(), points.len());
        for (i, (w, p)) in swept.iter().zip(points).enumerate() {
            let reference = reference_for(trace, p, mesh);
            assert_eq!(*w, reference, "point {i} diverged: {p:?}");
        }
    }

    #[test]
    fn filter_sweep_matches_per_config_reference() {
        let tr = make_trace(400, 5, 1);
        let m = mesh();
        let points: Vec<SweepPoint> = [0.01, 0.03, 0.08, 0.15]
            .iter()
            .map(|&f| SweepPoint::new(WorkloadConfig::new(16, MappingAlgorithm::ElementBased, f)))
            .collect();
        assert_matches_reference(&tr, &points, Some(&m));
    }

    #[test]
    fn mixed_grid_matches_reference_for_all_mappings() {
        let tr = make_trace(300, 4, 2);
        let m = mesh();
        let mut points = Vec::new();
        for mapping in [
            MappingAlgorithm::BinBased,
            MappingAlgorithm::ElementBased,
            MappingAlgorithm::HilbertOrdered,
            MappingAlgorithm::LoadBalanced,
        ] {
            for ranks in [4, 16] {
                for filter in [0.02, 0.06] {
                    points.push(SweepPoint::new(WorkloadConfig::new(ranks, mapping, filter)));
                }
            }
        }
        assert_matches_reference(&tr, &points, Some(&m));
    }

    #[test]
    fn strides_match_subsampled_reference() {
        let tr = make_trace(250, 9, 3);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.04);
        let points = vec![
            SweepPoint::new(cfg.clone()),
            SweepPoint::with_stride(cfg.clone(), 2),
            SweepPoint::with_stride(cfg.clone(), 4),
            SweepPoint::with_stride(cfg, 0), // treated as 1
        ];
        assert_matches_reference(&tr, &points, None);
        let swept = sweep(&tr, &points, None).unwrap();
        assert_eq!(swept[0], swept[3]);
    }

    #[test]
    fn ghost_toggle_and_weird_radii_match_reference() {
        let tr = make_trace(200, 3, 4);
        let m = mesh();
        let mut off = WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.05);
        off.compute_ghosts = false;
        let points = vec![
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.05)),
            SweepPoint::new(off),
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.0)),
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::ElementBased, -0.3)),
            SweepPoint::new(WorkloadConfig::new(
                8,
                MappingAlgorithm::ElementBased,
                f64::NAN,
            )),
        ];
        assert_matches_reference(&tr, &points, Some(&m));
    }

    #[test]
    fn grouping_collapses_shared_assignments() {
        let tr = make_trace(150, 3, 5);
        let m = mesh();
        let mut points = Vec::new();
        for filter in [0.01, 0.02, 0.04, 0.08] {
            points.push(SweepPoint::new(WorkloadConfig::new(
                16,
                MappingAlgorithm::ElementBased,
                filter,
            )));
            // bin-based groups carry the filter in their key: no collapse
            points.push(SweepPoint::new(WorkloadConfig::new(
                16,
                MappingAlgorithm::BinBased,
                filter,
            )));
        }
        let (_, stats) = sweep_with_stats(&tr, &points, Some(&m)).unwrap();
        assert_eq!(stats.points, 8);
        // 1 element-based group (4 radii shared) + 4 bin-based groups
        assert_eq!(stats.groups, 5);
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.assign_passes, 15);
        assert_eq!(stats.naive_assign_passes, 24);
        assert_eq!(stats.ghost_radii, 4 + 4);
        assert_eq!(stats.shared_query_groups, 1);
    }

    #[test]
    fn streaming_sweep_matches_in_memory() {
        use pic_trace::codec::{encode_trace, Precision};
        let tr = make_trace(300, 5, 6);
        let m = mesh();
        let mut no_ghosts = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.03);
        no_ghosts.compute_ghosts = false;
        let points = vec![
            SweepPoint::new(WorkloadConfig::new(
                16,
                MappingAlgorithm::ElementBased,
                0.02,
            )),
            SweepPoint::new(WorkloadConfig::new(
                16,
                MappingAlgorithm::ElementBased,
                0.07,
            )),
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.03)),
            SweepPoint::with_stride(
                WorkloadConfig::new(16, MappingAlgorithm::HilbertOrdered, 0.05),
                2,
            ),
            SweepPoint::new(no_ghosts),
        ];
        let in_memory = sweep(&tr, &points, Some(&m)).unwrap();
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let reader = pic_trace::TraceReader::new(&bytes[..]).unwrap();
        let streamed = sweep_streaming(reader, &points, Some(&m)).unwrap();
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn streaming_sweep_surfaces_decode_errors() {
        use pic_trace::codec::{encode_trace, Precision};
        let tr = make_trace(100, 4, 7);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let truncated = &bytes[..bytes.len() - 7];
        let reader = pic_trace::TraceReader::new(truncated).unwrap();
        let points = vec![SweepPoint::new(WorkloadConfig::new(
            8,
            MappingAlgorithm::BinBased,
            0.05,
        ))];
        assert!(sweep_streaming(reader, &points, None).is_err());
    }

    #[test]
    fn config_errors_mirror_per_config_path() {
        let tr = make_trace(50, 2, 8);
        // mesh-requiring mapping without a mesh
        let points = vec![SweepPoint::new(WorkloadConfig::new(
            4,
            MappingAlgorithm::ElementBased,
            0.05,
        ))];
        assert!(sweep(&tr, &points, None).is_err());
        // zero ranks
        let bad = WorkloadConfig {
            ranks: 0,
            mapping: MappingAlgorithm::BinBased,
            projection_filter: 0.1,
            compute_ghosts: false,
        };
        assert!(sweep(&tr, &[SweepPoint::new(bad)], None).is_err());
    }

    #[test]
    fn empty_point_list_and_empty_trace() {
        let tr = make_trace(50, 2, 9);
        assert!(sweep(&tr, &[], None).unwrap().is_empty());
        let empty = ParticleTrace::new(TraceMeta::new(5, 100, Aabb::unit(), "empty"));
        let points = vec![SweepPoint::new(WorkloadConfig::new(
            4,
            MappingAlgorithm::BinBased,
            0.1,
        ))];
        let w = sweep(&empty, &points, None).unwrap();
        assert_eq!(w[0].samples(), 0);
    }

    #[test]
    fn cached_sweep_is_bit_identical_and_skips_assignment() {
        let tr = make_trace(300, 4, 11);
        let m = mesh();
        let mut points = Vec::new();
        for mapping in [
            MappingAlgorithm::BinBased,
            MappingAlgorithm::ElementBased,
            MappingAlgorithm::HilbertOrdered,
        ] {
            for filter in [0.02, 0.06] {
                points.push(SweepPoint::new(WorkloadConfig::new(8, mapping, filter)));
            }
        }
        points.push(SweepPoint::with_stride(
            WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.06),
            2,
        ));
        let baseline = sweep(&tr, &points, Some(&m)).unwrap();

        let cache = AssignmentCache::new(64 << 20);
        let (cold, cold_stats) = sweep_with_cache(&tr, &points, Some(&m), &cache).unwrap();
        assert_eq!(cold, baseline);
        assert_eq!(cold_stats.cached_groups, 0);
        assert_eq!(cold_stats.assign_passes, cold_stats.groups * 4);

        let (warm, warm_stats) = sweep_with_cache(&tr, &points, Some(&m), &cache).unwrap();
        assert_eq!(warm, baseline);
        assert_eq!(warm_stats.cached_groups, warm_stats.groups);
        assert_eq!(warm_stats.assign_passes, 0);

        // A new filter radius on a resident mesh-based group is still a
        // full hit: radii are outside the artifact.
        let fresh = vec![SweepPoint::new(WorkloadConfig::new(
            8,
            MappingAlgorithm::ElementBased,
            0.11,
        ))];
        let (w, s) = sweep_with_cache(&tr, &fresh, Some(&m), &cache).unwrap();
        assert_eq!(w[0], reference_for(&tr, &fresh[0], Some(&m)));
        assert_eq!(s.cached_groups, 1);
        assert_eq!(s.assign_passes, 0);

        let cs = cache.stats();
        assert!(cs.hits > warm_stats.groups as u64);
        assert!(cs.resident_bytes > 0 && cs.entries > 0);
    }

    #[test]
    fn cache_eviction_recomputes_identically() {
        let tr = make_trace(200, 3, 12);
        let m = mesh();
        let mk = |ranks| {
            vec![SweepPoint::new(WorkloadConfig::new(
                ranks,
                MappingAlgorithm::ElementBased,
                0.05,
            ))]
        };
        // A budget of one entry: every new rank count evicts the previous.
        let one = {
            let probe = AssignmentCache::new(usize::MAX);
            sweep_with_cache(&tr, &mk(4), Some(&m), &probe).unwrap();
            probe.stats().resident_bytes
        };
        let cache = AssignmentCache::new(one + one / 2);
        let (a1, _) = sweep_with_cache(&tr, &mk(4), Some(&m), &cache).unwrap();
        for ranks in [8, 16, 32] {
            sweep_with_cache(&tr, &mk(ranks), Some(&m), &cache).unwrap();
        }
        assert!(cache.stats().evictions > 0, "budget never forced eviction");
        // Re-ingesting the evicted key replays to bit-identical artifacts
        // and output (content-address stability of the sweep kernels).
        let (a2, s2) = sweep_with_cache(&tr, &mk(4), Some(&m), &cache).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(s2.cached_groups, 0);
        let (a3, s3) = sweep_with_cache(&tr, &mk(4), Some(&m), &cache).unwrap();
        assert_eq!(a1, a3);
        assert_eq!(s3.cached_groups, 1);
    }

    #[test]
    fn assignment_keys_separate_meshes_but_not_for_bin_based() {
        let m1 = mesh();
        let m2 = ElementMesh::new(Aabb::unit(), MeshDims::cube(8), 5).unwrap();
        let eb = WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.05);
        let bb = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        assert_ne!(
            AssignmentKey::for_config(&eb, Some(&m1)),
            AssignmentKey::for_config(&eb, Some(&m2))
        );
        assert_eq!(
            AssignmentKey::for_config(&bb, Some(&m1)),
            AssignmentKey::for_config(&bb, Some(&m2))
        );
        assert_eq!(
            AssignmentKey::for_config(&bb, Some(&m1)),
            AssignmentKey::for_config(&bb, None)
        );
        assert_eq!(mesh_fingerprint(&m1), mesh_fingerprint(&mesh()));
    }

    #[test]
    fn concurrent_cached_sweeps_are_bit_identical() {
        let tr = make_trace(250, 3, 13);
        let m = mesh();
        let points: Vec<SweepPoint> = [0.02, 0.05, 0.09]
            .iter()
            .map(|&f| SweepPoint::new(WorkloadConfig::new(12, MappingAlgorithm::ElementBased, f)))
            .collect();
        let baseline = sweep(&tr, &points, Some(&m)).unwrap();
        let cache = AssignmentCache::new(64 << 20);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| sweep_with_cache(&tr, &points, Some(&m), &cache).unwrap().0)
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), baseline);
            }
        });
    }

    #[test]
    fn large_sample_exercises_chunked_multi_radius_kernel() {
        // Two chunks' worth of particles so the parallel partial merge of
        // the multi-radius kernel actually runs.
        let tr = make_trace(generator::GHOST_CHUNK * 2 + 57, 2, 10);
        let m = mesh();
        let points: Vec<SweepPoint> = [0.02, 0.05, 0.09]
            .iter()
            .map(|&f| SweepPoint::new(WorkloadConfig::new(24, MappingAlgorithm::ElementBased, f)))
            .collect();
        assert_matches_reference(&tr, &points, Some(&m));
    }
}
