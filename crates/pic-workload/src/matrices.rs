//! Computation and communication matrices.
//!
//! The computation matrix is dense (`R × T` counts — Fig 1a renders it as a
//! heat map). The communication matrix is `R × R × T` in the paper but
//! overwhelmingly sparse in practice (a rank exchanges particles with a
//! handful of neighbours), so it is stored as per-sample sorted triples.

use pic_types::Rank;
use serde::{Deserialize, Serialize};

/// Dense `R × T` matrix of per-rank particle counts over samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompMatrix {
    ranks: usize,
    /// Row-major `[sample][rank]`, flattened.
    data: Vec<u32>,
}

impl CompMatrix {
    /// An empty matrix for `ranks` processors.
    pub fn new(ranks: usize) -> CompMatrix {
        CompMatrix {
            ranks,
            data: Vec::new(),
        }
    }

    /// Build directly from per-sample count rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `ranks`.
    pub fn from_rows(ranks: usize, rows: Vec<Vec<u32>>) -> CompMatrix {
        let mut m = CompMatrix::new(ranks);
        for r in rows {
            m.push_sample(&r);
        }
        m
    }

    /// Append one sample's counts.
    pub fn push_sample(&mut self, counts: &[u32]) {
        assert_eq!(counts.len(), self.ranks, "count row arity");
        self.data.extend_from_slice(counts);
    }

    /// Processor count `R`.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sample count `T`.
    pub fn samples(&self) -> usize {
        self.data.len().checked_div(self.ranks).unwrap_or(0)
    }

    /// Count for `rank` at `sample` (the paper's `P_comp[i][j]`).
    #[inline]
    pub fn get(&self, rank: Rank, sample: usize) -> u32 {
        self.data[sample * self.ranks + rank.index()]
    }

    /// One sample's counts across all ranks.
    pub fn sample_row(&self, sample: usize) -> &[u32] {
        &self.data[sample * self.ranks..(sample + 1) * self.ranks]
    }

    /// One rank's count series across samples.
    pub fn rank_series(&self, rank: Rank) -> Vec<u32> {
        (0..self.samples()).map(|t| self.get(rank, t)).collect()
    }

    /// Maximum count over ranks, per sample — the Fig 5 series.
    pub fn peak_series(&self) -> Vec<u32> {
        (0..self.samples())
            .map(|t| self.sample_row(t).iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// The overall peak count (critical-path workload).
    pub fn peak(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Total count at one sample (should equal `N_p` for real particles).
    pub fn sample_total(&self, sample: usize) -> u64 {
        self.sample_row(sample).iter().map(|&c| c as u64).sum()
    }

    /// CSV rendering: one line per rank, one column per sample — the raw
    /// data behind the Fig 1a heat map.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        for r in 0..self.ranks {
            let row: Vec<String> = (0..self.samples())
                .map(|t| self.get(Rank::from_index(r), t).to_string())
                .collect();
            s.push_str(&row.join(","));
            s.push('\n');
        }
        s
    }
}

/// Sparse `R × R × T` communication matrix: per sample, sorted
/// `(from, to, count)` triples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommMatrix {
    /// `entries[t]` lists the migrations between samples `t-1` and `t`;
    /// `entries\[0\]` is empty (no predecessor).
    pub entries: Vec<Vec<(u32, u32, u32)>>,
}

impl CommMatrix {
    /// A matrix with one (empty) slot per sample.
    pub fn with_samples(t: usize) -> CommMatrix {
        CommMatrix {
            entries: vec![Vec::new(); t],
        }
    }

    /// The paper's `P_comm[i][j][k]`: particles moving from `from` to `to`
    /// at sample `k`.
    pub fn get(&self, from: Rank, to: Rank, sample: usize) -> u32 {
        self.entries[sample]
            .iter()
            .find(|&&(f, t, _)| f == from.0 && t == to.0)
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    }

    /// Total particles moved at one sample.
    pub fn sample_total(&self, sample: usize) -> u64 {
        self.entries[sample].iter().map(|&(_, _, c)| c as u64).sum()
    }

    /// Total particles moved over the whole run.
    pub fn total(&self) -> u64 {
        (0..self.entries.len()).map(|t| self.sample_total(t)).sum()
    }

    /// Total bytes moved at one sample given `bytes_per_particle` (each
    /// particle carries a fixed payload — position, velocity, properties).
    pub fn sample_bytes(&self, sample: usize, bytes_per_particle: u64) -> u64 {
        self.sample_total(sample) * bytes_per_particle
    }
}

/// Sparse sorted migration triples between two ownership snapshots —
/// shared by the generator and by ground-truth collection.
///
/// # Panics
/// Panics if the snapshots have different lengths.
pub fn migration_pairs(prev: &[Rank], cur: &[Rank]) -> Vec<(u32, u32, u32)> {
    assert_eq!(prev.len(), cur.len(), "ownership snapshots must align");
    let mut moves: Vec<(u32, u32)> = prev
        .iter()
        .zip(cur)
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (a.0, b.0))
        .collect();
    moves.sort_unstable();
    let mut out: Vec<(u32, u32, u32)> = Vec::new();
    for (from, to) in moves {
        match out.last_mut() {
            Some(last) if last.0 == from && last.1 == to => last.2 += 1,
            _ => out.push((from, to, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_matrix_shape_and_access() {
        let mut m = CompMatrix::new(3);
        assert_eq!(m.samples(), 0);
        m.push_sample(&[1, 2, 3]);
        m.push_sample(&[4, 0, 2]);
        assert_eq!(m.ranks(), 3);
        assert_eq!(m.samples(), 2);
        assert_eq!(m.get(Rank::new(1), 0), 2);
        assert_eq!(m.get(Rank::new(0), 1), 4);
        assert_eq!(m.sample_row(1), &[4, 0, 2]);
        assert_eq!(m.rank_series(Rank::new(2)), vec![3, 2]);
        assert_eq!(m.peak_series(), vec![3, 4]);
        assert_eq!(m.peak(), 4);
        assert_eq!(m.sample_total(0), 6);
    }

    #[test]
    #[should_panic]
    fn comp_matrix_wrong_arity_panics() {
        CompMatrix::new(2).push_sample(&[1, 2, 3]);
    }

    #[test]
    fn comp_matrix_csv() {
        let m = CompMatrix::from_rows(2, vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(m.to_csv(), "1,3\n2,4\n");
    }

    #[test]
    fn comm_matrix_lookup() {
        let mut c = CommMatrix::with_samples(2);
        c.entries[1] = vec![(0, 1, 5), (2, 0, 3)];
        assert_eq!(c.get(Rank::new(0), Rank::new(1), 1), 5);
        assert_eq!(c.get(Rank::new(1), Rank::new(0), 1), 0);
        assert_eq!(c.sample_total(1), 8);
        assert_eq!(c.sample_total(0), 0);
        assert_eq!(c.total(), 8);
        assert_eq!(c.sample_bytes(1, 64), 512);
    }

    #[test]
    fn migration_pairs_aggregate_and_sort() {
        let prev = vec![Rank(2), Rank(0), Rank(0), Rank(1)];
        let cur = vec![Rank(0), Rank(1), Rank(1), Rank(1)];
        let m = migration_pairs(&prev, &cur);
        assert_eq!(m, vec![(0, 1, 2), (2, 0, 1)]);
        assert!(migration_pairs(&cur, &cur).is_empty());
    }

    #[test]
    #[should_panic]
    fn migration_pairs_length_mismatch_panics() {
        migration_pairs(&[Rank(0)], &[Rank(0), Rank(1)]);
    }
}
