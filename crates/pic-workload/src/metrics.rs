//! Load-balance metrics derived from workload matrices.
//!
//! These back the paper's utilization / idle-processor analyses:
//! Fig 1b (processors with non-zero particles, ~81 % idle on average),
//! Fig 9 (bin 56.13 % vs element 0.68 % utilization).

use crate::generator::DynamicWorkload;
use crate::matrices::CompMatrix;
use pic_types::stats;

/// Fraction of ranks with at least one particle at a given sample.
pub fn active_fraction_at(m: &CompMatrix, sample: usize) -> f64 {
    let row = m.sample_row(sample);
    if row.is_empty() {
        return 0.0;
    }
    row.iter().filter(|&&c| c > 0).count() as f64 / row.len() as f64
}

/// Per-sample series of [`active_fraction_at`] — Fig 1b's data.
pub fn active_fraction_series(m: &CompMatrix) -> Vec<f64> {
    (0..m.samples()).map(|t| active_fraction_at(m, t)).collect()
}

/// Resource Utilization as the paper defines it (§II-A / Fig 9): "the
/// number of processors having at least one or more particles **on
/// average** during the simulation", normalized by the rank count — i.e.
/// the time-averaged active fraction. (The paper's Fig 9 values — 584 of
/// 1044 ranks = 56.13 % for a bin count that eventually exceeds 1044 —
/// only make sense under the time-averaged reading.)
pub fn resource_utilization(m: &CompMatrix) -> f64 {
    let series = active_fraction_series(m);
    if series.is_empty() {
        return 0.0;
    }
    stats::mean(&series)
}

/// Fraction of ranks holding at least one particle at *some* sample — the
/// stricter "ever touched" utilization (complement of Fig 1a's white
/// patches).
pub fn ever_active_fraction(m: &CompMatrix) -> f64 {
    if m.ranks() == 0 || m.samples() == 0 {
        return 0.0;
    }
    let mut ever = vec![false; m.ranks()];
    for t in 0..m.samples() {
        for (r, &c) in m.sample_row(t).iter().enumerate() {
            if c > 0 {
                ever[r] = true;
            }
        }
    }
    ever.iter().filter(|&&e| e).count() as f64 / m.ranks() as f64
}

/// Average number of active ranks (Fig 9's absolute count, e.g. "584
/// processors out of 1044").
pub fn active_rank_count(m: &CompMatrix) -> usize {
    (resource_utilization(m) * m.ranks() as f64).round() as usize
}

/// Average fraction of ranks idle (zero particles) over the run — the
/// paper's "81 % of processors remained idle" statistic.
pub fn mean_idle_fraction(m: &CompMatrix) -> f64 {
    let series = active_fraction_series(m);
    if series.is_empty() {
        return 0.0;
    }
    1.0 - stats::mean(&series)
}

/// Load-imbalance factor (max / mean over ranks) per sample.
pub fn imbalance_series(m: &CompMatrix) -> Vec<f64> {
    (0..m.samples())
        .map(|t| {
            let row: Vec<f64> = m.sample_row(t).iter().map(|&c| c as f64).collect();
            stats::imbalance_factor(&row)
        })
        .collect()
}

/// Summary of a generated workload for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Processor count.
    pub ranks: usize,
    /// Samples analysed.
    pub samples: usize,
    /// Peak real particles on any rank at any sample.
    pub peak_workload: u32,
    /// Resource utilization in `[0, 1]`.
    pub resource_utilization: f64,
    /// Mean idle fraction in `[0, 1]`.
    pub mean_idle_fraction: f64,
    /// Mean imbalance factor over samples.
    pub mean_imbalance: f64,
    /// Total migrated particles.
    pub total_migrations: u64,
    /// Maximum bin count (bin-based only).
    pub max_bins: Option<usize>,
}

/// Compute the full summary of a workload.
pub fn summarize(w: &DynamicWorkload) -> WorkloadSummary {
    WorkloadSummary {
        ranks: w.ranks,
        samples: w.samples(),
        peak_workload: w.peak_workload(),
        resource_utilization: resource_utilization(&w.real),
        mean_idle_fraction: mean_idle_fraction(&w.real),
        mean_imbalance: stats::mean(&imbalance_series(&w.real)),
        total_migrations: w.comm.total(),
        max_bins: w.max_bin_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompMatrix {
        // 4 ranks, 3 samples.
        CompMatrix::from_rows(
            4,
            vec![
                vec![10, 0, 0, 0], // only rank 0 active
                vec![5, 5, 0, 0],  // ranks 0, 1 active
                vec![0, 4, 0, 6],  // ranks 1, 3 active
            ],
        )
    }

    #[test]
    fn active_fractions() {
        let m = matrix();
        assert_eq!(active_fraction_at(&m, 0), 0.25);
        assert_eq!(active_fraction_at(&m, 1), 0.5);
        assert_eq!(active_fraction_series(&m), vec![0.25, 0.5, 0.5]);
    }

    #[test]
    fn utilization_is_time_averaged() {
        let m = matrix();
        // active fractions per sample: 0.25, 0.5, 0.5
        let expect = (0.25 + 0.5 + 0.5) / 3.0;
        assert!((resource_utilization(&m) - expect).abs() < 1e-12);
        // 4 ranks x ~0.4167 -> rounds to 2 average-active ranks
        assert_eq!(active_rank_count(&m), 2);
        // ranks 0, 1, 3 are active at some point; rank 2 never.
        assert_eq!(ever_active_fraction(&m), 0.75);
    }

    #[test]
    fn idle_fraction_is_one_minus_mean_active() {
        let m = matrix();
        let expect = 1.0 - (0.25 + 0.5 + 0.5) / 3.0;
        assert!((mean_idle_fraction(&m) - expect).abs() < 1e-12);
    }

    #[test]
    fn imbalance_series_values() {
        let m = matrix();
        let s = imbalance_series(&m);
        // sample 0: max 10, mean 2.5 → 4.0
        assert!((s[0] - 4.0).abs() < 1e-12);
        // sample 1: max 5, mean 2.5 → 2.0
        assert!((s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_metrics() {
        let m = CompMatrix::new(4);
        assert_eq!(resource_utilization(&m), 0.0);
        assert_eq!(ever_active_fraction(&m), 0.0);
        assert_eq!(mean_idle_fraction(&m), 0.0);
        assert!(imbalance_series(&m).is_empty());
    }

    #[test]
    fn perfectly_balanced_matrix() {
        let m = CompMatrix::from_rows(2, vec![vec![5, 5]]);
        assert_eq!(resource_utilization(&m), 1.0);
        assert_eq!(mean_idle_fraction(&m), 0.0);
        assert_eq!(imbalance_series(&m), vec![1.0]);
    }
}
