//! # pic-workload
//!
//! The **Dynamic Workload Generator** (paper §II-A) — the primary
//! contribution of the reproduced paper.
//!
//! Given a particle trace and a configuration (processor count, mapping
//! algorithm, grid, projection filter), the generator *mimics the mapping
//! algorithm's logic* over the trace to synthesize, without running the
//! application:
//!
//! * the **computation matrix** `P_comp[rank][sample]` — real and ghost
//!   particles residing on every rank at every sample;
//! * the **communication matrix** `P_comm[from][to][sample]` (stored
//!   sparsely) — particles migrating between rank pairs between
//!   consecutive samples;
//! * per-sample **bin counts** for the bin-based mapping (Figs 5/6/10a).
//!
//! Because particle movement is independent of the processor count, one
//! trace serves any target `R` — the basis of the paper's scalability
//! studies. Sample processing is embarrassingly parallel and runs on all
//! cores via rayon.
//!
//! The [`reduce`] module adds SimPoint-style reduced replay: given a
//! [`reduce::ReductionPlan`] (cluster representatives + per-sample
//! assignment), [`reduce::generate_reduced`] replays only the
//! representatives and reconstructs the full workload series by cluster
//! broadcast — bit-identical to the full replay under the identity plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm_stats;
pub mod generator;
pub mod heatmap;
pub mod matrices;
pub mod metrics;
pub mod reduce;
pub mod soa;
pub mod sweep;

pub use generator::{
    generate_streaming, generate_streaming_with_stats, DynamicWorkload, IngestStats, WorkloadConfig,
};
pub use matrices::{migration_pairs, CommMatrix, CompMatrix};
pub use reduce::{
    generate_reduced, generate_reduced_with_stats, peak_load_series, peak_rel_error, sweep_reduced,
    sweep_reduced_with_stats, ReduceStats, ReductionPlan,
};
pub use soa::SoAPositions;
pub use sweep::{
    mesh_fingerprint, sweep_configs, sweep_streaming, sweep_with_cache, sweep_with_stats,
    AssignmentCache, AssignmentCacheStats, AssignmentKey, SampleAssignment, SweepPoint, SweepStats,
};
