//! SimPoint-style reduced replay: weighted representative reconstruction.
//!
//! A long trace's samples cluster into a handful of *phases* (feature
//! vectors from `pic-trace::features`, clustered by
//! `pic-models::kmeans`). Replaying one representative per phase through
//! the Dynamic Workload Generator and broadcasting its outcome to every
//! member of its cluster reconstructs the full-trace workload series at a
//! fraction of the replay cost — the paper-scale regime where a trace has
//! thousands of samples but only a few distinct spatial regimes.
//!
//! The contract, enforced by proptests: with `K = T` (every sample its own
//! representative) the reconstruction is **bit-identical** to
//! [`generator::generate_reference`] — the reduced path reuses the exact
//! per-sample kernel (`generator::process_sample`), so the only error a
//! real reduction introduces is the phase approximation itself, which the
//! `pic-analysis` error-budget gate measures on holdout samples.
//!
//! Communication is reconstructed per representative from its *immediate
//! predecessor* in the trace: `comm[r] = migration_pairs(owners[s_r − 1],
//! owners[s_r])` (empty when the representative is sample 0). For strided
//! sweep members the same one-step migration stands in for the strided
//! interval — a documented approximation, exact at stride 1 and `K = T`.

use crate::generator::{self, DynamicWorkload, WorkloadConfig};
use crate::matrices::{migration_pairs, CommMatrix, CompMatrix};
use crate::sweep::{self, SweepPoint};
use pic_grid::ElementMesh;
use pic_mapping::ParticleMapper;
use pic_trace::ParticleTrace;
use pic_types::{PicError, Rank, Result};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A validated reduction: which samples to replay and how to broadcast
/// their outcomes back over the full trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionPlan {
    /// Sample count `T` of the trace the plan was built for.
    pub total_samples: usize,
    /// Trace sample index of each representative (distinct; one per
    /// cluster).
    pub representatives: Vec<usize>,
    /// For every trace sample, the representative slot standing in for it
    /// (`assignment[t] < representatives.len()`).
    pub assignment: Vec<usize>,
    /// Cluster population per representative slot (`weights[r]` counts the
    /// samples assigned to slot `r`; sums to `total_samples`).
    pub weights: Vec<usize>,
}

impl ReductionPlan {
    /// Build a plan from representatives and a per-sample assignment,
    /// deriving the weights. Fails on any inconsistency (see
    /// [`ReductionPlan::validate`]).
    pub fn new(
        total_samples: usize,
        representatives: Vec<usize>,
        assignment: Vec<usize>,
    ) -> Result<ReductionPlan> {
        let mut weights = vec![0usize; representatives.len()];
        for &r in &assignment {
            if r < weights.len() {
                weights[r] += 1;
            }
        }
        let plan = ReductionPlan {
            total_samples,
            representatives,
            assignment,
            weights,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// The identity plan: every sample its own representative, weight 1.
    /// Reduced replay under this plan is bit-identical to the full replay.
    pub fn identity(total_samples: usize) -> ReductionPlan {
        ReductionPlan {
            total_samples,
            representatives: (0..total_samples).collect(),
            assignment: (0..total_samples).collect(),
            weights: vec![1; total_samples],
        }
    }

    /// Number of representatives `K`.
    pub fn k(&self) -> usize {
        self.representatives.len()
    }

    /// Check internal consistency: arities match, representative indices
    /// are distinct and in range, every assignment points at a live slot,
    /// each representative is assigned to its own slot, and the weights
    /// are the assignment's slot populations.
    pub fn validate(&self) -> Result<()> {
        let k = self.representatives.len();
        if self.assignment.len() != self.total_samples {
            return Err(PicError::config(format!(
                "reduction assignment covers {} samples, trace has {}",
                self.assignment.len(),
                self.total_samples
            )));
        }
        if self.weights.len() != k {
            return Err(PicError::config(format!(
                "reduction has {} weights for {k} representatives",
                self.weights.len()
            )));
        }
        if self.total_samples > 0 && k == 0 {
            return Err(PicError::config(
                "reduction of a nonempty trace needs at least one representative",
            ));
        }
        let mut seen = vec![false; self.total_samples];
        for (slot, &s) in self.representatives.iter().enumerate() {
            if s >= self.total_samples {
                return Err(PicError::config(format!(
                    "representative {slot} is sample {s}, trace has {} samples",
                    self.total_samples
                )));
            }
            if std::mem::replace(&mut seen[s], true) {
                return Err(PicError::config(format!(
                    "sample {s} appears as more than one representative"
                )));
            }
            if self.assignment[s] != slot {
                return Err(PicError::config(format!(
                    "representative sample {s} is assigned to slot {} instead of its own slot {slot}",
                    self.assignment[s]
                )));
            }
        }
        let mut counts = vec![0usize; k];
        for (t, &r) in self.assignment.iter().enumerate() {
            if r >= k {
                return Err(PicError::config(format!(
                    "sample {t} assigned to slot {r}, plan has {k} representatives"
                )));
            }
            counts[r] += 1;
        }
        if counts != self.weights {
            return Err(PicError::config(format!(
                "reduction weights {:?} disagree with assignment populations {:?}",
                self.weights, counts
            )));
        }
        Ok(())
    }

    /// Approximate resident bytes, for registry budget accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.representatives.capacity()
                + self.assignment.capacity()
                + self.weights.capacity())
                * std::mem::size_of::<usize>()
    }

    /// Samples the reduced replay runs the full kernel on (the
    /// representatives) plus the assignment-only predecessor passes it
    /// needs for communication — the replay cost in sample units.
    pub fn replay_cost_samples(&self) -> usize {
        self.representatives.len() + self.owner_only_predecessors().len()
    }

    /// Predecessor samples (`s_r − 1`) that are not representatives
    /// themselves: these need an assignment-only pass for the migration
    /// diff. Sorted ascending.
    fn owner_only_predecessors(&self) -> Vec<usize> {
        let mut is_rep = vec![false; self.total_samples];
        for &s in &self.representatives {
            is_rep[s] = true;
        }
        let mut preds: Vec<usize> = self
            .representatives
            .iter()
            .filter_map(|&s| s.checked_sub(1))
            .filter(|&p| !is_rep[p])
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }
}

/// Replay accounting from one reduced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceStats {
    /// Trace sample count `T`.
    pub total_samples: usize,
    /// Representatives replayed through the full kernel.
    pub representatives: usize,
    /// Additional assignment-only passes for predecessor ownership.
    pub owner_only_samples: usize,
}

impl ReduceStats {
    /// Full-kernel samples avoided relative to a complete replay (the
    /// arithmetic speedup bound, ignoring the cheaper owner-only passes).
    pub fn reduction_factor(&self) -> f64 {
        self.total_samples as f64 / self.representatives.max(1) as f64
    }
}

/// Ownership snapshot of one sample: the assignment half of the kernel
/// only (no ghost counting, no histogramming) — what a predecessor
/// contributes to the migration diff.
fn owners_only(positions: &[pic_types::Vec3], mapper: &dyn ParticleMapper) -> Vec<Rank> {
    let soa = crate::soa::SoAPositions::from_positions(positions);
    let outcome = if mapper.supports_soa() {
        mapper.assign_soa(soa.xs(), soa.ys(), soa.zs())
    } else {
        mapper.assign(positions)
    };
    outcome.ranks
}

/// [`generate_reduced`], additionally returning the replay accounting.
pub fn generate_reduced_with_stats(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
    plan: &ReductionPlan,
) -> Result<(DynamicWorkload, ReduceStats)> {
    plan.validate()?;
    if plan.total_samples != trace.sample_count() {
        return Err(PicError::config(format!(
            "reduction plan covers {} samples, trace has {}",
            plan.total_samples,
            trace.sample_count()
        )));
    }
    let mapper = generator::build_mapper(cfg, mesh)?;
    let mapper_ref: &dyn ParticleMapper = mapper.as_ref();

    // Full kernel on the representatives, in parallel.
    let outcomes: Vec<generator::SampleOutcome> = pic_types::pool::install(|| {
        plan.representatives
            .par_iter()
            .map(|&s| generator::process_sample(trace.positions_at(s), mapper_ref, cfg))
            .collect()
    });

    // Assignment-only passes for predecessors that are not representatives.
    let preds = plan.owner_only_predecessors();
    let pred_owners: Vec<Vec<Rank>> = pic_types::pool::install(|| {
        preds
            .par_iter()
            .map(|&s| owners_only(trace.positions_at(s), mapper_ref))
            .collect()
    });
    let pred_map: HashMap<usize, &Vec<Rank>> = preds.iter().copied().zip(&pred_owners).collect();
    let rep_slot: HashMap<usize, usize> = plan
        .representatives
        .iter()
        .enumerate()
        .map(|(slot, &s)| (s, slot))
        .collect();

    // Per-representative migration diff against its immediate predecessor.
    let comm_rep: Vec<Vec<(u32, u32, u32)>> = plan
        .representatives
        .iter()
        .enumerate()
        .map(|(slot, &s)| match s.checked_sub(1) {
            None => Vec::new(),
            Some(p) => {
                let prev = match rep_slot.get(&p) {
                    Some(&ps) => &outcomes[ps].owners,
                    None => pred_map[&p],
                };
                migration_pairs(prev, &outcomes[slot].owners)
            }
        })
        .collect();

    // Broadcast representative outcomes over the full series.
    let mut real = CompMatrix::new(cfg.ranks);
    let mut ghost_recv = CompMatrix::new(cfg.ranks);
    let mut ghost_sent = CompMatrix::new(cfg.ranks);
    let mut bin_counts = Vec::with_capacity(plan.total_samples);
    let mut comm_entries = Vec::with_capacity(plan.total_samples);
    for (t, &r) in plan.assignment.iter().enumerate() {
        let o = &outcomes[r];
        real.push_sample(&o.real);
        ghost_recv.push_sample(&o.ghost_recv);
        ghost_sent.push_sample(&o.ghost_sent);
        bin_counts.push(o.bin_count);
        comm_entries.push(if t == 0 {
            Vec::new()
        } else {
            comm_rep[r].clone()
        });
    }
    let stats = ReduceStats {
        total_samples: plan.total_samples,
        representatives: plan.representatives.len(),
        owner_only_samples: preds.len(),
    };
    Ok((
        DynamicWorkload {
            ranks: cfg.ranks,
            iterations: trace.iterations(),
            real,
            ghost_recv,
            ghost_sent,
            comm: CommMatrix {
                entries: comm_entries,
            },
            bin_counts,
        },
        stats,
    ))
}

/// Reduced-replay counterpart of [`generator::generate`]: replay only the
/// plan's representatives (plus assignment-only predecessor passes for
/// communication) and reconstruct the full `T`-sample workload by cluster
/// broadcast. Bit-identical to the full replay under
/// [`ReductionPlan::identity`].
pub fn generate_reduced(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
    plan: &ReductionPlan,
) -> Result<DynamicWorkload> {
    generate_reduced_with_stats(trace, cfg, mesh, plan).map(|(w, _)| w)
}

/// [`sweep_reduced`], additionally returning the replay accounting
/// (summed across assignment groups).
pub fn sweep_reduced_with_stats(
    trace: &ParticleTrace,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
    plan: &ReductionPlan,
) -> Result<(Vec<DynamicWorkload>, ReduceStats)> {
    plan.validate()?;
    if plan.total_samples != trace.sample_count() {
        return Err(PicError::config(format!(
            "reduction plan covers {} samples, trace has {}",
            plan.total_samples,
            trace.sample_count()
        )));
    }
    let sweep_plan = sweep::build_plan(points, mesh)?;
    let k = plan.k();
    let groups = sweep_plan.groups.len();

    // Full group kernel (assignment + every ghost radius slot) on the
    // representatives of every group, flattened for parallelism.
    let outcomes: Vec<sweep::GroupSampleOutcome> = pic_types::pool::install(|| {
        (0..groups * k)
            .into_par_iter()
            .map(|i| {
                let (g, r) = (i / k.max(1), i % k.max(1));
                sweep::process_group_sample(
                    trace.positions_at(plan.representatives[r]),
                    &sweep_plan.groups[g],
                )
            })
            .collect()
    });

    let preds = plan.owner_only_predecessors();
    let pred_owners: Vec<Vec<Rank>> = pic_types::pool::install(|| {
        (0..groups * preds.len())
            .into_par_iter()
            .map(|i| {
                let (g, p) = (i / preds.len().max(1), i % preds.len().max(1));
                owners_only(
                    trace.positions_at(preds[p]),
                    sweep_plan.groups[g].mapper.as_ref(),
                )
            })
            .collect()
    });
    let pred_pos: HashMap<usize, usize> = preds.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let rep_slot: HashMap<usize, usize> = plan
        .representatives
        .iter()
        .enumerate()
        .map(|(slot, &s)| (s, slot))
        .collect();

    let comm_rep: Vec<Vec<Vec<(u32, u32, u32)>>> = (0..groups)
        .map(|g| {
            let span = &outcomes[g * k..(g + 1) * k];
            plan.representatives
                .iter()
                .enumerate()
                .map(|(slot, &s)| match s.checked_sub(1) {
                    None => Vec::new(),
                    Some(p) => {
                        let prev = match rep_slot.get(&p) {
                            Some(&ps) => &span[ps].assignment.owners,
                            None => &pred_owners[g * preds.len() + pred_pos[&p]],
                        };
                        migration_pairs(prev, &span[slot].assignment.owners)
                    }
                })
                .collect()
        })
        .collect();

    let iterations = trace.iterations();
    let workloads: Vec<DynamicWorkload> = sweep_plan
        .members
        .iter()
        .map(|m| {
            let group = &sweep_plan.groups[m.group];
            let span = &outcomes[m.group * k..(m.group + 1) * k];
            let zeros = vec![0u32; group.ranks];
            let retained: Vec<usize> = (0..plan.total_samples).step_by(m.stride).collect();
            let mut real = CompMatrix::new(group.ranks);
            let mut ghost_recv = CompMatrix::new(group.ranks);
            let mut ghost_sent = CompMatrix::new(group.ranks);
            let mut bin_counts = Vec::with_capacity(retained.len());
            let mut iters = Vec::with_capacity(retained.len());
            let mut comm_entries = Vec::with_capacity(retained.len());
            for (pos, &t) in retained.iter().enumerate() {
                let r = plan.assignment[t];
                let o = &span[r];
                real.push_sample(&o.assignment.real);
                match m.ghost_slot {
                    Some(slot) => {
                        ghost_recv.push_sample(&o.ghosts[slot].0);
                        ghost_sent.push_sample(&o.ghosts[slot].1);
                    }
                    None => {
                        ghost_recv.push_sample(&zeros);
                        ghost_sent.push_sample(&zeros);
                    }
                }
                bin_counts.push(o.assignment.bin_count);
                iters.push(iterations[t]);
                // One-step migration proxy: exact at stride 1; for larger
                // strides it stands in for the strided interval.
                comm_entries.push(if pos == 0 {
                    Vec::new()
                } else {
                    comm_rep[m.group][r].clone()
                });
            }
            DynamicWorkload {
                ranks: group.ranks,
                iterations: iters,
                real,
                ghost_recv,
                ghost_sent,
                comm: CommMatrix {
                    entries: comm_entries,
                },
                bin_counts,
            }
        })
        .collect();
    let stats = ReduceStats {
        total_samples: plan.total_samples,
        representatives: groups * k,
        owner_only_samples: groups * preds.len(),
    };
    Ok((workloads, stats))
}

/// Reduced-replay counterpart of [`sweep::sweep`]: one representative
/// replay per assignment group serves every sweep point of that group,
/// with per-point strided reconstruction. At stride 1 under the identity
/// plan the output is bit-identical to [`sweep::sweep`].
pub fn sweep_reduced(
    trace: &ParticleTrace,
    points: &[SweepPoint],
    mesh: Option<&ElementMesh>,
    plan: &ReductionPlan,
) -> Result<Vec<DynamicWorkload>> {
    sweep_reduced_with_stats(trace, points, mesh, plan).map(|(w, _)| w)
}

/// Per-sample peak load: the maximum over ranks of real + received-ghost
/// particles — the quantity the paper's critical-path predictions rest
/// on, and the metric the reduction error gate budgets.
pub fn peak_load_series(w: &DynamicWorkload) -> Vec<u64> {
    (0..w.samples())
        .map(|t| {
            w.real
                .sample_row(t)
                .iter()
                .zip(w.ghost_recv.sample_row(t))
                .map(|(&r, &g)| r as u64 + g as u64)
                .max()
                .unwrap_or(0)
        })
        .collect()
}

/// Relative error of the *global* peak load between a predicted
/// (reduced-replay) workload and the exact one — the headline
/// reduced-replay error metric. Zero when both series are empty.
pub fn peak_rel_error(predicted: &DynamicWorkload, actual: &DynamicWorkload) -> f64 {
    let p = peak_load_series(predicted).into_iter().max().unwrap_or(0);
    let a = peak_load_series(actual).into_iter().max().unwrap_or(0);
    if a == 0 {
        return if p == 0 { 0.0 } else { f64::INFINITY };
    }
    (p as f64 - a as f64).abs() / a as f64
}

/// Exact per-rank loads (real + received ghosts) of selected samples,
/// replayed through the full per-sample kernel. The holdout side of the
/// `pic-analysis` error-budget gate: compare these against the reduced
/// prediction without paying for a full-trace replay.
pub fn exact_sample_loads(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
    samples: &[usize],
) -> Result<Vec<Vec<u64>>> {
    for &s in samples {
        if s >= trace.sample_count() {
            return Err(PicError::config(format!(
                "holdout sample {s} out of range, trace has {} samples",
                trace.sample_count()
            )));
        }
    }
    let mapper = generator::build_mapper(cfg, mesh)?;
    let mapper_ref: &dyn ParticleMapper = mapper.as_ref();
    Ok(pic_types::pool::install(|| {
        samples
            .par_iter()
            .map(|&s| {
                let o = generator::process_sample(trace.positions_at(s), mapper_ref, cfg);
                o.real
                    .iter()
                    .zip(&o.ghost_recv)
                    .map(|(&r, &g)| r as u64 + g as u64)
                    .collect()
            })
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_mapping::MappingAlgorithm;
    use pic_trace::TraceMeta;
    use pic_types::rng::SplitMix64;
    use pic_types::{Aabb, Vec3};

    fn make_trace(np: usize, t: usize, seed: u64) -> ParticleTrace {
        let mut rng = SplitMix64::new(seed);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "reduce");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let scale = 0.05 + 0.04 * k as f64;
            let drift = Vec3::new(0.02 * k as f64, 0.0, 0.0);
            let positions: Vec<Vec3> = dirs
                .iter()
                .map(|d| (Vec3::splat(0.5) + *d * scale + drift).clamp(Vec3::ZERO, Vec3::ONE))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    #[test]
    fn identity_plan_matches_full_replay() {
        let tr = make_trace(300, 6, 1);
        let cfg = WorkloadConfig::new(12, MappingAlgorithm::BinBased, 0.05);
        let plan = ReductionPlan::identity(tr.sample_count());
        let (reduced, stats) = generate_reduced_with_stats(&tr, &cfg, None, &plan).unwrap();
        let full = generator::generate_reference(&tr, &cfg, None).unwrap();
        assert_eq!(reduced, full);
        assert_eq!(stats.representatives, 6);
        assert_eq!(stats.owner_only_samples, 0);
    }

    #[test]
    fn two_cluster_plan_broadcasts_outcomes() {
        // Samples 0..3 are near-identical, 3..6 near-identical: a 2-rep
        // plan reconstructs each half from its representative.
        let tr = make_trace(200, 6, 2);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        let plan = ReductionPlan::new(6, vec![1, 4], vec![0, 0, 0, 1, 1, 1]).unwrap();
        assert_eq!(plan.weights, vec![3, 3]);
        let (reduced, stats) = generate_reduced_with_stats(&tr, &cfg, None, &plan).unwrap();
        assert_eq!(reduced.samples(), 6);
        // every sample of a cluster shows its representative's counts
        let full = generator::generate_reference(&tr, &cfg, None).unwrap();
        for t in [0usize, 1, 2] {
            assert_eq!(reduced.real.sample_row(t), full.real.sample_row(1));
        }
        for t in [3usize, 4, 5] {
            assert_eq!(reduced.real.sample_row(t), full.real.sample_row(4));
        }
        // comm: rep 1's diff is against sample 0 (owner-only pass)
        assert_eq!(stats.owner_only_samples, 2);
        assert!(reduced.comm.entries[0].is_empty());
        assert_eq!(reduced.comm.entries[1], full.comm.entries[1]);
    }

    #[test]
    fn plan_validation_rejects_inconsistencies() {
        // assignment arity
        assert!(ReductionPlan::new(3, vec![0], vec![0, 0]).is_err());
        // representative out of range
        assert!(ReductionPlan::new(2, vec![5], vec![0, 0]).is_err());
        // duplicate representative
        assert!(ReductionPlan::new(2, vec![0, 0], vec![0, 1]).is_err());
        // representative not self-assigned
        assert!(ReductionPlan::new(2, vec![0, 1], vec![1, 0]).is_err());
        // assignment points at a dead slot
        assert!(ReductionPlan::new(2, vec![0], vec![0, 7]).is_err());
        // tampered weights
        let mut plan = ReductionPlan::identity(3);
        plan.weights[0] = 2;
        assert!(plan.validate().is_err());
        // empty trace: the empty plan is fine
        assert!(ReductionPlan::identity(0).validate().is_ok());
    }

    #[test]
    fn plan_size_mismatch_with_trace_fails() {
        let tr = make_trace(50, 4, 3);
        let cfg = WorkloadConfig::new(4, MappingAlgorithm::BinBased, 0.05);
        let plan = ReductionPlan::identity(3);
        assert!(generate_reduced(&tr, &cfg, None, &plan).is_err());
    }

    #[test]
    fn sweep_reduced_identity_matches_sweep() {
        let tr = make_trace(250, 5, 4);
        let points = vec![
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05)),
            SweepPoint::new(WorkloadConfig::new(16, MappingAlgorithm::BinBased, 0.05)),
            SweepPoint::new(WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.02)),
        ];
        let plan = ReductionPlan::identity(tr.sample_count());
        let reduced = sweep_reduced(&tr, &points, None, &plan).unwrap();
        let full = sweep::sweep(&tr, &points, None).unwrap();
        assert_eq!(reduced, full);
    }

    #[test]
    fn peak_series_and_error_metrics() {
        let tr = make_trace(400, 5, 5);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        let full = generator::generate_reference(&tr, &cfg, None).unwrap();
        let series = peak_load_series(&full);
        assert_eq!(series.len(), 5);
        assert!(series.iter().all(|&p| p > 0));
        assert_eq!(peak_rel_error(&full, &full), 0.0);
        // exact loads match the full replay at every holdout sample
        let holdout = [0usize, 2, 4];
        let loads = exact_sample_loads(&tr, &cfg, None, &holdout).unwrap();
        for (h, &t) in holdout.iter().enumerate() {
            let expect: Vec<u64> = full
                .real
                .sample_row(t)
                .iter()
                .zip(full.ghost_recv.sample_row(t))
                .map(|(&r, &g)| r as u64 + g as u64)
                .collect();
            assert_eq!(loads[h], expect);
            assert_eq!(*loads[h].iter().max().unwrap(), series[t]);
        }
        // out-of-range holdout is a config error
        assert!(exact_sample_loads(&tr, &cfg, None, &[99]).is_err());
    }
}
