//! Structure-of-arrays particle storage and the matrixized ghost kernels
//! (the POLAR-PIC / Matrix-PIC recipe applied to this repo's hot path).
//!
//! The scalar ghost kernel walks particles one at a time: per particle it
//! enumerates candidate regions through the cell grid, dedups them with an
//! epoch stamp, and runs one sphere–box distance test per candidate — a
//! pointer-chasing loop the compiler cannot vectorize. This module
//! restructures the same computation into blocked matrix form:
//!
//! 1. **SoA layout.** [`SoAPositions`] stores x/y/z in separate lane-padded
//!    arrays; conversion from the AoS `Vec3` trace sample is a bit copy.
//! 2. **Signature grouping.** Particles are keyed by the packed cell range
//!    of their query box ([`pic_mapping::RegionIndex::query_cell_key`]).
//!    Equal keys walk identical grid cells, so sorting a span by key turns
//!    it into runs that share one candidate enumeration.
//! 3. **Matrix sweep.** Per run, candidate slots are gathered once and the
//!    group's coordinates are gathered into contiguous blocks; the kernel
//!    then loops *candidate-major* over fixed-width `[f64; LANE]` lanes,
//!    accumulating branch-free `d² ≤ r²` hit masks. Amortization is
//!    multiplicative: the candidate walk is paid once per group instead of
//!    once per particle, and the distance test vectorizes.
//! 4. **Padded merge.** Parallel spans accumulate into cache-line-padded
//!    per-worker histograms ([`pic_types::CachePadded`], capacities rounded
//!    to line multiples) merged by commutative `u32` addition.
//!
//! Outputs are **bit-identical** to the scalar kernels and to the
//! sequential `generate_reference` oracle: every particle sees exactly the
//! candidate set, the same `f64` clamp/distance expressions, and integer
//! counts are order-independent. Particles whose query key is `None`
//! (empty index, NaN/out-of-bounds query boxes) are skipped exactly where
//! the scalar kernel's early returns fire. Lane padding uses NaN
//! coordinates, whose distance is NaN and therefore never satisfies
//! `d² ≤ r²`, plus a home id of `u32::MAX` that belongs to no rank.

use crate::generator::GHOST_CHUNK;
use pic_mapping::{RegionIndex, RegionQueryScratch};
use pic_types::{CachePadded, Rank, Vec3};
use rayon::prelude::*;

/// Fixed lane width of the matrix kernels. Eight `f64`s span two AVX2 or
/// one AVX-512 register; on NEON the compiler splits each lane op into
/// four 2-wide µops, which still pipelines cleanly.
pub const LANE: usize = 8;

/// Histogram capacities are rounded up to this many `u32`s (one 64-byte
/// cache line) so per-worker buffers never end mid-line.
const LINE_U32: usize = 16;

/// Per-rank `(recv, sent)` accumulators for one worker span.
type RecvSent = (Vec<u32>, Vec<u32>);

/// Structure-of-arrays particle positions: separate x/y/z coordinate
/// arrays, each padded to a [`LANE`] multiple with NaN so kernels can read
/// full lanes without bounds branches (NaN lanes can never produce a hit).
///
/// Conversion from and to the AoS `Vec3` form is a pure bit copy — NaNs
/// (payloads included), signed zeros, and subnormals round-trip exactly;
/// the property tests pin this down.
#[derive(Debug, Clone, Default)]
pub struct SoAPositions {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    len: usize,
}

impl SoAPositions {
    /// Transpose an AoS position slice into lane-padded SoA storage.
    pub fn from_positions(positions: &[Vec3]) -> SoAPositions {
        let len = positions.len();
        let padded = len.next_multiple_of(LANE);
        let mut xs = Vec::with_capacity(padded);
        let mut ys = Vec::with_capacity(padded);
        let mut zs = Vec::with_capacity(padded);
        for p in positions {
            xs.push(p.x);
            ys.push(p.y);
            zs.push(p.z);
        }
        xs.resize(padded, f64::NAN);
        ys.resize(padded, f64::NAN);
        zs.resize(padded, f64::NAN);
        SoAPositions { xs, ys, zs, len }
    }

    /// Number of real (unpadded) particles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no particles are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// X coordinates of the real particles (padding excluded).
    pub fn xs(&self) -> &[f64] {
        &self.xs[..self.len]
    }

    /// Y coordinates of the real particles (padding excluded).
    pub fn ys(&self) -> &[f64] {
        &self.ys[..self.len]
    }

    /// Z coordinates of the real particles (padding excluded).
    pub fn zs(&self) -> &[f64] {
        &self.zs[..self.len]
    }

    /// Reconstitute particle `i` (panics past [`len`](Self::len)).
    #[inline]
    pub fn get(&self, i: usize) -> Vec3 {
        assert!(i < self.len);
        Vec3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// Transpose back to the AoS form; bit-exact inverse of
    /// [`from_positions`](Self::from_positions).
    pub fn to_positions(&self) -> Vec<Vec3> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Reusable per-span working state: the key list, the gathered candidate
/// slots, and the group's coordinate/home/count blocks. Everything is
/// amortized across groups; steady state performs no heap allocation.
#[derive(Default)]
struct SpanScratch {
    keys: Vec<(u64, u32)>,
    slots: Vec<u32>,
    query: RegionQueryScratch,
    gx: Vec<f64>,
    gy: Vec<f64>,
    gz: Vec<f64>,
    ghome: Vec<u32>,
    gcopies: Vec<u32>,
    /// First-inclusion counts, `(radii + 1) × padded_group_len`, last row
    /// is the reject bucket (multi-radius kernel only).
    first: Vec<u32>,
    slot_hits: Vec<u32>,
}

impl SpanScratch {
    /// Gather one group's coordinates and home ranks into lane-padded
    /// blocks; returns the padded length.
    fn gather_group(&mut self, soa: &SoAPositions, owners: &[Rank], group: &[(u64, u32)]) -> usize {
        let padded = group.len().next_multiple_of(LANE);
        self.gx.clear();
        self.gx.resize(padded, f64::NAN);
        self.gy.clear();
        self.gy.resize(padded, f64::NAN);
        self.gz.clear();
        self.gz.resize(padded, f64::NAN);
        self.ghome.clear();
        self.ghome.resize(padded, u32::MAX);
        self.gcopies.clear();
        self.gcopies.resize(padded, 0);
        for (j, &(_, i)) in group.iter().enumerate() {
            let i = i as usize;
            self.gx[j] = soa.xs[i];
            self.gy[j] = soa.ys[i];
            self.gz[j] = soa.zs[i];
            self.ghome[j] = owners[i].index() as u32;
        }
        padded
    }

    /// Key every particle of `lo..hi` by its query's cell-range signature
    /// and sort so equal signatures become contiguous runs. Keyless
    /// particles (the scalar kernel's early-return cases) are dropped.
    fn build_keys(
        &mut self,
        soa: &SoAPositions,
        lo: usize,
        hi: usize,
        index: &RegionIndex,
        radius: f64,
    ) {
        self.keys.clear();
        for i in lo..hi {
            let center = Vec3::new(soa.xs[i], soa.ys[i], soa.zs[i]);
            if let Some(key) = index.query_cell_key(center, radius) {
                self.keys.push((key, i as u32));
            }
        }
        self.keys.sort_unstable();
    }
}

/// The lane kernel: test one candidate box against a gathered group,
/// accumulating per-particle hit counts into `copies` and returning the
/// group's total hits against this candidate.
///
/// Branch-free by construction: the `d² ≤ r²` mask and the home-rank
/// exclusion are `u32` masks combined with `&`, so the inner loop is a
/// straight-line clamp/subtract/fma/compare chain over `[f64; LANE]`
/// blocks that the compiler autovectorizes (verified via the committed
/// `ghost_kernel` speedup in BENCH_DWG.json).
#[inline]
#[allow(clippy::too_many_arguments)] // the lane operands are parallel slices
fn lane_candidate_hits(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    homes: &[u32],
    copies: &mut [u32],
    bmin: Vec3,
    bmax: Vec3,
    target: u32,
    rr: f64,
) -> u32 {
    let mut total = 0u32;
    for (((cx, cy), (cz, ch)), cc) in xs
        .chunks_exact(LANE)
        .zip(ys.chunks_exact(LANE))
        .zip(zs.chunks_exact(LANE).zip(homes.chunks_exact(LANE)))
        .zip(copies.chunks_exact_mut(LANE))
    {
        let mut hit = [0u32; LANE];
        for l in 0..LANE {
            // Exactly `Aabb::distance_sq_to_point`: clamp (max-then-min per
            // component), then the left-to-right dot of the residual.
            let qx = cx[l].max(bmin.x).min(bmax.x);
            let qy = cy[l].max(bmin.y).min(bmax.y);
            let qz = cz[l].max(bmin.z).min(bmax.z);
            let dx = cx[l] - qx;
            let dy = cy[l] - qy;
            let dz = cz[l] - qz;
            let d2 = dx * dx + dy * dy + dz * dz;
            hit[l] = u32::from(d2 <= rr) & u32::from(ch[l] != target);
        }
        for l in 0..LANE {
            cc[l] += hit[l];
            total += hit[l];
        }
    }
    total
}

/// Single-radius grouped kernel over one span; accumulates into `recv` /
/// `sent` (indexed by rank, length ≥ rank count).
#[allow(clippy::too_many_arguments)] // span bounds + kernel inputs + accumulators
fn ghost_span_soa(
    soa: &SoAPositions,
    owners: &[Rank],
    lo: usize,
    hi: usize,
    index: &RegionIndex,
    radius: f64,
    scratch: &mut SpanScratch,
    recv: &mut [u32],
    sent: &mut [u32],
) {
    scratch.build_keys(soa, lo, hi, index, radius);
    let rr = radius * radius;
    let keys = std::mem::take(&mut scratch.keys);
    let mut g0 = 0usize;
    while g0 < keys.len() {
        let key = keys[g0].0;
        let g1 = keys[g0..]
            .iter()
            .position(|&(k, _)| k != key)
            .map_or(keys.len(), |off| g0 + off);
        let group = &keys[g0..g1];
        index.gather_candidate_slots(key, &mut scratch.query, &mut scratch.slots);
        if !scratch.slots.is_empty() {
            scratch.gather_group(soa, owners, group);
            let slots = std::mem::take(&mut scratch.slots);
            for &slot in &slots {
                let b = index.slot_box(slot);
                let target = index.slot_rank(slot).index();
                let hits = lane_candidate_hits(
                    &scratch.gx,
                    &scratch.gy,
                    &scratch.gz,
                    &scratch.ghome,
                    &mut scratch.gcopies,
                    b.min,
                    b.max,
                    target as u32,
                    rr,
                );
                recv[target] += hits;
            }
            scratch.slots = slots;
            for (j, &(_, i)) in group.iter().enumerate() {
                sent[owners[i as usize].index()] += scratch.gcopies[j];
            }
        }
        g0 = g1;
    }
    scratch.keys = keys;
}

/// Split `len` items into `workers` near-equal contiguous spans.
#[inline]
fn span_bounds(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let base = len / workers;
    let rem = len % workers;
    let lo = w * base + w.min(rem);
    (lo, lo + base + usize::from(w < rem))
}

/// Worker count for a sample: the ambient thread budget, capped so spans
/// never shrink below the scalar kernel's chunk granularity.
fn workers_for(len: usize) -> usize {
    rayon::current_num_threads()
        .max(1)
        .min(len.div_ceil(GHOST_CHUNK).max(1))
}

/// SoA ghost counting: the grouped matrix kernel across parallel spans
/// with cache-line-padded per-worker histograms.
///
/// Bit-identical to the scalar
/// [`ghost_counts_chunked`](crate::generator::ghost_counts_chunked) (and
/// hence to the sequential reference): identical per-particle candidate
/// sets, identical `f64` expressions, commutative integer merges.
pub fn ghost_counts_soa(
    soa: &SoAPositions,
    owners: &[Rank],
    index: &RegionIndex,
    radius: f64,
    ranks: usize,
) -> RecvSent {
    let cap = ranks.next_multiple_of(LINE_U32);
    let workers = workers_for(soa.len());
    let run_span = |w: usize, workers: usize| -> CachePadded<RecvSent> {
        let (lo, hi) = span_bounds(soa.len(), workers, w);
        let mut recv = vec![0u32; cap];
        let mut sent = vec![0u32; cap];
        let mut scratch = SpanScratch::default();
        ghost_span_soa(
            soa,
            owners,
            lo,
            hi,
            index,
            radius,
            &mut scratch,
            &mut recv,
            &mut sent,
        );
        CachePadded::new((recv, sent))
    };
    let partials: Vec<CachePadded<RecvSent>> = if workers <= 1 {
        vec![run_span(0, 1)]
    } else {
        (0..workers)
            .into_par_iter()
            .map(|w| run_span(w, workers))
            .collect()
    };
    merge_partials(partials, ranks)
}

/// Elementwise-sum per-worker histogram pairs and trim the line padding.
fn merge_partials(partials: Vec<CachePadded<RecvSent>>, ranks: usize) -> RecvSent {
    let mut recv = vec![0u32; ranks];
    let mut sent = vec![0u32; ranks];
    for p in &partials {
        for (acc, v) in recv.iter_mut().zip(&p.0) {
            *acc += v;
        }
        for (acc, v) in sent.iter_mut().zip(&p.1) {
            *acc += v;
        }
    }
    (recv, sent)
}

/// Multi-radius grouped kernel over one span: first-inclusion counting at
/// the sorted radii (`rr_sorted` ascending) with a suffix pass completing
/// the larger radii — the grouped analog of the scalar sweep kernel.
#[allow(clippy::too_many_arguments)] // span bounds + kernel inputs + accumulators
fn multi_ghost_span_soa(
    soa: &SoAPositions,
    owners: &[Rank],
    lo: usize,
    hi: usize,
    index: &RegionIndex,
    r_max: f64,
    rr_sorted: &[f64],
    scratch: &mut SpanScratch,
    partial: &mut [RecvSent],
) {
    let nr = rr_sorted.len();
    let rr_max = r_max * r_max;
    scratch.build_keys(soa, lo, hi, index, r_max);
    let keys = std::mem::take(&mut scratch.keys);
    let mut g0 = 0usize;
    while g0 < keys.len() {
        let key = keys[g0].0;
        let g1 = keys[g0..]
            .iter()
            .position(|&(k, _)| k != key)
            .map_or(keys.len(), |off| g0 + off);
        let group = &keys[g0..g1];
        index.gather_candidate_slots(key, &mut scratch.query, &mut scratch.slots);
        if !scratch.slots.is_empty() {
            let padded = scratch.gather_group(soa, owners, group);
            // First-inclusion matrix, one row per radius plus a reject row
            // for misses / home hits / NaN padding lanes.
            scratch.first.clear();
            scratch.first.resize((nr + 1) * padded, 0);
            scratch.slot_hits.clear();
            scratch.slot_hits.resize(nr + 1, 0);
            let slots = std::mem::take(&mut scratch.slots);
            for &slot in &slots {
                let b = index.slot_box(slot);
                let target = index.slot_rank(slot).index();
                let t32 = target as u32;
                scratch.slot_hits.iter_mut().for_each(|h| *h = 0);
                for (base, ((cx, cy), (cz, ch))) in scratch
                    .gx
                    .chunks_exact(LANE)
                    .zip(scratch.gy.chunks_exact(LANE))
                    .zip(
                        scratch
                            .gz
                            .chunks_exact(LANE)
                            .zip(scratch.ghome.chunks_exact(LANE)),
                    )
                    .enumerate()
                {
                    for l in 0..LANE {
                        let qx = cx[l].max(b.min.x).min(b.max.x);
                        let qy = cy[l].max(b.min.y).min(b.max.y);
                        let qz = cz[l].max(b.min.z).min(b.max.z);
                        let dx = cx[l] - qx;
                        let dy = cy[l] - qy;
                        let dz = cz[l] - qz;
                        let d2 = dx * dx + dy * dy + dz * dz;
                        // First radius containing d²: the count of sorted
                        // radii it exceeds (identical to the scalar
                        // first-inclusion scan).
                        let mut j = 0usize;
                        for &r in rr_sorted {
                            j += usize::from(d2 > r);
                        }
                        let valid = d2 <= rr_max && ch[l] != t32;
                        let row = if valid { j } else { nr };
                        scratch.first[row * padded + base * LANE + l] += 1;
                        scratch.slot_hits[row] += 1;
                    }
                }
                for (j, &h) in scratch.slot_hits[..nr].iter().enumerate() {
                    partial[j].0[target] += h;
                }
            }
            scratch.slots = slots;
            // Per-particle prefix over the first-inclusion rows completes
            // the sent histograms, exactly like the scalar span kernel.
            for (jg, &(_, i)) in group.iter().enumerate() {
                let home = owners[i as usize].index();
                let mut copies = 0u32;
                for (j, row) in partial.iter_mut().enumerate().take(nr) {
                    copies += scratch.first[j * padded + jg];
                    row.1[home] += copies;
                }
            }
        }
        g0 = g1;
    }
    scratch.keys = keys;
    // Suffix-complete the recv histograms: a region first touched at
    // radius j receives at every radius ≥ j.
    for j in 1..nr {
        let (done, rest) = partial.split_at_mut(j);
        for (a, &v) in rest[0].0.iter_mut().zip(&done[j - 1].0) {
            *a += v;
        }
    }
}

/// SoA multi-radius ghost counting: one candidate pass at `r_max` serves
/// every radius in `rr` (squared radii, arbitrary order; results come back
/// in `rr` order). Bit-identical to the scalar sweep kernel
/// [`multi_ghost_chunked`](crate::sweep::multi_ghost_chunked).
pub fn multi_ghost_soa(
    soa: &SoAPositions,
    owners: &[Rank],
    index: &RegionIndex,
    r_max: f64,
    rr: &[f64],
    ranks: usize,
) -> Vec<RecvSent> {
    let mut order: Vec<usize> = (0..rr.len()).collect();
    order.sort_by(|&a, &b| rr[a].total_cmp(&rr[b]));
    let sorted_rr: Vec<f64> = order.iter().map(|&i| rr[i]).collect();
    let cap = ranks.next_multiple_of(LINE_U32);
    let fresh = || -> Vec<RecvSent> {
        rr.iter()
            .map(|_| (vec![0u32; cap], vec![0u32; cap]))
            .collect()
    };
    let workers = workers_for(soa.len());
    let run_span = |w: usize, workers: usize| -> CachePadded<Vec<RecvSent>> {
        let (lo, hi) = span_bounds(soa.len(), workers, w);
        let mut partial = fresh();
        multi_ghost_span_soa(
            soa,
            owners,
            lo,
            hi,
            index,
            r_max,
            &sorted_rr,
            &mut SpanScratch::default(),
            &mut partial,
        );
        CachePadded::new(partial)
    };
    let partials: Vec<CachePadded<Vec<RecvSent>>> = if workers <= 1 {
        vec![run_span(0, 1)]
    } else {
        (0..workers)
            .into_par_iter()
            .map(|w| run_span(w, workers))
            .collect()
    };
    let mut merged: Vec<RecvSent> = rr
        .iter()
        .map(|_| (vec![0u32; ranks], vec![0u32; ranks]))
        .collect();
    for p in &partials {
        for (acc, part) in merged.iter_mut().zip(p.iter()) {
            for (a, &v) in acc.0.iter_mut().zip(&part.0) {
                *a += v;
            }
            for (a, &v) in acc.1.iter_mut().zip(&part.1) {
                *a += v;
            }
        }
    }
    // Un-permute from ascending order back to the caller's slot order.
    let mut out: Vec<RecvSent> = rr.iter().map(|_| Default::default()).collect();
    for (pos, &slot) in order.iter().enumerate() {
        out[slot] = std::mem::take(&mut merged[pos]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_roundtrip_is_bit_exact_on_special_values() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
            1.5e-308,
            -7.25,
        ];
        let mut positions = Vec::new();
        for (k, &v) in specials.iter().enumerate() {
            positions.push(Vec3::new(v, specials[(k + 1) % specials.len()], -v));
        }
        let soa = SoAPositions::from_positions(&positions);
        assert_eq!(soa.len(), positions.len());
        let back = soa.to_positions();
        for (a, b) in positions.iter().zip(&back) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn padding_is_nan_up_to_lane_multiple() {
        let soa = SoAPositions::from_positions(&[Vec3::ZERO; LANE + 3]);
        assert_eq!(soa.xs.len(), 2 * LANE);
        assert!(soa.xs[LANE + 3..].iter().all(|v| v.is_nan()));
        assert_eq!(soa.xs().len(), LANE + 3);
    }

    #[test]
    fn empty_input_yields_empty_soa() {
        let soa = SoAPositions::from_positions(&[]);
        assert!(soa.is_empty());
        assert!(soa.to_positions().is_empty());
        assert_eq!(soa.xs.len(), 0);
    }
}
