//! The workload generation pipeline (paper Fig 3).
//!
//! `generate` replays a particle trace through the configured mapping
//! algorithm: the *Computation Load Generator* computes each particle's
//! residing rank `R_p` per sample (plus ghost counts from projection-filter
//! overlap), and the *Communication Load Generator* diffs consecutive
//! samples' ownership to count migrating particles.

use crate::matrices::{migration_pairs, CommMatrix, CompMatrix};
use pic_grid::ElementMesh;
use pic_mapping::{
    BinMapper, ElementMapper, HilbertMapper, LoadBalancedMapper, MappingAlgorithm, ParticleMapper,
    RegionIndex, RegionQueryScratch,
};
use pic_trace::ParticleTrace;
use pic_types::{PicError, Rank, Result};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one workload-generation run — the framework's
/// "configuration file" content relevant to the DWG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Target processor count `R` (independent of the trace's origin!).
    pub ranks: usize,
    /// Mapping algorithm to mimic.
    pub mapping: MappingAlgorithm,
    /// Projection filter radius: ghost influence radius and bin-size
    /// threshold.
    pub projection_filter: f64,
    /// Whether to compute ghost-particle matrices (sphere queries are the
    /// dominant cost; skip when only real-particle workload is needed).
    pub compute_ghosts: bool,
}

impl WorkloadConfig {
    /// Convenience constructor with ghosts enabled.
    pub fn new(ranks: usize, mapping: MappingAlgorithm, projection_filter: f64) -> WorkloadConfig {
        WorkloadConfig {
            ranks,
            mapping,
            projection_filter,
            compute_ghosts: true,
        }
    }
}

/// The generator's output: the paper's computation and communication
/// matrices plus bin-count series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicWorkload {
    /// Target processor count.
    pub ranks: usize,
    /// Application iteration of each sample.
    pub iterations: Vec<u64>,
    /// Real particles per rank per sample.
    pub real: CompMatrix,
    /// Ghost particles received per rank per sample (zeros when ghosts are
    /// not computed).
    pub ghost_recv: CompMatrix,
    /// Ghost copies sent per rank per sample.
    pub ghost_sent: CompMatrix,
    /// Real-particle migrations between consecutive samples.
    pub comm: CommMatrix,
    /// Bins generated per sample (`None` for mappings without bins).
    pub bin_counts: Vec<Option<usize>>,
}

impl DynamicWorkload {
    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.iterations.len()
    }

    /// Peak real-particle workload over the whole run (Fig 5's headline
    /// number at a given `R`).
    pub fn peak_workload(&self) -> u32 {
        self.real.peak()
    }

    /// Maximum bin count over the run (Fig 6's cap, when bin-mapped).
    pub fn max_bin_count(&self) -> Option<usize> {
        self.bin_counts.iter().filter_map(|&b| b).max()
    }
}

/// Per-sample intermediate result (shared with the reduced-replay path).
pub(crate) struct SampleOutcome {
    pub(crate) real: Vec<u32>,
    pub(crate) ghost_recv: Vec<u32>,
    pub(crate) ghost_sent: Vec<u32>,
    pub(crate) bin_count: Option<usize>,
    pub(crate) owners: Vec<Rank>,
}

/// Run the Dynamic Workload Generator over a trace.
///
/// Samples are processed in parallel; the result is identical to the
/// sequential replay because each sample's mapping depends only on that
/// sample's positions.
///
/// ```
/// use pic_trace::{ParticleTrace, TraceMeta};
/// use pic_types::{Aabb, Vec3};
/// use pic_workload::{generator, WorkloadConfig};
/// use pic_mapping::MappingAlgorithm;
///
/// // two particles drifting right over two samples
/// let mut trace = ParticleTrace::new(TraceMeta::new(2, 100, Aabb::unit(), "demo"));
/// trace.push_positions(vec![Vec3::new(0.2, 0.5, 0.5), Vec3::new(0.3, 0.5, 0.5)])?;
/// trace.push_positions(vec![Vec3::new(0.7, 0.5, 0.5), Vec3::new(0.8, 0.5, 0.5)])?;
///
/// let cfg = WorkloadConfig::new(4, MappingAlgorithm::BinBased, 0.05);
/// let workload = generator::generate(&trace, &cfg)?;
/// assert_eq!(workload.samples(), 2);
/// assert_eq!(workload.real.sample_total(0), 2); // particles conserved
/// # Ok::<(), pic_types::PicError>(())
/// ```
pub fn generate(trace: &ParticleTrace, cfg: &WorkloadConfig) -> Result<DynamicWorkload> {
    generate_with_mesh(trace, cfg, None)
}

/// Like [`generate`], but with an explicit mesh for element-based and
/// Hilbert mappings (required for those algorithms; ignored by bin-based).
pub fn generate_with_mesh(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
) -> Result<DynamicWorkload> {
    let mapper = build_mapper(cfg, mesh)?;

    let samples: Vec<&pic_trace::TraceSample> = trace.samples().collect();
    let outcomes: Vec<SampleOutcome> = pic_types::pool::install(|| {
        samples
            .par_iter()
            .map(|s| process_sample(&s.positions, mapper.as_ref(), cfg))
            .collect()
    });

    let mut real = CompMatrix::new(cfg.ranks);
    let mut ghost_recv = CompMatrix::new(cfg.ranks);
    let mut ghost_sent = CompMatrix::new(cfg.ranks);
    let mut bin_counts = Vec::with_capacity(outcomes.len());
    for o in &outcomes {
        real.push_sample(&o.real);
        ghost_recv.push_sample(&o.ghost_recv);
        ghost_sent.push_sample(&o.ghost_sent);
        bin_counts.push(o.bin_count);
    }

    // Communication Load Generator: diff consecutive ownership snapshots.
    let mut comm = CommMatrix::with_samples(outcomes.len());
    let diffs: Vec<Vec<(u32, u32, u32)>> = pic_types::pool::install(|| {
        (1..outcomes.len())
            .into_par_iter()
            .map(|t| migration_pairs(&outcomes[t - 1].owners, &outcomes[t].owners))
            .collect()
    });
    for (t, d) in diffs.into_iter().enumerate() {
        comm.entries[t + 1] = d;
    }

    Ok(DynamicWorkload {
        ranks: cfg.ranks,
        iterations: trace.iterations(),
        real,
        ghost_recv,
        ghost_sent,
        comm,
        bin_counts,
    })
}

/// Construct the mapper the configuration selects (mesh-requiring
/// algorithms fail without one).
pub(crate) fn build_mapper(
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
) -> Result<Box<dyn ParticleMapper>> {
    if cfg.ranks == 0 {
        return Err(PicError::config(
            "workload generation needs at least one rank",
        ));
    }
    Ok(match cfg.mapping {
        MappingAlgorithm::BinBased => Box::new(BinMapper::new(cfg.ranks, cfg.projection_filter)?),
        MappingAlgorithm::ElementBased => {
            let mesh =
                mesh.ok_or_else(|| PicError::config("element-based mapping requires a mesh"))?;
            Box::new(ElementMapper::new(mesh, cfg.ranks)?)
        }
        MappingAlgorithm::HilbertOrdered => {
            let mesh =
                mesh.ok_or_else(|| PicError::config("hilbert-ordered mapping requires a mesh"))?;
            Box::new(HilbertMapper::new(mesh, cfg.ranks)?)
        }
        MappingAlgorithm::LoadBalanced => {
            let mesh =
                mesh.ok_or_else(|| PicError::config("load-balanced mapping requires a mesh"))?;
            Box::new(LoadBalancedMapper::new(mesh, cfg.ranks)?)
        }
    })
}

/// Decoded frames in flight between pipeline stages. Bounds resident
/// memory to `O(PIPELINE_DEPTH + workers)` samples regardless of trace
/// length, preserving the streaming path's reason to exist.
const PIPELINE_DEPTH: usize = 4;

/// Observability counters from one [`generate_streaming`] run: how much
/// was ingested and where the pipeline's time went. Exposed because a
/// full-scale ingest runs for hours over hundreds of gigabytes (§II-D) —
/// "is it the disk, the decode, or the ghost kernel?" must be answerable
/// from the stats block alone.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Frames successfully decoded and folded into the workload.
    pub frames_decoded: usize,
    /// Bytes consumed from the trace stream, header included.
    pub bytes_read: u64,
    /// Wall-clock seconds the decoder thread spent inside `read_sample`.
    pub decode_seconds: f64,
    /// Summed busy seconds across workers in the mapping + ghost kernel.
    pub ghost_seconds: f64,
    /// Wall-clock seconds the consumer spent merging outcomes in order
    /// (including the sequential migration diff).
    pub merge_seconds: f64,
}

/// Streaming workload generation: consume trace frames from any
/// [`SampleSource`](pic_trace::SampleSource) — raw
/// [`TraceReader`](pic_trace::TraceReader), delta-encoded
/// `CompactReader`, or the magic-sniffing `AnyTraceReader` — through a
/// bounded three-stage
/// pipeline, holding only a handful of samples in memory at once.
///
/// This is the path for the paper's §II-D regime — full-scale traces run
/// to hundreds of gigabytes, far beyond memory. A decoder thread pulls
/// frames off the reader via [`pic_trace::SampleSource::read_sample`] and feeds
/// a bounded channel; a pool of workers maps samples through the same
/// per-sample kernel as [`generate`]; the caller's thread merges worker results back into
/// trace order and computes the sequential communication diff (frame `t`'s
/// diff needs frame `t-1`'s ownership, so the merge is the one inherently
/// serial stage). Out-of-order worker completions are reordered by sample
/// index before folding, so the output is bit-identical to [`generate`]
/// and to a straight-line sequential replay.
///
/// On a malformed or failing stream the decoder thread stops at the first
/// error, the workers drain whatever was already queued and exit, the
/// merge completes over the cleanly decoded prefix, and the decoder's
/// *positioned* error is returned. Every pipeline thread is joined before
/// this function returns: a corrupt trace fails the run, it cannot hang
/// it.
pub fn generate_streaming<S: pic_trace::SampleSource + Send>(
    reader: S,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
) -> Result<DynamicWorkload> {
    generate_streaming_with_stats(reader, cfg, mesh).map(|(workload, _)| workload)
}

/// Terminal state handed back by the decoder thread: its status plus the
/// ingestion counters only it can observe.
struct DecoderReport {
    status: Result<()>,
    frames: usize,
    bytes: u64,
    seconds: f64,
}

/// [`generate_streaming`], additionally returning the [`IngestStats`]
/// observability block.
pub fn generate_streaming_with_stats<S: pic_trace::SampleSource + Send>(
    mut reader: S,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
) -> Result<(DynamicWorkload, IngestStats)> {
    let mapper = build_mapper(cfg, mesh)?;
    let mapper: &dyn ParticleMapper = mapper.as_ref();
    // Worker count follows the shared-pool policy: an ambient install (a
    // bench's `--threads` override) wins, otherwise the shared pool's
    // `RAYON_NUM_THREADS`-aware size applies.
    let workers = pic_types::pool::install(rayon::current_num_threads).max(1);
    let ghost_nanos = std::sync::atomic::AtomicU64::new(0);
    let ghost_nanos = &ghost_nanos;

    std::thread::scope(|scope| -> Result<(DynamicWorkload, IngestStats)> {
        let (frame_tx, frame_rx) =
            crossbeam::channel::bounded::<(usize, pic_trace::TraceSample)>(PIPELINE_DEPTH);
        let (out_tx, out_rx) =
            crossbeam::channel::bounded::<(usize, u64, SampleOutcome)>(PIPELINE_DEPTH + workers);

        let decoder = scope.spawn(move || -> DecoderReport {
            let mut seconds = 0.0;
            let mut frames = 0usize;
            let status = loop {
                let t0 = std::time::Instant::now();
                let next = reader.read_sample();
                seconds += t0.elapsed().as_secs_f64();
                match next {
                    Ok(Some(frame)) => {
                        // A send error means every worker hung up; stop.
                        if frame_tx.send((frames, frame)).is_err() {
                            break Ok(());
                        }
                        frames += 1;
                    }
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            DecoderReport {
                status,
                frames,
                bytes: reader.bytes_read(),
                seconds,
            }
        });

        for _ in 0..workers {
            let rx = frame_rx.clone();
            let tx = out_tx.clone();
            scope.spawn(move || {
                // Sample-level fan-out is the parallelism here; pin each
                // worker's intra-sample ghost kernel to one thread so the
                // stages don't oversubscribe each other.
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(1)
                    .build()
                    .unwrap();
                while let Ok((i, frame)) = rx.recv() {
                    let t0 = std::time::Instant::now();
                    let outcome = pool.install(|| process_sample(&frame.positions, mapper, cfg));
                    ghost_nanos.fetch_add(
                        t0.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    if tx.send((i, frame.iteration, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(frame_rx);
        drop(out_tx);

        let mut real = CompMatrix::new(cfg.ranks);
        let mut ghost_recv = CompMatrix::new(cfg.ranks);
        let mut ghost_sent = CompMatrix::new(cfg.ranks);
        let mut bin_counts = Vec::new();
        let mut iterations = Vec::new();
        let mut comm_entries: Vec<Vec<(u32, u32, u32)>> = Vec::new();
        let mut prev_owners: Option<Vec<Rank>> = None;
        let mut merge_seconds = 0.0;
        // Reorder buffer: results stall here until their predecessors
        // land. Its size is bounded by the channel capacities above.
        let mut pending: std::collections::BTreeMap<usize, (u64, SampleOutcome)> =
            std::collections::BTreeMap::new();
        let mut next = 0usize;
        while let Ok((i, iteration, outcome)) = out_rx.recv() {
            let t0 = std::time::Instant::now();
            pending.insert(i, (iteration, outcome));
            while let Some((iteration, outcome)) = pending.remove(&next) {
                real.push_sample(&outcome.real);
                ghost_recv.push_sample(&outcome.ghost_recv);
                ghost_sent.push_sample(&outcome.ghost_sent);
                bin_counts.push(outcome.bin_count);
                iterations.push(iteration);
                comm_entries.push(match &prev_owners {
                    Some(prev) => migration_pairs(prev, &outcome.owners),
                    None => Vec::new(),
                });
                prev_owners = Some(outcome.owners);
                next += 1;
            }
            merge_seconds += t0.elapsed().as_secs_f64();
        }
        // out_rx closed ⇒ every worker has already exited; the decoder is
        // done too (its channel has no readers left). Joining here cannot
        // block on a stalled stream, so surfacing the decode error
        // (truncated frame, I/O failure) is hang-free by construction.
        let report = decoder.join().expect("trace decoder thread panicked");
        report.status?;

        let stats = IngestStats {
            frames_decoded: report.frames,
            bytes_read: report.bytes,
            decode_seconds: report.seconds,
            ghost_seconds: ghost_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64 * 1e-9,
            merge_seconds,
        };
        Ok((
            DynamicWorkload {
                ranks: cfg.ranks,
                iterations,
                real,
                ghost_recv,
                ghost_sent,
                comm: CommMatrix {
                    entries: comm_entries,
                },
                bin_counts,
            },
            stats,
        ))
    })
}

/// Particles per parallel work item in the ghost kernel. Large enough to
/// amortize one scratch + two partial-histogram allocations per chunk,
/// small enough that short traces still fan out across cores.
pub(crate) const GHOST_CHUNK: usize = 2048;

pub(crate) fn process_sample(
    positions: &[pic_types::Vec3],
    mapper: &dyn ParticleMapper,
    cfg: &WorkloadConfig,
) -> SampleOutcome {
    // One SoA transpose per sample feeds both the mapper's vectorized
    // assignment pass and the grouped matrix ghost kernel. Mappers without
    // a native SoA path (bin-based) keep the AoS slice — their default
    // `assign_soa` would only reconstitute it.
    let soa = crate::soa::SoAPositions::from_positions(positions);
    let outcome = if mapper.supports_soa() {
        mapper.assign_soa(soa.xs(), soa.ys(), soa.zs())
    } else {
        mapper.assign(positions)
    };
    let mut real = vec![0u32; cfg.ranks];
    for r in &outcome.ranks {
        real[r.index()] += 1;
    }
    let (ghost_recv, ghost_sent) = if cfg.compute_ghosts {
        let index = RegionIndex::build(&outcome.rank_regions);
        crate::soa::ghost_counts_soa(
            &soa,
            &outcome.ranks,
            &index,
            cfg.projection_filter,
            cfg.ranks,
        )
    } else {
        (vec![0u32; cfg.ranks], vec![0u32; cfg.ranks])
    };
    SampleOutcome {
        real,
        ghost_recv,
        ghost_sent,
        bin_count: outcome.bin_count,
        owners: outcome.ranks,
    }
}

/// Intra-sample parallel ghost counting.
///
/// Splits the particle array into [`GHOST_CHUNK`]-sized chunks processed in
/// parallel. Each chunk owns a [`RegionQueryScratch`] reused across all its
/// sphere queries — the epoch-stamp dedup in
/// [`RegionIndex::for_each_rank_touching_sphere`] replaces the old
/// per-query `sort_unstable` + `dedup`, so the steady-state query loop
/// performs no heap allocation. Chunk partials are dense `u32` histograms
/// merged by elementwise addition, which is order-independent, so the
/// result is bit-identical to a straight-line sequential replay regardless
/// of scheduling.
#[doc(hidden)] // scalar reference kernel, exposed for benches and equivalence tests
pub fn ghost_counts_chunked(
    positions: &[pic_types::Vec3],
    owners: &[Rank],
    index: &RegionIndex,
    radius: f64,
    ranks: usize,
) -> (Vec<u32>, Vec<u32>) {
    let chunks = positions.len().div_ceil(GHOST_CHUNK);
    if chunks <= 1 {
        let mut recv = vec![0u32; ranks];
        let mut sent = vec![0u32; ranks];
        let mut scratch = RegionQueryScratch::new();
        ghost_count_span(
            positions,
            owners,
            index,
            radius,
            &mut scratch,
            &mut recv,
            &mut sent,
        );
        return (recv, sent);
    }
    let partials: Vec<(Vec<u32>, Vec<u32>)> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * GHOST_CHUNK;
            let hi = (lo + GHOST_CHUNK).min(positions.len());
            let mut recv = vec![0u32; ranks];
            let mut sent = vec![0u32; ranks];
            let mut scratch = RegionQueryScratch::new();
            ghost_count_span(
                &positions[lo..hi],
                &owners[lo..hi],
                index,
                radius,
                &mut scratch,
                &mut recv,
                &mut sent,
            );
            (recv, sent)
        })
        .collect();
    let mut ghost_recv = vec![0u32; ranks];
    let mut ghost_sent = vec![0u32; ranks];
    for (recv, sent) in &partials {
        for (acc, v) in ghost_recv.iter_mut().zip(recv) {
            *acc += v;
        }
        for (acc, v) in ghost_sent.iter_mut().zip(sent) {
            *acc += v;
        }
    }
    (ghost_recv, ghost_sent)
}

/// Sequential ghost counting over one aligned span of particles.
#[inline]
fn ghost_count_span(
    positions: &[pic_types::Vec3],
    owners: &[Rank],
    index: &RegionIndex,
    radius: f64,
    scratch: &mut RegionQueryScratch,
    recv: &mut [u32],
    sent: &mut [u32],
) {
    for (&p, &home) in positions.iter().zip(owners) {
        let mut ghost_copies = 0u32;
        index.for_each_rank_touching_sphere(p, radius, scratch, |t| {
            if t != home {
                recv[t.index()] += 1;
                ghost_copies += 1;
            }
        });
        // One write per particle instead of one per touched rank; the sum
        // is identical, so outputs stay bit-equal to the reference.
        sent[home.index()] += ghost_copies;
    }
}

/// The pre-optimization region index, preserved verbatim for speedup
/// accounting: per-cell `Vec<Vec<u32>>` buckets over a clone of the full
/// regions slice, with per-query collect + `sort_unstable` + `dedup`.
/// Grid geometry matches [`RegionIndex`], so query results are identical.
#[doc(hidden)]
pub struct BaselineRegionIndex {
    bounds: pic_types::Aabb,
    dims: [usize; 3],
    inv_cell: pic_types::Vec3,
    buckets: Vec<Vec<u32>>,
    regions: Vec<pic_types::Aabb>,
}

impl BaselineRegionIndex {
    /// Build the baseline bucket grid over `regions`.
    pub fn build(regions: &[pic_types::Aabb]) -> BaselineRegionIndex {
        use pic_types::{Aabb, Vec3};
        let mut bounds = Aabb::empty();
        let mut live = 0usize;
        for r in regions {
            if !r.is_empty() {
                bounds = bounds.union(r);
                live += 1;
            }
        }
        if bounds.is_empty() {
            return BaselineRegionIndex {
                bounds,
                dims: [1, 1, 1],
                inv_cell: Vec3::ZERO,
                buckets: vec![Vec::new()],
                regions: regions.to_vec(),
            };
        }
        let per_axis = ((live as f64 / 2.0).cbrt().ceil() as usize).clamp(1, 64);
        let dims = [per_axis, per_axis, per_axis];
        let ext = bounds.extent();
        let safe = |e: f64| if e > 0.0 { e } else { 1.0 };
        let inv_cell = Vec3::new(
            dims[0] as f64 / safe(ext.x),
            dims[1] as f64 / safe(ext.y),
            dims[2] as f64 / safe(ext.z),
        );
        let mut index = BaselineRegionIndex {
            bounds,
            dims,
            inv_cell,
            buckets: vec![Vec::new(); dims[0] * dims[1] * dims[2]],
            regions: regions.to_vec(),
        };
        for (i, r) in regions.iter().enumerate() {
            if r.is_empty() {
                continue;
            }
            let (lo, hi) = index.cell_range(r);
            for cz in lo[2]..=hi[2] {
                for cy in lo[1]..=hi[1] {
                    for cx in lo[0]..=hi[0] {
                        let c = index.cell_id(cx, cy, cz);
                        index.buckets[c].push(i as u32);
                    }
                }
            }
        }
        index
    }

    #[inline]
    fn cell_id(&self, cx: usize, cy: usize, cz: usize) -> usize {
        cx + self.dims[0] * (cy + self.dims[1] * cz)
    }

    fn cell_range(&self, b: &pic_types::Aabb) -> ([usize; 3], [usize; 3]) {
        let rel_lo = b.min - self.bounds.min;
        let rel_hi = b.max - self.bounds.min;
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        let inv = self.inv_cell.to_array();
        for a in 0..3 {
            let max_i = self.dims[a] as isize - 1;
            lo[a] = ((rel_lo.to_array()[a] * inv[a]).floor() as isize).clamp(0, max_i) as usize;
            hi[a] = ((rel_hi.to_array()[a] * inv[a]).floor() as isize).clamp(0, max_i) as usize;
        }
        (lo, hi)
    }

    /// Collect (sorted, deduplicated) ranks touching the sphere.
    pub fn ranks_touching_sphere(&self, center: pic_types::Vec3, radius: f64, out: &mut Vec<Rank>) {
        use pic_types::Aabb;
        out.clear();
        if self.bounds.is_empty() {
            return;
        }
        let query = Aabb::new(center, center).inflate(radius);
        if !self.bounds.intersects(&query) {
            return;
        }
        let (lo, hi) = self.cell_range(&query);
        for cz in lo[2]..=hi[2] {
            for cy in lo[1]..=hi[1] {
                for cx in lo[0]..=hi[0] {
                    for &ri in &self.buckets[self.cell_id(cx, cy, cz)] {
                        let region = &self.regions[ri as usize];
                        if region.intersects_sphere(center, radius) {
                            out.push(Rank::new(ri));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Straight-line sequential replay used as the determinism oracle and
/// speedup baseline for the parallel paths: no rayon, no chunking, no
/// channels — one thread walks samples in order querying a
/// [`BaselineRegionIndex`] (the pre-optimization bucket grid with
/// per-query sort + dedup). Tests assert [`generate`] and
/// [`generate_streaming`] equal this exactly.
#[doc(hidden)]
pub fn generate_reference(
    trace: &ParticleTrace,
    cfg: &WorkloadConfig,
    mesh: Option<&ElementMesh>,
) -> Result<DynamicWorkload> {
    let mapper = build_mapper(cfg, mesh)?;
    let mut real = CompMatrix::new(cfg.ranks);
    let mut ghost_recv = CompMatrix::new(cfg.ranks);
    let mut ghost_sent = CompMatrix::new(cfg.ranks);
    let mut bin_counts = Vec::new();
    let mut comm_entries: Vec<Vec<(u32, u32, u32)>> = Vec::new();
    let mut prev_owners: Option<Vec<Rank>> = None;
    for sample in trace.samples() {
        let outcome = mapper.assign(&sample.positions);
        let mut r = vec![0u32; cfg.ranks];
        for rank in &outcome.ranks {
            r[rank.index()] += 1;
        }
        let mut recv = vec![0u32; cfg.ranks];
        let mut sent = vec![0u32; cfg.ranks];
        if cfg.compute_ghosts {
            let index = BaselineRegionIndex::build(&outcome.rank_regions);
            let mut touched = Vec::new();
            for (i, &p) in sample.positions.iter().enumerate() {
                index.ranks_touching_sphere(p, cfg.projection_filter, &mut touched);
                let home = outcome.ranks[i];
                for &t in &touched {
                    if t != home {
                        recv[t.index()] += 1;
                        sent[home.index()] += 1;
                    }
                }
            }
        }
        real.push_sample(&r);
        ghost_recv.push_sample(&recv);
        ghost_sent.push_sample(&sent);
        bin_counts.push(outcome.bin_count);
        comm_entries.push(match &prev_owners {
            Some(prev) => migration_pairs(prev, &outcome.ranks),
            None => Vec::new(),
        });
        prev_owners = Some(outcome.ranks);
    }
    Ok(DynamicWorkload {
        ranks: cfg.ranks,
        iterations: trace.iterations(),
        real,
        ghost_recv,
        ghost_sent,
        comm: CommMatrix {
            entries: comm_entries,
        },
        bin_counts,
    })
}

/// Unbounded bin-count series over a trace (Fig 6: "relaxing the processor
/// count limitation" to find the optimal `R`).
pub fn unbounded_bin_series(trace: &ParticleTrace, threshold: f64) -> Result<Vec<usize>> {
    let mapper = BinMapper::new(1, threshold)?;
    let samples: Vec<&pic_trace::TraceSample> = trace.samples().collect();
    Ok(pic_types::pool::install(|| {
        samples
            .par_iter()
            .map(|s| mapper.unbounded_bin_count(&s.positions))
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_grid::MeshDims;
    use pic_trace::TraceMeta;
    use pic_types::rng::SplitMix64;
    use pic_types::{Aabb, Vec3};

    fn make_trace(np: usize, t: usize, spread_growth: f64, seed: u64) -> ParticleTrace {
        // Cloud whose extent grows each sample.
        let mut rng = SplitMix64::new(seed);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "synthetic");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let scale = 0.05 + spread_growth * k as f64;
            // a slow x-drift so ownership actually changes between samples
            let drift = Vec3::new(0.03 * k as f64, 0.0, 0.0);
            let positions: Vec<Vec3> = dirs
                .iter()
                .map(|d| (Vec3::splat(0.5) + *d * scale + drift).clamp(Vec3::ZERO, Vec3::ONE))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    fn mesh() -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap()
    }

    #[test]
    fn real_counts_conserve_particles() {
        let tr = make_trace(500, 5, 0.05, 1);
        let cfg = WorkloadConfig::new(16, MappingAlgorithm::BinBased, 0.02);
        let w = generate(&tr, &cfg).unwrap();
        assert_eq!(w.samples(), 5);
        for t in 0..5 {
            assert_eq!(w.real.sample_total(t), 500);
        }
        // ghosts: sent == received in aggregate
        for t in 0..5 {
            assert_eq!(w.ghost_sent.sample_total(t), w.ghost_recv.sample_total(t));
        }
    }

    #[test]
    fn element_mapping_requires_mesh() {
        let tr = make_trace(100, 2, 0.05, 2);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.02);
        assert!(generate(&tr, &cfg).is_err());
        let m = mesh();
        assert!(generate_with_mesh(&tr, &cfg, Some(&m)).is_ok());
    }

    #[test]
    fn parallel_generation_matches_sequential_semantics() {
        // Determinism across runs (rayon ordering must not leak in).
        let tr = make_trace(300, 6, 0.05, 3);
        let cfg = WorkloadConfig::new(12, MappingAlgorithm::BinBased, 0.05);
        let a = generate(&tr, &cfg).unwrap();
        let b = generate(&tr, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn comm_matrix_first_sample_empty_and_conserves() {
        let tr = make_trace(400, 4, 0.08, 4);
        let m = mesh();
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::ElementBased, 0.02);
        let w = generate_with_mesh(&tr, &cfg, Some(&m)).unwrap();
        assert!(w.comm.entries[0].is_empty());
        // expanding cloud with element mapping must migrate particles
        assert!(w.comm.total() > 0);
        // migration totals bounded by particle count per interval
        for t in 0..w.samples() {
            assert!(w.comm.sample_total(t) <= 400);
        }
    }

    #[test]
    fn one_trace_many_rank_counts() {
        // The paper's headline property: a single trace yields workloads at
        // any R; more ranks can only lower (or hold) the peak.
        let tr = make_trace(1000, 4, 0.06, 5);
        let mut prev_peak = u32::MAX;
        for ranks in [4, 16, 64] {
            let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 1e-4);
            let w = generate(&tr, &cfg).unwrap();
            let peak = w.peak_workload();
            assert!(
                peak <= prev_peak,
                "ranks={ranks} peak={peak} prev={prev_peak}"
            );
            prev_peak = peak;
        }
    }

    #[test]
    fn bin_threshold_caps_scaling() {
        // Fig 5's flat region: with a coarse threshold, increasing R beyond
        // the bin cap leaves the peak unchanged.
        let tr = make_trace(800, 3, 0.02, 6);
        let coarse = 0.2; // few bins possible
        let w_small = generate(
            &tr,
            &WorkloadConfig::new(32, MappingAlgorithm::BinBased, coarse),
        )
        .unwrap();
        let w_large = generate(
            &tr,
            &WorkloadConfig::new(256, MappingAlgorithm::BinBased, coarse),
        )
        .unwrap();
        let bins_small = w_small.max_bin_count().unwrap();
        let bins_large = w_large.max_bin_count().unwrap();
        assert_eq!(bins_small, bins_large, "bin cap must not depend on R");
        assert!(bins_small < 32);
        assert_eq!(w_small.real.peak_series(), w_large.real.peak_series());
    }

    #[test]
    fn unbounded_bins_grow_with_boundary() {
        let tr = make_trace(2000, 5, 0.08, 7);
        let series = unbounded_bin_series(&tr, 0.1).unwrap();
        assert_eq!(series.len(), 5);
        assert!(
            series.last().unwrap() > series.first().unwrap(),
            "{series:?}"
        );
    }

    #[test]
    fn ghost_counts_grow_with_filter() {
        let tr = make_trace(600, 3, 0.05, 8);
        let m = mesh();
        let total_at = |filter: f64| {
            let cfg = WorkloadConfig::new(8, MappingAlgorithm::ElementBased, filter);
            let w = generate_with_mesh(&tr, &cfg, Some(&m)).unwrap();
            (0..w.samples())
                .map(|t| w.ghost_recv.sample_total(t))
                .sum::<u64>()
        };
        let small = total_at(0.01);
        let large = total_at(0.15);
        assert!(
            large > small,
            "filter 0.15 ghosts {large} vs 0.01 ghosts {small}"
        );
    }

    #[test]
    fn skipping_ghosts_zeroes_matrices() {
        let tr = make_trace(200, 3, 0.05, 9);
        let mut cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.1);
        cfg.compute_ghosts = false;
        let w = generate(&tr, &cfg).unwrap();
        for t in 0..3 {
            assert_eq!(w.ghost_recv.sample_total(t), 0);
            assert_eq!(w.ghost_sent.sample_total(t), 0);
        }
        // real counts unaffected
        assert_eq!(w.real.sample_total(0), 200);
    }

    #[test]
    fn zero_ranks_is_error() {
        let tr = make_trace(10, 1, 0.0, 10);
        let cfg = WorkloadConfig {
            ranks: 0,
            mapping: MappingAlgorithm::BinBased,
            projection_filter: 0.1,
            compute_ghosts: false,
        };
        assert!(generate(&tr, &cfg).is_err());
    }

    /// Assert the streamed pipeline, the in-memory parallel path, and the
    /// straight-line sequential reference all agree bit-for-bit.
    fn assert_streaming_equivalence(cfg: &WorkloadConfig, mesh: Option<&ElementMesh>) {
        use pic_trace::codec::{encode_trace, Precision};
        let tr = make_trace(400, 5, 0.05, 21);
        let in_memory = generate_with_mesh(&tr, cfg, mesh).unwrap();
        let reference = generate_reference(&tr, cfg, mesh).unwrap();
        assert_eq!(
            in_memory, reference,
            "parallel path diverged from sequential"
        );
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let reader = pic_trace::TraceReader::new(&bytes[..]).unwrap();
        let streamed = generate_streaming(reader, cfg, mesh).unwrap();
        assert_eq!(streamed, in_memory, "streamed path diverged from in-memory");
    }

    #[test]
    fn streaming_matches_in_memory_generation() {
        let cfg = WorkloadConfig::new(16, MappingAlgorithm::BinBased, 0.04);
        assert_streaming_equivalence(&cfg, None);
    }

    #[test]
    fn streaming_matches_in_memory_element_based() {
        let m = mesh();
        let cfg = WorkloadConfig::new(16, MappingAlgorithm::ElementBased, 0.04);
        assert_streaming_equivalence(&cfg, Some(&m));
    }

    #[test]
    fn streaming_matches_in_memory_hilbert_ordered() {
        let m = mesh();
        let cfg = WorkloadConfig::new(16, MappingAlgorithm::HilbertOrdered, 0.04);
        assert_streaming_equivalence(&cfg, Some(&m));
    }

    #[test]
    fn streaming_matches_in_memory_load_balanced() {
        let m = mesh();
        let cfg = WorkloadConfig::new(16, MappingAlgorithm::LoadBalanced, 0.04);
        assert_streaming_equivalence(&cfg, Some(&m));
    }

    #[test]
    fn streaming_matches_in_memory_without_ghosts() {
        let mut cfg = WorkloadConfig::new(16, MappingAlgorithm::BinBased, 0.04);
        cfg.compute_ghosts = false;
        assert_streaming_equivalence(&cfg, None);
    }

    #[test]
    fn streaming_requires_mesh_for_element_mapping() {
        use pic_trace::codec::{encode_trace, Precision};
        let tr = make_trace(50, 2, 0.05, 22);
        let bytes = encode_trace(&tr, Precision::F64).unwrap();
        let cfg = WorkloadConfig::new(4, MappingAlgorithm::ElementBased, 0.04);
        let reader = pic_trace::TraceReader::new(&bytes[..]).unwrap();
        assert!(generate_streaming(reader, &cfg, None).is_err());
    }

    #[test]
    fn chunked_kernel_matches_reference_on_large_sample() {
        // Big enough to split into several ghost-kernel chunks, so the
        // parallel partial-histogram merge actually runs.
        let tr = make_trace(GHOST_CHUNK * 2 + 123, 2, 0.05, 33);
        let cfg = WorkloadConfig::new(32, MappingAlgorithm::BinBased, 0.05);
        let parallel = generate(&tr, &cfg).unwrap();
        let reference = generate_reference(&tr, &cfg, None).unwrap();
        assert_eq!(parallel, reference);
    }

    #[test]
    fn empty_trace_yields_empty_workload() {
        let meta = TraceMeta::new(5, 100, Aabb::unit(), "empty");
        let tr = ParticleTrace::new(meta);
        let cfg = WorkloadConfig::new(4, MappingAlgorithm::BinBased, 0.1);
        let w = generate(&tr, &cfg).unwrap();
        assert_eq!(w.samples(), 0);
        assert_eq!(w.peak_workload(), 0);
        assert_eq!(w.max_bin_count(), None);
    }
}
