//! Communication-matrix analysis.
//!
//! The paper's communication matrix quantifies "the amount of particle
//! data transfer across processors throughout the execution" (§II-A); this
//! module turns the sparse matrix into the quantities a performance
//! analyst actually asks for: per-rank send/receive loads, the busiest
//! links, and message-size statistics under a given per-particle payload.

use crate::matrices::CommMatrix;
use pic_types::stats;

/// Per-rank send/receive particle totals over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCommLoad {
    /// Particles sent by each rank.
    pub sent: Vec<u64>,
    /// Particles received by each rank.
    pub received: Vec<u64>,
}

impl RankCommLoad {
    /// The rank sending the most particles, with its total (None when
    /// nothing was communicated).
    pub fn busiest_sender(&self) -> Option<(usize, u64)> {
        self.sent
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .filter(|&(_, &v)| v > 0)
            .map(|(i, &v)| (i, v))
    }
}

/// Accumulate per-rank communication loads.
pub fn rank_loads(comm: &CommMatrix, ranks: usize) -> RankCommLoad {
    let mut sent = vec![0u64; ranks];
    let mut received = vec![0u64; ranks];
    for entries in &comm.entries {
        for &(from, to, count) in entries {
            sent[from as usize] += count as u64;
            received[to as usize] += count as u64;
        }
    }
    RankCommLoad { sent, received }
}

/// The `k` heaviest directed links `(from, to, total_particles)` over the
/// run, descending; ties break lexicographically for determinism.
pub fn busiest_links(comm: &CommMatrix, k: usize) -> Vec<(u32, u32, u64)> {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for entries in &comm.entries {
        for &(from, to, count) in entries {
            *totals.entry((from, to)).or_insert(0) += count as u64;
        }
    }
    let mut v: Vec<(u32, u32, u64)> = totals.into_iter().map(|((f, t), c)| (f, t, c)).collect();
    v.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    v.truncate(k);
    v
}

/// Message-size statistics (bytes) across every sample's messages, given a
/// per-particle payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageStats {
    /// Number of point-to-point messages over the run.
    pub message_count: usize,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Mean message size in bytes.
    pub mean_bytes: f64,
    /// Median message size in bytes.
    pub median_bytes: f64,
    /// Largest message in bytes.
    pub max_bytes: u64,
}

/// Compute [`MessageStats`] for a payload of `bytes_per_particle`.
pub fn message_stats(comm: &CommMatrix, bytes_per_particle: u64) -> MessageStats {
    let sizes: Vec<f64> = comm
        .entries
        .iter()
        .flatten()
        .map(|&(_, _, count)| (count as u64 * bytes_per_particle) as f64)
        .collect();
    let total_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
    MessageStats {
        message_count: sizes.len(),
        total_bytes,
        mean_bytes: stats::mean(&sizes),
        median_bytes: stats::percentile(&sizes, 50.0),
        max_bytes: sizes.iter().cloned().fold(0.0, f64::max) as u64,
    }
}

/// Communication imbalance: max over ranks of (sent+received) divided by
/// the mean — 1.0 when every rank shuffles the same amount; 0.0 when
/// nothing moves.
pub fn comm_imbalance(comm: &CommMatrix, ranks: usize) -> f64 {
    let loads = rank_loads(comm, ranks);
    let combined: Vec<f64> = loads
        .sent
        .iter()
        .zip(&loads.received)
        .map(|(&s, &r)| (s + r) as f64)
        .collect();
    stats::imbalance_factor(&combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> CommMatrix {
        let mut c = CommMatrix::with_samples(3);
        c.entries[1] = vec![(0, 1, 10), (1, 2, 4)];
        c.entries[2] = vec![(0, 1, 6), (2, 0, 2)];
        c
    }

    #[test]
    fn rank_loads_accumulate() {
        let l = rank_loads(&comm(), 3);
        assert_eq!(l.sent, vec![16, 4, 2]);
        assert_eq!(l.received, vec![2, 16, 4]);
        assert_eq!(l.busiest_sender(), Some((0, 16)));
    }

    #[test]
    fn busiest_sender_none_when_silent() {
        let l = rank_loads(&CommMatrix::with_samples(2), 4);
        assert_eq!(l.busiest_sender(), None);
    }

    #[test]
    fn busiest_links_ranked() {
        let links = busiest_links(&comm(), 2);
        assert_eq!(links, vec![(0, 1, 16), (1, 2, 4)]);
        let all = busiest_links(&comm(), 10);
        assert_eq!(all.len(), 3);
        // descending totals
        for w in all.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn message_stats_with_payload() {
        let s = message_stats(&comm(), 10);
        assert_eq!(s.message_count, 4);
        assert_eq!(s.total_bytes, (10 + 4 + 6 + 2) * 10);
        assert_eq!(s.max_bytes, 100);
        assert!((s.mean_bytes - 55.0).abs() < 1e-12);
        assert_eq!(s.median_bytes, 50.0);
    }

    #[test]
    fn empty_comm_stats() {
        let s = message_stats(&CommMatrix::with_samples(2), 10);
        assert_eq!(s.message_count, 0);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.mean_bytes, 0.0);
    }

    #[test]
    fn imbalance_detects_hot_rank() {
        // rank 0 does most of the talking
        let f = comm_imbalance(&comm(), 3);
        assert!(f > 1.0, "{f}");
        // uniform ring: every rank sends and receives the same
        let mut c = CommMatrix::with_samples(2);
        c.entries[1] = vec![(0, 1, 5), (1, 2, 5), (2, 0, 5)];
        let f = comm_imbalance(&c, 3);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
