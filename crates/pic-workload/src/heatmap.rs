//! Heat-map rendering of computation matrices (paper Fig 1a).
//!
//! Renders a [`CompMatrix`] as a portable pixmap: one row of pixels per
//! rank, one column per sample, brightness/colour by particle count. The
//! paper's "white patches" (ranks with zero particles throughout) come out
//! as the zero-count colour. Plain-text PPM/PGM formats keep the renderer
//! dependency-free and the output verifiable.

use crate::matrices::CompMatrix;
use pic_types::Rank;

/// Colour map for the heat map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMap {
    /// Grayscale (PGM `P2`): black = 0 particles, white = peak.
    Gray,
    /// Blue→red heat ramp (PPM `P3`): dark blue = 0, red = peak.
    Heat,
}

/// Plain PGM/PPM (`P2`/`P3`) caps raster lines at this many characters —
/// strict readers (netpbm's own included) reject longer lines.
pub const MAX_RASTER_LINE: usize = 70;

/// Raster-line assembler enforcing the plain-format contract: samples
/// separated by single spaces, no trailing space before a newline, and no
/// line longer than [`MAX_RASTER_LINE`] characters.
struct RasterLines {
    out: String,
    line_len: usize,
}

impl RasterLines {
    fn new(header: String) -> RasterLines {
        RasterLines {
            out: header,
            line_len: 0,
        }
    }

    /// Append one ASCII sample token, wrapping if it would overflow the
    /// current line.
    fn push_token(&mut self, token: &str) {
        let sep = usize::from(self.line_len > 0);
        if self.line_len + sep + token.len() > MAX_RASTER_LINE {
            self.break_line();
        }
        if self.line_len > 0 {
            self.out.push(' ');
            self.line_len += 1;
        }
        self.out.push_str(token);
        self.line_len += token.len();
    }

    /// End the current line (no-op when nothing is pending).
    fn break_line(&mut self) {
        if self.line_len > 0 {
            self.out.push('\n');
            self.line_len = 0;
        }
    }

    fn finish(mut self) -> String {
        self.break_line();
        self.out
    }
}

/// Render the matrix as a plain-text PGM/PPM image string.
///
/// Counts are normalized by the matrix peak; an all-zero matrix renders as
/// all-zero pixels. `scale` repeats each cell `scale×scale` pixels so small
/// matrices remain viewable (`scale ≥ 1`).
///
/// Output conforms to the plain-format contract: every raster line is at
/// most [`MAX_RASTER_LINE`] characters and carries no trailing space, so
/// strict `P2`/`P3` readers accept arbitrarily large matrices. Pixel rows
/// wider than one line wrap mid-row (sample order is what defines the
/// image; line breaks are just whitespace), but a new pixel row always
/// starts on a fresh line so small rasters stay human-readable.
pub fn render(matrix: &CompMatrix, map: ColorMap, scale: usize) -> String {
    let scale = scale.max(1);
    let rows = matrix.ranks();
    let cols = matrix.samples();
    let width = cols * scale;
    let height = rows * scale;
    let peak = matrix.peak().max(1) as f64;

    let header = match map {
        ColorMap::Gray => format!("P2\n{width} {height}\n255\n"),
        ColorMap::Heat => format!("P3\n{width} {height}\n255\n"),
    };
    let mut raster = RasterLines::new(header);
    for r in 0..rows {
        // Per-cell sample tokens of this pixel row, each repeated `scale`
        // times horizontally; the whole row repeats `scale` times
        // vertically.
        let mut row_tokens: Vec<String> = Vec::with_capacity(cols);
        for t in 0..cols {
            let v = matrix.get(Rank::from_index(r), t) as f64 / peak;
            match map {
                ColorMap::Gray => row_tokens.push(format!("{}", (v * 255.0).round() as u32)),
                ColorMap::Heat => {
                    let (r8, g8, b8) = heat_color(v);
                    row_tokens.push(format!("{r8} {g8} {b8}"));
                }
            }
        }
        for _ in 0..scale {
            for token in &row_tokens {
                for _ in 0..scale {
                    raster.push_token(token);
                }
            }
            raster.break_line();
        }
    }
    raster.finish()
}

/// Blue→cyan→yellow→red ramp over `v ∈ [0, 1]`.
fn heat_color(v: f64) -> (u32, u32, u32) {
    let v = v.clamp(0.0, 1.0);
    let seg = v * 3.0;
    let (r, g, b) = if seg < 1.0 {
        // dark blue → cyan
        (0.0, seg, 0.5 + 0.5 * seg)
    } else if seg < 2.0 {
        // cyan → yellow
        let f = seg - 1.0;
        (f, 1.0, 1.0 - f)
    } else {
        // yellow → red
        let f = seg - 2.0;
        (1.0, 1.0 - f, 0.0)
    };
    (
        (r * 255.0).round() as u32,
        (g * 255.0).round() as u32,
        (b * 255.0).round() as u32,
    )
}

/// Write a rendered heat map to a file.
pub fn save(
    matrix: &CompMatrix,
    path: impl AsRef<std::path::Path>,
    map: ColorMap,
    scale: usize,
) -> std::io::Result<()> {
    std::fs::write(path, render(matrix, map, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompMatrix {
        CompMatrix::from_rows(2, vec![vec![0, 4], vec![2, 4]])
    }

    #[test]
    fn gray_render_shape_and_values() {
        let s = render(&matrix(), ColorMap::Gray, 1);
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2")); // samples x ranks
        assert_eq!(lines.next(), Some("255"));
        // rank 0 row: counts 0 then 2 → 0 and 128 (normalized by peak 4)
        let row0: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row0, vec![0, 128]);
        let row1: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row1, vec![255, 255]);
    }

    #[test]
    fn scale_repeats_pixels() {
        let s = render(&matrix(), ColorMap::Gray, 3);
        let mut lines = s.lines();
        lines.next();
        assert_eq!(lines.next(), Some("6 6"));
        lines.next();
        let row: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row, vec![0, 0, 0, 128, 128, 128]);
        // 6 pixel rows total
        assert_eq!(s.lines().count(), 3 + 6);
    }

    #[test]
    fn heat_ramp_endpoints() {
        assert_eq!(heat_color(0.0), (0, 0, 128)); // dark blue
        assert_eq!(heat_color(1.0), (255, 0, 0)); // red
        let (r, g, b) = heat_color(0.5);
        assert!(g == 255 && r < 255 && b < 255, "midpoint ({r},{g},{b})");
    }

    #[test]
    fn heat_render_has_three_channels() {
        let s = render(&matrix(), ColorMap::Heat, 1);
        assert!(s.starts_with("P3\n2 2\n255\n"));
        let pixels: Vec<u32> = s
            .lines()
            .skip(3)
            .flat_map(|l| l.split_whitespace())
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(pixels.len(), 2 * 2 * 3);
    }

    #[test]
    fn all_zero_matrix_renders_black() {
        let m = CompMatrix::from_rows(2, vec![vec![0, 0], vec![0, 0]]);
        let s = render(&m, ColorMap::Gray, 1);
        let pixels: Vec<u32> = s
            .lines()
            .skip(3)
            .flat_map(|l| l.split_whitespace())
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(pixels.iter().all(|&p| p == 0));
    }

    /// Minimal strict plain-PNM reader: verifies the magic, dimensions,
    /// maxval, then consumes whitespace-separated samples. Rejects the
    /// format violations the renderer used to emit (lines over 70 chars,
    /// trailing spaces) the way netpbm's own parsers do.
    fn parse_plain_pnm(s: &str) -> (String, usize, usize, Vec<u32>) {
        let mut lines = s.lines();
        let magic = lines.next().expect("magic").to_string();
        assert!(magic == "P2" || magic == "P3", "bad magic {magic:?}");
        let dims: Vec<usize> = lines
            .next()
            .expect("dims")
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(lines.next(), Some("255"));
        let mut samples = Vec::new();
        for line in lines {
            assert!(
                line.len() <= MAX_RASTER_LINE,
                "raster line of {} chars exceeds the {MAX_RASTER_LINE}-char plain-format cap",
                line.len()
            );
            assert_eq!(line.trim_end(), line, "trailing whitespace on {line:?}");
            assert!(!line.is_empty(), "blank raster line");
            for tok in line.split(' ') {
                assert!(!tok.is_empty(), "double space in {line:?}");
                let v: u32 = tok.parse().expect("sample token");
                assert!(v <= 255, "sample {v} over maxval");
                samples.push(v);
            }
        }
        (magic, dims[0], dims[1], samples)
    }

    #[test]
    fn golden_70_char_invariant_and_roundtrip() {
        // Wide matrix with 3-digit samples: one pixel row spans many
        // raster lines, exercising the wrap path in both formats.
        let cols = 64;
        let rows = 5;
        let data: Vec<Vec<u32>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|t| ((r * 37 + t * 11) % 256) as u32)
                    .collect()
            })
            .collect();
        // from_rows takes one row per *sample* (length = ranks).
        let sample_rows: Vec<Vec<u32>> = (0..cols)
            .map(|t| (0..rows).map(|r| data[r][t]).collect())
            .collect();
        let m = CompMatrix::from_rows(rows, sample_rows);
        let peak = m.peak().max(1) as f64;
        for (map, magic, channels) in [(ColorMap::Gray, "P2", 1), (ColorMap::Heat, "P3", 3)] {
            for scale in [1usize, 3] {
                let s = render(&m, map, scale);
                let (got_magic, w, h, samples) = parse_plain_pnm(&s);
                assert_eq!(got_magic, magic);
                assert_eq!((w, h), (cols * scale, rows * scale));
                assert_eq!(samples.len(), w * h * channels);
                // Round-trip: every pixel carries the normalized count.
                for (r, row) in data.iter().enumerate() {
                    for (t, &count) in row.iter().enumerate() {
                        let v = count as f64 / peak;
                        let expected = match map {
                            ColorMap::Gray => vec![(v * 255.0).round() as u32],
                            ColorMap::Heat => {
                                let (r8, g8, b8) = heat_color(v);
                                vec![r8, g8, b8]
                            }
                        };
                        let px = ((r * scale) * w + t * scale) * channels;
                        assert_eq!(
                            &samples[px..px + channels],
                            &expected[..],
                            "pixel ({r},{t}) scale {scale}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn no_line_exceeds_cap_even_at_extreme_width() {
        // 200 three-digit grays: the old renderer emitted one 800-char
        // line per row here; strict readers reject anything past 70.
        let m = CompMatrix::from_rows(1, vec![vec![255]; 200]);
        let s = render(&m, ColorMap::Gray, 1);
        assert!(s.lines().all(|l| l.len() <= MAX_RASTER_LINE));
        assert!(s.lines().all(|l| l.trim_end() == l));
        let (_, w, h, samples) = parse_plain_pnm(&s);
        assert_eq!((w, h), (200, 1));
        assert!(samples.iter().all(|&v| v == 255));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("pic_workload_heatmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.pgm");
        save(&matrix(), &path, ColorMap::Gray, 2).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("P2"));
        std::fs::remove_file(path).ok();
    }
}
