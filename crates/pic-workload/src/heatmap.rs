//! Heat-map rendering of computation matrices (paper Fig 1a).
//!
//! Renders a [`CompMatrix`] as a portable pixmap: one row of pixels per
//! rank, one column per sample, brightness/colour by particle count. The
//! paper's "white patches" (ranks with zero particles throughout) come out
//! as the zero-count colour. Plain-text PPM/PGM formats keep the renderer
//! dependency-free and the output verifiable.

use crate::matrices::CompMatrix;
use pic_types::Rank;

/// Colour map for the heat map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMap {
    /// Grayscale (PGM `P2`): black = 0 particles, white = peak.
    Gray,
    /// Blue→red heat ramp (PPM `P3`): dark blue = 0, red = peak.
    Heat,
}

/// Render the matrix as a plain-text PGM/PPM image string.
///
/// Counts are normalized by the matrix peak; an all-zero matrix renders as
/// all-zero pixels. `scale` repeats each cell `scale×scale` pixels so small
/// matrices remain viewable (`scale ≥ 1`).
pub fn render(matrix: &CompMatrix, map: ColorMap, scale: usize) -> String {
    let scale = scale.max(1);
    let rows = matrix.ranks();
    let cols = matrix.samples();
    let width = cols * scale;
    let height = rows * scale;
    let peak = matrix.peak().max(1) as f64;

    let mut out = String::new();
    match map {
        ColorMap::Gray => {
            out.push_str(&format!("P2\n{width} {height}\n255\n"));
        }
        ColorMap::Heat => {
            out.push_str(&format!("P3\n{width} {height}\n255\n"));
        }
    }
    for r in 0..rows {
        let mut line = String::new();
        for t in 0..cols {
            let v = matrix.get(Rank::from_index(r), t) as f64 / peak;
            let px = match map {
                ColorMap::Gray => format!("{} ", (v * 255.0).round() as u32),
                ColorMap::Heat => {
                    let (r8, g8, b8) = heat_color(v);
                    format!("{r8} {g8} {b8} ")
                }
            };
            for _ in 0..scale {
                line.push_str(&px);
            }
        }
        line.push('\n');
        for _ in 0..scale {
            out.push_str(&line);
        }
    }
    out
}

/// Blue→cyan→yellow→red ramp over `v ∈ [0, 1]`.
fn heat_color(v: f64) -> (u32, u32, u32) {
    let v = v.clamp(0.0, 1.0);
    let seg = v * 3.0;
    let (r, g, b) = if seg < 1.0 {
        // dark blue → cyan
        (0.0, seg, 0.5 + 0.5 * seg)
    } else if seg < 2.0 {
        // cyan → yellow
        let f = seg - 1.0;
        (f, 1.0, 1.0 - f)
    } else {
        // yellow → red
        let f = seg - 2.0;
        (1.0, 1.0 - f, 0.0)
    };
    (
        (r * 255.0).round() as u32,
        (g * 255.0).round() as u32,
        (b * 255.0).round() as u32,
    )
}

/// Write a rendered heat map to a file.
pub fn save(
    matrix: &CompMatrix,
    path: impl AsRef<std::path::Path>,
    map: ColorMap,
    scale: usize,
) -> std::io::Result<()> {
    std::fs::write(path, render(matrix, map, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompMatrix {
        CompMatrix::from_rows(2, vec![vec![0, 4], vec![2, 4]])
    }

    #[test]
    fn gray_render_shape_and_values() {
        let s = render(&matrix(), ColorMap::Gray, 1);
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2")); // samples x ranks
        assert_eq!(lines.next(), Some("255"));
        // rank 0 row: counts 0 then 2 → 0 and 128 (normalized by peak 4)
        let row0: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row0, vec![0, 128]);
        let row1: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row1, vec![255, 255]);
    }

    #[test]
    fn scale_repeats_pixels() {
        let s = render(&matrix(), ColorMap::Gray, 3);
        let mut lines = s.lines();
        lines.next();
        assert_eq!(lines.next(), Some("6 6"));
        lines.next();
        let row: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(row, vec![0, 0, 0, 128, 128, 128]);
        // 6 pixel rows total
        assert_eq!(s.lines().count(), 3 + 6);
    }

    #[test]
    fn heat_ramp_endpoints() {
        assert_eq!(heat_color(0.0), (0, 0, 128)); // dark blue
        assert_eq!(heat_color(1.0), (255, 0, 0)); // red
        let (r, g, b) = heat_color(0.5);
        assert!(g == 255 && r < 255 && b < 255, "midpoint ({r},{g},{b})");
    }

    #[test]
    fn heat_render_has_three_channels() {
        let s = render(&matrix(), ColorMap::Heat, 1);
        assert!(s.starts_with("P3\n2 2\n255\n"));
        let pixels: Vec<u32> = s
            .lines()
            .skip(3)
            .flat_map(|l| l.split_whitespace())
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(pixels.len(), 2 * 2 * 3);
    }

    #[test]
    fn all_zero_matrix_renders_black() {
        let m = CompMatrix::from_rows(2, vec![vec![0, 0], vec![0, 0]]);
        let s = render(&m, ColorMap::Gray, 1);
        let pixels: Vec<u32> = s
            .lines()
            .skip(3)
            .flat_map(|l| l.split_whitespace())
            .map(|v| v.parse().unwrap())
            .collect();
        assert!(pixels.iter().all(|&p| p == 0));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("pic_workload_heatmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.pgm");
        save(&matrix(), &path, ColorMap::Gray, 2).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("P2"));
        std::fs::remove_file(path).ok();
    }
}
