//! Property-based tests for SimPoint-style reduced replay: the `K = T`
//! identity plan must make [`pic_workload::generate_reduced`] bit-identical
//! to the sequential oracle [`generator::generate_reference`] across every
//! mapping algorithm and ghost setting, and [`pic_workload::sweep_reduced`]
//! identical to [`sweep::sweep`] at stride 1 — the contract that pins the
//! reduced path's per-sample kernel to the full replay's.

use pic_grid::{ElementMesh, MeshDims};
use pic_mapping::MappingAlgorithm;
use pic_trace::{ParticleTrace, TraceMeta};
use pic_types::{Aabb, Vec3};
use pic_workload::generator::{self, WorkloadConfig};
use pic_workload::sweep::{self, SweepPoint};
use pic_workload::{generate_reduced, sweep_reduced, ReductionPlan};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = ParticleTrace> {
    (1usize..40, 1usize..6).prop_flat_map(|(np, t)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
                np..=np,
            ),
            t..=t,
        )
        .prop_map(move |frames| {
            let meta = TraceMeta::new(np, 10, Aabb::unit(), "reduce-prop");
            let mut tr = ParticleTrace::new(meta);
            for f in frames {
                tr.push_positions(f).unwrap();
            }
            tr
        })
    })
}

fn mapping_strategy() -> impl Strategy<Value = MappingAlgorithm> {
    prop_oneof![
        Just(MappingAlgorithm::BinBased),
        Just(MappingAlgorithm::ElementBased),
        Just(MappingAlgorithm::HilbertOrdered),
        Just(MappingAlgorithm::LoadBalanced),
    ]
}

fn mesh() -> ElementMesh {
    ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identity_plan_is_bit_identical_to_reference(
        tr in trace_strategy(),
        mapping in mapping_strategy(),
        ranks in 1usize..24,
        ghosts in any::<bool>(),
    ) {
        let mesh = mesh();
        let mut cfg = WorkloadConfig::new(ranks, mapping, 0.05);
        cfg.compute_ghosts = ghosts;
        let plan = ReductionPlan::identity(tr.sample_count());
        let reduced = generate_reduced(&tr, &cfg, Some(&mesh), &plan).unwrap();
        let full = generator::generate_reference(&tr, &cfg, Some(&mesh)).unwrap();
        prop_assert_eq!(reduced, full);
    }

    #[test]
    fn identity_plan_sweep_matches_full_sweep_at_stride_one(
        tr in trace_strategy(),
        mapping in mapping_strategy(),
        ranks in 1usize..16,
    ) {
        let mesh = mesh();
        let points = vec![
            SweepPoint::new(WorkloadConfig::new(ranks, mapping, 0.05)),
            SweepPoint::new(WorkloadConfig::new(ranks + 3, mapping, 0.05)),
            SweepPoint::new(WorkloadConfig::new(ranks, mapping, 0.02)),
        ];
        let plan = ReductionPlan::identity(tr.sample_count());
        let reduced = sweep_reduced(&tr, &points, Some(&mesh), &plan).unwrap();
        let full = sweep::sweep(&tr, &points, Some(&mesh)).unwrap();
        prop_assert_eq!(reduced, full);
    }

    #[test]
    fn reduced_replay_conserves_particles_under_any_plan(
        tr in trace_strategy(),
        ranks in 1usize..16,
        seed in any::<u64>(),
    ) {
        // A random (but valid) plan still conserves particle count at
        // every reconstructed sample: each sample shows some real
        // sample's full outcome.
        let t = tr.sample_count();
        let k = 1 + (seed as usize) % t;
        // representatives: first of every chunk of ceil(t/k)
        let chunk = t.div_ceil(k);
        let reps: Vec<usize> = (0..t).step_by(chunk).collect();
        let assignment: Vec<usize> = (0..t).map(|s| s / chunk).collect();
        let plan = ReductionPlan::new(t, reps, assignment).unwrap();
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.05);
        let w = generate_reduced(&tr, &cfg, None, &plan).unwrap();
        for s in 0..w.samples() {
            prop_assert_eq!(w.real.sample_total(s), tr.particle_count() as u64);
        }
    }
}
