//! Property-based tests: Dynamic Workload Generator conservation laws over
//! arbitrary traces.

use pic_mapping::MappingAlgorithm;
use pic_trace::{ParticleTrace, TraceMeta};
use pic_types::{Aabb, Rank, Vec3};
use pic_workload::generator::{self, WorkloadConfig};
use pic_workload::{metrics, migration_pairs};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = ParticleTrace> {
    (1usize..40, 1usize..6).prop_flat_map(|(np, t)| {
        proptest::collection::vec(
            proptest::collection::vec(
                (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
                np..=np,
            ),
            t..=t,
        )
        .prop_map(move |frames| {
            let meta = TraceMeta::new(np, 10, Aabb::unit(), "prop");
            let mut tr = ParticleTrace::new(meta);
            for f in frames {
                tr.push_positions(f).unwrap();
            }
            tr
        })
    })
}

fn mapping_strategy() -> impl Strategy<Value = MappingAlgorithm> {
    prop_oneof![
        Just(MappingAlgorithm::BinBased),
        Just(MappingAlgorithm::ElementBased),
        Just(MappingAlgorithm::HilbertOrdered),
        Just(MappingAlgorithm::LoadBalanced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn real_counts_conserved_at_every_sample(tr in trace_strategy(), ranks in 1usize..32) {
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        for t in 0..w.samples() {
            prop_assert_eq!(w.real.sample_total(t), tr.particle_count() as u64);
        }
    }

    #[test]
    fn ghost_send_receive_balance(tr in trace_strategy(), ranks in 1usize..24) {
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.08);
        let w = generator::generate(&tr, &cfg).unwrap();
        for t in 0..w.samples() {
            prop_assert_eq!(w.ghost_recv.sample_total(t), w.ghost_sent.sample_total(t));
        }
    }

    #[test]
    fn migrations_bounded_by_population(tr in trace_strategy(), ranks in 1usize..24) {
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        prop_assert!(w.comm.entries[0].is_empty());
        for t in 0..w.samples() {
            prop_assert!(w.comm.sample_total(t) <= tr.particle_count() as u64);
            // no self-migrations
            for &(from, to, c) in &w.comm.entries[t] {
                prop_assert!(from != to);
                prop_assert!(c > 0);
            }
        }
    }

    #[test]
    fn single_rank_never_communicates(tr in trace_strategy()) {
        let cfg = WorkloadConfig::new(1, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        prop_assert_eq!(w.comm.total(), 0);
        for t in 0..w.samples() {
            prop_assert_eq!(w.ghost_recv.sample_total(t), 0);
            prop_assert_eq!(w.real.get(Rank::new(0), t) as usize, tr.particle_count());
        }
    }

    #[test]
    fn utilization_bounds(tr in trace_strategy(), ranks in 1usize..32) {
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        let ru = metrics::resource_utilization(&w.real);
        prop_assert!((0.0..=1.0).contains(&ru));
        let idle = metrics::mean_idle_fraction(&w.real);
        prop_assert!((0.0..=1.0).contains(&idle));
        // time-averaged utilization and idle fraction are complements
        prop_assert!((ru + idle - 1.0).abs() < 1e-12);
        // the "ever active" fraction dominates every per-sample fraction
        let ever = metrics::ever_active_fraction(&w.real);
        for t in 0..w.samples() {
            prop_assert!(ever >= metrics::active_fraction_at(&w.real, t) - 1e-12);
        }
        prop_assert!(ever >= ru - 1e-12);
    }

    #[test]
    fn migration_pairs_conserve_moves(
        prev in proptest::collection::vec(0u32..8, 1..60),
        cur_seed in any::<u64>(),
    ) {
        let prev: Vec<Rank> = prev.into_iter().map(Rank::new).collect();
        // derive cur by shifting some entries deterministically
        let cur: Vec<Rank> = prev
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if (cur_seed >> (i % 60)) & 1 == 1 {
                    Rank::new((r.0 + 1) % 8)
                } else {
                    r
                }
            })
            .collect();
        let pairs = migration_pairs(&prev, &cur);
        let moved: u32 = pairs.iter().map(|&(_, _, c)| c).sum();
        let expected = prev.iter().zip(&cur).filter(|(a, b)| a != b).count() as u32;
        prop_assert_eq!(moved, expected);
        // sorted and aggregated
        for w in pairs.windows(2) {
            prop_assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
    }

    #[test]
    fn parallel_paths_match_sequential_reference(
        tr in trace_strategy(),
        ranks in 1usize..24,
        radius in 0.005..0.15f64,
        mapping in mapping_strategy(),
    ) {
        use pic_grid::{ElementMesh, MeshDims};
        let mesh = ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap();
        let cfg = WorkloadConfig::new(ranks, mapping, radius);
        // The chunked intra-sample kernel and the streamed pipeline must
        // both reproduce the straight-line sequential replay exactly.
        let reference = generator::generate_reference(&tr, &cfg, Some(&mesh)).unwrap();
        let parallel = generator::generate_with_mesh(&tr, &cfg, Some(&mesh)).unwrap();
        prop_assert_eq!(&parallel, &reference);
        let bytes = pic_trace::codec::encode_trace(&tr, pic_trace::codec::Precision::F64).unwrap();
        let reader = pic_trace::TraceReader::new(&bytes[..]).unwrap();
        let streamed = generator::generate_streaming(reader, &cfg, Some(&mesh)).unwrap();
        prop_assert_eq!(&streamed, &reference);
    }

    #[test]
    fn sweep_grid_matches_per_config_reference(
        tr in trace_strategy(),
        rank_counts in proptest::collection::vec(1usize..24, 1..3),
        radii in proptest::collection::vec(0.005..0.15f64, 1..4),
        strides in proptest::collection::vec(1usize..4, 1..3),
        mappings in proptest::collection::vec(mapping_strategy(), 1..3),
    ) {
        use pic_grid::{ElementMesh, MeshDims};
        use pic_workload::sweep::{self, SweepPoint};
        let mesh = ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap();
        let mut points = Vec::new();
        for &mapping in &mappings {
            for &ranks in &rank_counts {
                for &radius in &radii {
                    for &stride in &strides {
                        points.push(SweepPoint::with_stride(
                            WorkloadConfig::new(ranks, mapping, radius),
                            stride,
                        ));
                    }
                }
            }
        }
        // Every grid point of the shared-replay sweep must reproduce the
        // straight-line sequential replay of its subsampled trace exactly.
        let workloads = sweep::sweep(&tr, &points, Some(&mesh)).unwrap();
        prop_assert_eq!(workloads.len(), points.len());
        for (p, w) in points.iter().zip(&workloads) {
            let sub = tr.subsample(p.stride);
            let reference = generator::generate_reference(&sub, &p.config, Some(&mesh)).unwrap();
            prop_assert_eq!(w, &reference);
        }
        // The bounded-memory streaming sweep folds to the same grid.
        let bytes = pic_trace::codec::encode_trace(&tr, pic_trace::codec::Precision::F64).unwrap();
        let reader = pic_trace::TraceReader::new(&bytes[..]).unwrap();
        let streamed = sweep::sweep_streaming(reader, &points, Some(&mesh)).unwrap();
        prop_assert_eq!(&streamed, &workloads);
    }

    #[test]
    fn peak_series_dominates_every_rank(tr in trace_strategy(), ranks in 1usize..16) {
        let cfg = WorkloadConfig::new(ranks, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        let peaks = w.real.peak_series();
        #[allow(clippy::needless_range_loop)] // t is the sample id
        for t in 0..w.samples() {
            for r in 0..ranks {
                prop_assert!(w.real.get(Rank::from_index(r), t) <= peaks[t]);
            }
        }
    }
}
