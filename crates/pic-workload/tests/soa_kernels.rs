//! Property tests for the SoA matrix ghost kernels: the transpose is a bit
//! copy, and the grouped lane kernels are bit-identical to the scalar
//! reference kernels for any radii, any rank layout, and every lane-padding
//! boundary.

use pic_mapping::{BinMapper, ParticleMapper, RegionIndex};
use pic_types::{Rank, Vec3};
use pic_workload::generator::ghost_counts_chunked;
use pic_workload::soa::{ghost_counts_soa, multi_ghost_soa, SoAPositions, LANE};
use pic_workload::sweep::multi_ghost_chunked;
use proptest::prelude::*;

/// Particle counts that exercise every lane-boundary case: exact multiples
/// of `LANE`, one over, one under, plus arbitrary small sizes.
fn boundary_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(LANE),
        Just(LANE + 1),
        Just(2 * LANE - 1),
        Just(3 * LANE),
        1usize..130,
    ]
}

/// An assignment fixture: owners plus the region index the ghost kernels
/// query, derived from a bin mapping of the positions.
fn fixture(positions: &[Vec3], ranks: usize) -> (Vec<Rank>, RegionIndex) {
    let mapper = BinMapper::new(ranks, 1e-4).unwrap();
    let out = mapper.assign(positions);
    let index = RegionIndex::build(&out.rank_regions);
    (out.ranks, index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn soa_transpose_roundtrips_arbitrary_bit_patterns(
        bits in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..40)
    ) {
        // Raw u64 bit patterns cover NaNs with payloads, ±0.0, subnormals,
        // and infinities; the transpose must preserve every one exactly.
        let positions: Vec<Vec3> = bits
            .iter()
            .map(|&(x, y, z)| {
                Vec3::new(f64::from_bits(x), f64::from_bits(y), f64::from_bits(z))
            })
            .collect();
        let soa = SoAPositions::from_positions(&positions);
        prop_assert_eq!(soa.len(), positions.len());
        let back = soa.to_positions();
        for (a, b) in positions.iter().zip(&back) {
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
            prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn lane_kernel_matches_scalar_kernel(
        n in boundary_len(),
        seed in 0u64..1000,
        ranks in 2usize..24,
        radius in prop_oneof![0.005..0.4f64, Just(0.0), Just(f64::INFINITY)],
    ) {
        // Pin the length to the boundary case and draw coordinates from a
        // seeded generator, so `n % LANE` stays the interesting dimension.
        let mut rng = pic_types::rng::SplitMix64::new(seed);
        let positions: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64()))
            .collect();
        let (owners, index) = fixture(&positions, ranks);
        let soa = SoAPositions::from_positions(&positions);
        let scalar = ghost_counts_chunked(&positions, &owners, &index, radius, ranks);
        let lane = ghost_counts_soa(&soa, &owners, &index, radius, ranks);
        prop_assert_eq!(scalar, lane);
    }

    #[test]
    fn lane_kernel_matches_scalar_on_random_clouds(
        positions in proptest::collection::vec(
            (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            1..150,
        ),
        ranks in 2usize..24,
        radius in 0.005..0.4f64,
    ) {
        let (owners, index) = fixture(&positions, ranks);
        let soa = SoAPositions::from_positions(&positions);
        let scalar = ghost_counts_chunked(&positions, &owners, &index, radius, ranks);
        let lane = ghost_counts_soa(&soa, &owners, &index, radius, ranks);
        prop_assert_eq!(scalar, lane);
    }

    #[test]
    fn multi_radius_lane_kernel_matches_scalar(
        positions in proptest::collection::vec(
            (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            1..120,
        ),
        ranks in 2usize..20,
        radii in proptest::collection::vec(0.005..0.4f64, 2..5),
    ) {
        let (owners, index) = fixture(&positions, ranks);
        let soa = SoAPositions::from_positions(&positions);
        let r_max = radii.iter().cloned().fold(0.0f64, f64::max);
        let rr: Vec<f64> = radii.iter().map(|&r| r * r).collect();
        let scalar = multi_ghost_chunked(&positions, &owners, &index, r_max, &rr, ranks);
        let lane = multi_ghost_soa(&soa, &owners, &index, r_max, &rr, ranks);
        prop_assert_eq!(&scalar, &lane);
        // And the shared pass agrees with running every radius standalone.
        for (k, &r) in radii.iter().enumerate() {
            let single = ghost_counts_chunked(&positions, &owners, &index, r, ranks);
            prop_assert_eq!(&scalar[k], &single);
        }
    }
}

/// Four x-slab regions over the unit cube with round-robin owners: the
/// bin mapper cannot partition non-finite positions, but the ghost
/// kernels must still agree on them, so the fixture is hand-built.
fn slab_fixture(particles: usize, ranks: usize) -> (Vec<Rank>, RegionIndex) {
    let regions: Vec<pic_types::Aabb> = (0..ranks)
        .map(|r| {
            let lo = r as f64 / ranks as f64;
            pic_types::Aabb::new(
                Vec3::new(lo, 0.0, 0.0),
                Vec3::new(lo + 1.0 / ranks as f64, 1.0, 1.0),
            )
        })
        .collect();
    let owners = (0..particles)
        .map(|i| Rank::from_index(i % ranks))
        .collect();
    (owners, RegionIndex::build(&regions))
}

#[test]
fn lane_kernel_handles_degenerate_inputs_like_scalar() {
    // Finite-but-extreme coordinates (far outside the region bounds) and
    // edge radii are well-defined in every build profile: the SoA path
    // must take the exact same early-outs as the scalar kernel.
    let positions = vec![
        Vec3::new(1e300, 0.5, 0.5),
        Vec3::new(0.2, 0.2, 0.2),
        Vec3::new(-1e300, 0.1, 0.9),
        Vec3::new(0.8, 0.8, 0.8),
        Vec3::new(0.2, -40.0, 0.3),
    ];
    let ranks = 4;
    let (owners, index) = slab_fixture(positions.len(), ranks);
    let soa = SoAPositions::from_positions(&positions);
    for radius in [0.1, 0.0, f64::INFINITY] {
        let scalar = ghost_counts_chunked(&positions, &owners, &index, radius, ranks);
        let lane = ghost_counts_soa(&soa, &owners, &index, radius, ranks);
        assert_eq!(scalar, lane, "radius {radius}");
    }
    let empty = SoAPositions::from_positions(&[]);
    let (r, s) = ghost_counts_soa(&empty, &[], &index, 0.1, ranks);
    assert_eq!(r, vec![0; ranks]);
    assert_eq!(s, vec![0; ranks]);
}

#[test]
fn lane_kernel_handles_non_finite_inputs_like_scalar() {
    // NaN/±inf coordinates and negative/NaN radii build malformed query
    // boxes that `Aabb::new` rejects in debug builds — a contract both
    // kernels share, so there is nothing to compare there. In release
    // (the profile the CI thread-matrix job runs this suite under) the
    // assert compiles out and both kernels must take identical early-outs.
    if cfg!(debug_assertions) {
        return;
    }
    let positions = vec![
        Vec3::new(f64::NAN, 0.5, 0.5),
        Vec3::new(0.2, 0.2, 0.2),
        Vec3::new(f64::INFINITY, 0.1, 0.9),
        Vec3::new(0.8, 0.8, 0.8),
        Vec3::new(0.2, f64::NEG_INFINITY, 0.3),
    ];
    let ranks = 4;
    let (owners, index) = slab_fixture(positions.len(), ranks);
    let soa = SoAPositions::from_positions(&positions);
    for radius in [0.1, 0.0, -1.0, f64::NAN, f64::INFINITY] {
        let scalar = ghost_counts_chunked(&positions, &owners, &index, radius, ranks);
        let lane = ghost_counts_soa(&soa, &owners, &index, radius, ranks);
        assert_eq!(scalar, lane, "radius {radius}");
    }
}
