//! Streaming-pipeline shutdown under trace faults (the acceptance
//! criterion for ingestion hardening): feeding `generate_streaming` a
//! truncated or failing stream must return the decoder's *positioned*
//! error with every pipeline thread joined — never hang, never panic.
//! Each run executes on a watchdog thread with a hard timeout so a
//! shutdown regression fails the suite instead of wedging it.

use std::sync::mpsc;
use std::time::Duration;

use pic_mapping::MappingAlgorithm;
use pic_trace::codec::{encode_trace, Precision};
use pic_trace::fault::{truncation_points, FailAt, TruncateAt};
use pic_trace::{ParticleTrace, TraceMeta, TraceReader};
use pic_types::{Aabb, PicError, TraceErrorKind, Vec3};
use pic_workload::{generate_streaming, generate_streaming_with_stats, WorkloadConfig};

/// Generous bound: a healthy run over these tiny traces finishes in
/// milliseconds, so hitting it can only mean a stuck pipeline thread.
const WATCHDOG: Duration = Duration::from_secs(60);

fn small_trace(np: usize, t: usize) -> ParticleTrace {
    let meta = TraceMeta::new(np, 50, Aabb::unit(), "stream-fault");
    let mut tr = ParticleTrace::new(meta);
    for k in 0..t {
        let positions = (0..np)
            .map(|i| Vec3::new((i as f64 * 0.013) % 1.0, (k as f64 * 0.11) % 1.0, 0.5))
            .collect();
        tr.push_positions(positions).unwrap();
    }
    tr
}

fn cfg() -> WorkloadConfig {
    WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05)
}

/// Run the full open-reader-then-stream path on its own thread; panic if
/// it neither returns nor errors within the watchdog window.
fn stream_with_watchdog(
    bytes: Vec<u8>,
    label: String,
) -> pic_types::Result<pic_workload::DynamicWorkload> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = TraceReader::new(&bytes[..]).and_then(|r| generate_streaming(r, &cfg(), None));
        // The watchdog may have given up; a dead receiver is fine.
        let _ = tx.send(result);
    });
    rx.recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("streaming pipeline hung on {label}"))
}

fn assert_positioned(err: &PicError, label: &str) {
    let details = err
        .trace_details()
        .unwrap_or_else(|| panic!("{label}: unstructured error: {err}"));
    assert!(
        details.offset.is_some(),
        "{label}: error without byte offset: {err}"
    );
    assert!(
        err.to_string().contains("at byte"),
        "{label}: display misses offset: {err}"
    );
}

#[test]
fn truncation_at_every_boundary_errors_or_yields_prefix_without_hanging() {
    let tr = small_trace(40, 4);
    let desc_len = tr.meta().description.len();
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    let frame_len = 8 + 40 * 3 * 8;
    let header_len = 76 + desc_len;
    for cut in truncation_points(bytes.len(), desc_len, frame_len) {
        match stream_with_watchdog(bytes[..cut].to_vec(), format!("cut at byte {cut}")) {
            Ok(workload) => {
                // Only exact frame boundaries stream cleanly, and then the
                // workload covers exactly the surviving prefix.
                assert!(cut >= header_len, "cut {cut} streamed without a header");
                assert_eq!((cut - header_len) % frame_len, 0, "cut {cut} is mid-frame");
                assert_eq!(workload.samples(), (cut - header_len) / frame_len);
            }
            Err(e) => assert_positioned(&e, &format!("cut {cut}")),
        }
    }
}

#[test]
fn hard_io_fault_mid_stream_propagates_with_workers_joined() {
    let tr = small_trace(30, 5);
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    let fail_at = (bytes.len() / 2) as u64;
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let faulty = FailAt::new(&bytes[..], fail_at, std::io::ErrorKind::BrokenPipe);
        let result = TraceReader::new(faulty).and_then(|r| generate_streaming(r, &cfg(), None));
        let _ = tx.send(result);
    });
    let err = rx
        .recv_timeout(WATCHDOG)
        .expect("streaming pipeline hung on a hard I/O fault")
        .expect_err("injected fault was swallowed");
    assert_positioned(&err, "hard fault");
    let details = err.trace_details().unwrap();
    assert_eq!(details.kind, TraceErrorKind::Io, "{err}");
    assert_eq!(
        details.source.as_ref().unwrap().kind(),
        std::io::ErrorKind::BrokenPipe
    );
}

#[test]
fn truncating_reader_mid_frame_is_a_positioned_error() {
    let tr = small_trace(25, 3);
    let bytes = encode_trace(&tr, Precision::F32).unwrap();
    // Cut inside the last frame's position payload.
    let cut = (bytes.len() - 10) as u64;
    let reader = TraceReader::new(TruncateAt::new(&bytes[..], cut)).unwrap();
    let err = generate_streaming(reader, &cfg(), None).unwrap_err();
    assert_positioned(&err, "mid-frame truncation");
    assert_eq!(
        err.trace_details().unwrap().kind,
        TraceErrorKind::TruncatedFrame
    );
}

#[test]
fn clean_stream_reports_accurate_ingest_stats() {
    let tr = small_trace(120, 6);
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    let reader = TraceReader::new(&bytes[..]).unwrap();
    let (workload, stats) = generate_streaming_with_stats(reader, &cfg(), None).unwrap();
    assert_eq!(workload.samples(), 6);
    assert_eq!(stats.frames_decoded, 6);
    assert_eq!(stats.bytes_read, bytes.len() as u64);
    assert!(stats.decode_seconds >= 0.0);
    assert!(
        stats.ghost_seconds > 0.0,
        "ghost kernel ran, timer stayed zero"
    );
    assert!(stats.merge_seconds >= 0.0);
}

#[test]
fn failed_stream_still_reports_no_stats_but_positions_error() {
    // Stats ride the Ok path only; the Err path must still carry the
    // decoder's position so operators can locate the corruption.
    let tr = small_trace(15, 4);
    let bytes = encode_trace(&tr, Precision::F64).unwrap();
    let cut = bytes.len() - 3;
    let reader = TraceReader::new(&bytes[..cut]).unwrap();
    let err = generate_streaming_with_stats(reader, &cfg(), None).unwrap_err();
    assert_positioned(&err, "stats path");
}
