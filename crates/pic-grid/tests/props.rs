//! Property-based tests: mesh queries and RCB decomposition invariants.

use pic_grid::{ElementMesh, MeshDims, RcbDecomposition};
use pic_types::{Aabb, Rank, Vec3};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = ElementMesh> {
    (1usize..8, 1usize..8, 1usize..8, 2usize..6).prop_map(|(nx, ny, nz, order)| {
        ElementMesh::new(Aabb::unit(), MeshDims::new(nx, ny, nz), order).unwrap()
    })
}

fn unit_point() -> impl Strategy<Value = Vec3> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn every_domain_point_has_exactly_one_element(mesh in mesh_strategy(), p in unit_point()) {
        let e = mesh.element_of_point(p).expect("in-domain point");
        // the element's box contains the point (allow the shared max-face)
        let b = mesh.element_aabb(e);
        prop_assert!(b.contains_closed(p), "{p} not in {b}");
        // no other element's half-open box contains it
        let owners = mesh
            .element_ids()
            .filter(|&id| mesh.element_aabb(id).contains(p))
            .count();
        prop_assert!(owners <= 1);
    }

    #[test]
    fn element_id_roundtrip(mesh in mesh_strategy()) {
        for id in mesh.element_ids() {
            let (ix, iy, iz) = mesh.element_indices(id);
            prop_assert_eq!(mesh.element_id(ix, iy, iz), id);
        }
    }

    #[test]
    fn aabb_query_equals_brute_force(
        mesh in mesh_strategy(),
        a in unit_point(),
        b in unit_point(),
    ) {
        let q = Aabb::new(a.min(b), a.max(b));
        let mut fast = mesh.elements_in_aabb(&q);
        let mut brute: Vec<_> = mesh
            .element_ids()
            .filter(|&id| mesh.element_aabb(id).intersects(&q))
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn rcb_conserves_elements(mesh in mesh_strategy(), ranks in 1usize..40) {
        let d = RcbDecomposition::decompose(&mesh, ranks).unwrap();
        let total: usize = d.element_counts().iter().sum();
        prop_assert_eq!(total, mesh.element_count());
        // ownership arrays agree with counts
        for r in Rank::all(ranks) {
            prop_assert_eq!(d.elements_of_rank(r).len(), d.elements_on_rank(r));
        }
    }

    #[test]
    fn rcb_regions_cover_owned_elements(mesh in mesh_strategy(), ranks in 1usize..20) {
        let d = RcbDecomposition::decompose(&mesh, ranks).unwrap();
        for id in mesh.element_ids() {
            let r = d.rank_of_element(id);
            let region = d.rank_region(r);
            let eb = mesh.element_aabb(id);
            prop_assert!(region.contains_closed(eb.center()));
        }
    }

    #[test]
    fn rcb_balance_bound(mesh in mesh_strategy(), ranks in 1usize..16) {
        // Cuts are quantized to whole element layers, so perfect balance is
        // impossible for awkward mesh shapes; the proportional cut still
        // keeps every rank within a small constant of the fair share.
        let d = RcbDecomposition::decompose(&mesh, ranks).unwrap();
        let fair = mesh.element_count().div_ceil(ranks).max(1);
        let bound = 3 * fair + 1;
        for r in Rank::all(ranks) {
            prop_assert!(
                d.elements_on_rank(r) <= bound,
                "rank {r}: {} > {bound} (fair {fair})",
                d.elements_on_rank(r)
            );
        }
    }

    #[test]
    fn rank_of_point_is_owner_of_element(mesh in mesh_strategy(), ranks in 1usize..20, p in unit_point()) {
        let d = RcbDecomposition::decompose(&mesh, ranks).unwrap();
        let e = mesh.element_of_point(p).unwrap();
        prop_assert_eq!(d.rank_of_point(&mesh, p), Some(d.rank_of_element(e)));
    }

    #[test]
    fn sphere_query_superset_of_home(mesh in mesh_strategy(), ranks in 1usize..20, p in unit_point(), r in 0.001..0.3f64) {
        let d = RcbDecomposition::decompose(&mesh, ranks).unwrap();
        let home = d.rank_of_point(&mesh, p).unwrap();
        let touched = d.ranks_touching_sphere(&mesh, p, r);
        prop_assert!(touched.contains(&home));
        // sorted unique
        for w in touched.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn gll_weights_positive_and_sum_two(n in 2usize..12) {
        let (nodes, weights) = pic_grid::gll::gll_nodes_weights(n);
        prop_assert_eq!(nodes.len(), n);
        for w in &weights {
            prop_assert!(*w > 0.0);
        }
        let s: f64 = weights.iter().sum();
        prop_assert!((s - 2.0).abs() < 1e-10);
        // nodes strictly increasing in [-1, 1]
        for w in nodes.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert_eq!(nodes[0], -1.0);
        prop_assert_eq!(nodes[n - 1], 1.0);
    }

    #[test]
    fn lagrange_interpolation_reproduces_low_degree_polys(n in 3usize..8, x in -1.0..1.0f64) {
        // interpolating t² at the nodes and evaluating at x must equal x²
        let (nodes, _) = pic_grid::gll::gll_nodes_weights(n);
        let interp: f64 = (0..n)
            .map(|i| nodes[i] * nodes[i] * pic_grid::gll::lagrange_basis(&nodes, i, x))
            .sum();
        prop_assert!((interp - x * x).abs() < 1e-8, "{interp} vs {}", x * x);
    }
}
