//! Gauss–Lobatto–Legendre (GLL) nodes and quadrature weights.
//!
//! Spectral-element methods (Nek5000, CMT-nek) place an `N × N × N` tensor
//! grid of GLL points inside every element. The interpolation and projection
//! kernels of the mini-app ([`pic_sim`](https://docs.rs/pic-sim)) evaluate
//! Lagrange basis polynomials at these nodes, so their cost scales as `N³`
//! per particle — the scaling the paper's performance models must capture.
//!
//! Nodes are the roots of `(1 - x²) P'_{N-1}(x)` on `[-1, 1]`, computed by
//! Newton iteration from Chebyshev initial guesses; weights follow the
//! classical formula `w_i = 2 / (N (N-1) P_{N-1}(x_i)²)`.

/// Legendre polynomial `P_n(x)` and its derivative, via the three-term
/// recurrence. Returns `(P_n(x), P'_n(x))`.
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    match n {
        0 => (1.0, 0.0),
        1 => (x, 1.0),
        _ => {
            let mut p_prev = 1.0; // P_0
            let mut p = x; // P_1
            for k in 2..=n {
                let kf = k as f64;
                let p_next = ((2.0 * kf - 1.0) * x * p - (kf - 1.0) * p_prev) / kf;
                p_prev = p;
                p = p_next;
            }
            // P'_n(x) = n (x P_n - P_{n-1}) / (x² - 1), except at |x| = 1.
            let dp = if (x * x - 1.0).abs() < 1e-14 {
                // Limit: P'_n(±1) = ±1^{n-1} * n(n+1)/2
                let sign = if x > 0.0 {
                    1.0
                } else {
                    (-1.0f64).powi(n as i32 - 1)
                };
                sign * (n * (n + 1)) as f64 / 2.0
            } else {
                n as f64 * (x * p - p_prev) / (x * x - 1.0)
            };
            (p, dp)
        }
    }
}

/// GLL nodes and quadrature weights for `n ≥ 2` points on `[-1, 1]`.
///
/// The returned nodes are sorted ascending and include both endpoints.
///
/// # Panics
/// Panics if `n < 2`.
pub fn gll_nodes_weights(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 2, "GLL rule needs at least 2 points");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    nodes[0] = -1.0;
    nodes[n - 1] = 1.0;
    let m = n - 1; // interior nodes are roots of P'_m
    #[allow(clippy::needless_range_loop)] // i is the node slot being solved for
    for i in 1..m {
        // Chebyshev–Gauss–Lobatto initial guess, then Newton on P'_m.
        let mut x = -(std::f64::consts::PI * i as f64 / m as f64).cos();
        for _ in 0..100 {
            // f(x) = P'_m(x). Newton using f' from Legendre ODE:
            // (1-x²) P''_m = 2x P'_m - m(m+1) P_m.
            let (p, dp) = legendre(m, x);
            let ddp = (2.0 * x * dp - (m * (m + 1)) as f64 * p) / (1.0 - x * x);
            let step = dp / ddp;
            x -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = x;
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let norm = 2.0 / (m * n) as f64;
    for i in 0..n {
        let (p, _) = legendre(m, nodes[i]);
        weights[i] = norm / (p * p);
    }
    (nodes, weights)
}

/// Evaluate the `i`-th Lagrange basis polynomial over `nodes` at `x`.
///
/// O(n) per evaluation; the mini-app interpolation kernel calls this `3 n`
/// times per particle (tensor-product structure).
pub fn lagrange_basis(nodes: &[f64], i: usize, x: f64) -> f64 {
    let xi = nodes[i];
    let mut v = 1.0;
    for (j, &xj) in nodes.iter().enumerate() {
        if j != i {
            v *= (x - xj) / (xi - xj);
        }
    }
    v
}

/// Precomputed 1-D GLL rule reused across the tensor-product kernels.
#[derive(Debug, Clone)]
pub struct GllRule {
    /// Nodes on `[-1, 1]`, ascending.
    pub nodes: Vec<f64>,
    /// Quadrature weights.
    pub weights: Vec<f64>,
}

impl GllRule {
    /// Build a rule with `n` points.
    pub fn new(n: usize) -> GllRule {
        let (nodes, weights) = gll_nodes_weights(n);
        GllRule { nodes, weights }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the rule is empty (never, by construction — kept for clippy's
    /// `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluate all `n` Lagrange basis functions at reference coordinate `x`,
    /// appending into `out` (cleared first).
    pub fn basis_at(&self, x: f64, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(lagrange_basis(&self.nodes, i, x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legendre_known_values() {
        // P_2(x) = (3x² - 1)/2
        let (p, dp) = legendre(2, 0.5);
        assert!((p - (-0.125)).abs() < 1e-14);
        assert!((dp - 1.5).abs() < 1e-14);
        // P_n(1) = 1 for all n
        for n in 0..8 {
            assert!((legendre(n, 1.0).0 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gll_small_rules_match_literature() {
        // n=2: nodes ±1, weights 1
        let (x, w) = gll_nodes_weights(2);
        assert_eq!(x, vec![-1.0, 1.0]);
        assert!((w[0] - 1.0).abs() < 1e-14 && (w[1] - 1.0).abs() < 1e-14);
        // n=3: nodes -1, 0, 1; weights 1/3, 4/3, 1/3
        let (x, w) = gll_nodes_weights(3);
        assert!(x[1].abs() < 1e-14);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-13);
        assert!((w[1] - 4.0 / 3.0).abs() < 1e-13);
        // n=4: interior nodes ±1/sqrt(5)
        let (x, w) = gll_nodes_weights(4);
        assert!((x[1] + (0.2f64).sqrt()).abs() < 1e-12);
        assert!((x[2] - (0.2f64).sqrt()).abs() < 1e-12);
        assert!((w[1] - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 2..12 {
            let (_, w) = gll_nodes_weights(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-11, "n={n} sum={s}");
        }
    }

    #[test]
    fn quadrature_is_exact_for_low_degree() {
        // GLL with n points integrates polynomials up to degree 2n-3 exactly.
        let (x, w) = gll_nodes_weights(5);
        // ∫_{-1}^{1} t^6 dt = 2/7, degree 6 <= 2*5-3 = 7
        let approx: f64 = x.iter().zip(&w).map(|(&t, &wi)| wi * t.powi(6)).sum();
        assert!((approx - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn lagrange_basis_is_cardinal() {
        let (x, _) = gll_nodes_weights(6);
        for i in 0..6 {
            for j in 0..6 {
                let v = lagrange_basis(&x, i, x[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-10, "l_{i}(x_{j}) = {v}");
            }
        }
    }

    #[test]
    fn lagrange_basis_partition_of_unity() {
        let (x, _) = gll_nodes_weights(7);
        for &t in &[-0.9, -0.3, 0.0, 0.42, 0.99] {
            let s: f64 = (0..7).map(|i| lagrange_basis(&x, i, t)).sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn rule_basis_at_matches_direct() {
        let rule = GllRule::new(5);
        assert_eq!(rule.len(), 5);
        assert!(!rule.is_empty());
        let mut out = Vec::new();
        rule.basis_at(0.3, &mut out);
        #[allow(clippy::needless_range_loop)]
        for i in 0..5 {
            assert_eq!(out[i], lagrange_basis(&rule.nodes, i, 0.3));
        }
    }

    #[test]
    #[should_panic]
    fn rule_of_one_point_panics() {
        gll_nodes_weights(1);
    }
}
