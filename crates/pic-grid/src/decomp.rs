//! Recursive-coordinate-bisection (RCB) decomposition of elements to ranks.
//!
//! CMT-nek distributes spectral elements with a recursive-bisection
//! algorithm (paper ref \[20\]) that minimizes grid-data exchange between
//! processors. For a structured mesh this reduces to recursively cutting the
//! element *index brick* perpendicular to its (physically) longest axis,
//! splitting the rank budget proportionally, so every rank ends up owning a
//! contiguous rectangular brick of elements.
//!
//! The decomposition answers the two queries the rest of the framework
//! needs:
//! * `rank_of_element` / `rank_of_point` — ownership (element-based mapping,
//!   computation-load generation);
//! * `ranks_touching_sphere` — which remote domains a particle's projection
//!   filter spills onto (ghost-particle generation).

use crate::mesh::ElementMesh;
use pic_types::{Aabb, ElementId, PicError, Rank, Result, Vec3};
use serde::{Deserialize, Serialize};

/// A brick of element indices, half-open on each axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct IndexBrick {
    lo: [usize; 3],
    hi: [usize; 3],
}

impl IndexBrick {
    fn count(&self) -> usize {
        (0..3).map(|a| self.hi[a] - self.lo[a]).product()
    }

    fn extent(&self, a: usize) -> usize {
        self.hi[a] - self.lo[a]
    }
}

/// Result of decomposing an [`ElementMesh`] onto `R` ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RcbDecomposition {
    ranks: usize,
    /// Owning rank of each element, indexed by `ElementId`.
    element_owner: Vec<Rank>,
    /// Physical region (union of owned element boxes) per rank. Ranks that
    /// received no elements (R > N_el) get an empty box.
    rank_regions: Vec<Aabb>,
    /// Number of elements owned by each rank.
    rank_element_counts: Vec<usize>,
}

impl RcbDecomposition {
    /// Decompose `mesh` onto `ranks` processors with uniform element weights.
    ///
    /// Every rank receives a contiguous brick; element counts per rank differ
    /// by at most a small factor governed by the bisection tree (exactly
    /// balanced when `ranks` divides the mesh cleanly).
    pub fn decompose(mesh: &ElementMesh, ranks: usize) -> Result<RcbDecomposition> {
        if ranks == 0 {
            return Err(PicError::config("cannot decompose onto zero ranks"));
        }
        let dims = mesh.dims();
        let mut element_owner = vec![Rank::new(0); mesh.element_count()];
        let mut rank_regions = vec![Aabb::empty(); ranks];
        let mut rank_element_counts = vec![0usize; ranks];

        let root = IndexBrick {
            lo: [0, 0, 0],
            hi: [dims.nx, dims.ny, dims.nz],
        };
        let h = mesh.element_size();
        let mut stack: Vec<(IndexBrick, usize, usize)> = vec![(root, 0, ranks)];
        while let Some((brick, rank0, r)) = stack.pop() {
            if r == 1 || brick.count() <= 1 {
                let rank = Rank::from_index(rank0);
                for iz in brick.lo[2]..brick.hi[2] {
                    for iy in brick.lo[1]..brick.hi[1] {
                        for ix in brick.lo[0]..brick.hi[0] {
                            let id = mesh.element_id(ix, iy, iz);
                            element_owner[id.index()] = rank;
                            let b = mesh.element_aabb(id);
                            rank_regions[rank0] = rank_regions[rank0].union(&b);
                            rank_element_counts[rank0] += 1;
                        }
                    }
                }
                continue;
            }
            // Longest physical axis that can still be cut (>= 2 index layers).
            let lengths = [
                brick.extent(0) as f64 * h.x,
                brick.extent(1) as f64 * h.y,
                brick.extent(2) as f64 * h.z,
            ];
            let axis = (0..3)
                .filter(|&a| brick.extent(a) >= 2)
                .max_by(|&a, &b| lengths[a].partial_cmp(&lengths[b]).unwrap())
                .expect("brick with >1 element must have a cuttable axis");
            let ra = r / 2;
            let rb = r - ra;
            // Cut index proportional to the rank split, at least one layer on
            // each side.
            let n = brick.extent(axis);
            let mut cut = (n * ra + r / 2) / r;
            cut = cut.clamp(1, n - 1);
            let mut left = brick;
            let mut right = brick;
            left.hi[axis] = brick.lo[axis] + cut;
            right.lo[axis] = brick.lo[axis] + cut;
            stack.push((left, rank0, ra));
            stack.push((right, rank0 + ra, rb));
        }

        Ok(RcbDecomposition {
            ranks,
            element_owner,
            rank_regions,
            rank_element_counts,
        })
    }

    /// Decompose `mesh` onto `ranks` processors balancing per-element
    /// *weights* instead of counts (Zhai et al., paper ref \[11\]: element
    /// load = grid points + residing particles).
    ///
    /// Cuts still fall on whole element layers (bricks stay contiguous),
    /// but each cut position is chosen so the weight on either side is as
    /// close as possible to proportional to its rank share.
    ///
    /// Weights must be non-negative; `weights.len()` must equal the element
    /// count. All-zero bricks fall back to count-proportional cuts.
    pub fn decompose_weighted(
        mesh: &ElementMesh,
        ranks: usize,
        weights: &[f64],
    ) -> Result<RcbDecomposition> {
        if ranks == 0 {
            return Err(PicError::config("cannot decompose onto zero ranks"));
        }
        if weights.len() != mesh.element_count() {
            return Err(PicError::config(format!(
                "got {} weights for {} elements",
                weights.len(),
                mesh.element_count()
            )));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(PicError::config(
                "element weights must be finite and non-negative",
            ));
        }
        let dims = mesh.dims();
        let mut element_owner = vec![Rank::new(0); mesh.element_count()];
        let mut rank_regions = vec![Aabb::empty(); ranks];
        let mut rank_element_counts = vec![0usize; ranks];

        let root = IndexBrick {
            lo: [0, 0, 0],
            hi: [dims.nx, dims.ny, dims.nz],
        };
        let h = mesh.element_size();
        let mut stack: Vec<(IndexBrick, usize, usize)> = vec![(root, 0, ranks)];
        while let Some((brick, rank0, r)) = stack.pop() {
            if r == 1 || brick.count() <= 1 {
                let rank = Rank::from_index(rank0);
                for iz in brick.lo[2]..brick.hi[2] {
                    for iy in brick.lo[1]..brick.hi[1] {
                        for ix in brick.lo[0]..brick.hi[0] {
                            let id = mesh.element_id(ix, iy, iz);
                            element_owner[id.index()] = rank;
                            let b = mesh.element_aabb(id);
                            rank_regions[rank0] = rank_regions[rank0].union(&b);
                            rank_element_counts[rank0] += 1;
                        }
                    }
                }
                continue;
            }
            let lengths = [
                brick.extent(0) as f64 * h.x,
                brick.extent(1) as f64 * h.y,
                brick.extent(2) as f64 * h.z,
            ];
            let axis = (0..3)
                .filter(|&a| brick.extent(a) >= 2)
                .max_by(|&a, &b| lengths[a].partial_cmp(&lengths[b]).unwrap())
                .expect("brick with >1 element must have a cuttable axis");
            let ra = r / 2;
            let rb = r - ra;
            let n = brick.extent(axis);

            // Per-layer weights along the cut axis.
            let mut layer_w = vec![0.0f64; n];
            for iz in brick.lo[2]..brick.hi[2] {
                for iy in brick.lo[1]..brick.hi[1] {
                    for ix in brick.lo[0]..brick.hi[0] {
                        let layer = [ix, iy, iz][axis] - brick.lo[axis];
                        layer_w[layer] += weights[mesh.element_id(ix, iy, iz).index()];
                    }
                }
            }
            let total: f64 = layer_w.iter().sum();
            let cut = if total <= 0.0 {
                // no weight anywhere: proportional count cut
                ((n * ra + r / 2) / r).clamp(1, n - 1)
            } else {
                // first cut whose left prefix meets the target share,
                // choosing the closer of the two candidates around it
                let target = total * ra as f64 / r as f64;
                let mut prefix = 0.0;
                let mut best = 1usize;
                let mut best_err = f64::INFINITY;
                for (layer, w) in layer_w.iter().enumerate().take(n - 1) {
                    prefix += w;
                    let err = (prefix - target).abs();
                    if err < best_err {
                        best_err = err;
                        best = layer + 1;
                    }
                }
                best
            };
            let mut left = brick;
            let mut right = brick;
            left.hi[axis] = brick.lo[axis] + cut;
            right.lo[axis] = brick.lo[axis] + cut;
            stack.push((left, rank0, ra));
            stack.push((right, rank0 + ra, rb));
        }

        Ok(RcbDecomposition {
            ranks,
            element_owner,
            rank_regions,
            rank_element_counts,
        })
    }

    /// Total weight assigned to each rank under a given weight vector
    /// (diagnostic for weighted decompositions).
    pub fn rank_weights(&self, weights: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.ranks];
        for (i, &r) in self.element_owner.iter().enumerate() {
            out[r.index()] += weights[i];
        }
        out
    }

    /// Number of ranks the mesh was decomposed onto.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Owning rank of element `id`.
    #[inline]
    pub fn rank_of_element(&self, id: ElementId) -> Rank {
        self.element_owner[id.index()]
    }

    /// Owning rank of the element containing point `p`, or `None` if `p` is
    /// outside the mesh domain.
    #[inline]
    pub fn rank_of_point(&self, mesh: &ElementMesh, p: Vec3) -> Option<Rank> {
        mesh.element_of_point(p).map(|e| self.rank_of_element(e))
    }

    /// Physical region owned by `rank` (empty box if the rank owns nothing).
    pub fn rank_region(&self, rank: Rank) -> Aabb {
        self.rank_regions[rank.index()]
    }

    /// Number of elements owned by `rank` — the paper's per-rank `N_el`.
    pub fn elements_on_rank(&self, rank: Rank) -> usize {
        self.rank_element_counts[rank.index()]
    }

    /// Per-rank element counts for all ranks.
    pub fn element_counts(&self) -> &[usize] {
        &self.rank_element_counts
    }

    /// All element ids owned by `rank` (O(N_el) scan; intended for tests and
    /// setup, not hot loops).
    pub fn elements_of_rank(&self, rank: Rank) -> Vec<ElementId> {
        self.element_owner
            .iter()
            .enumerate()
            .filter(|&(_i, &r)| r == rank)
            .map(|(i, &_r)| ElementId::from_index(i))
            .collect()
    }

    /// Distinct ranks whose regions intersect the sphere at `center` with
    /// radius `radius`. The owning rank of `center` (if any) is included.
    ///
    /// This is the ghost-particle query: the particle at `center` with
    /// projection-filter radius `radius` is a ghost on every returned rank
    /// other than its residing rank.
    pub fn ranks_touching_sphere(
        &self,
        mesh: &ElementMesh,
        center: Vec3,
        radius: f64,
    ) -> Vec<Rank> {
        let query = Aabb::new(center, center).inflate(radius);
        let mut out: Vec<Rank> = Vec::new();
        for e in mesh.elements_in_aabb(&query) {
            let r = self.rank_of_element(e);
            if !out.contains(&r) && mesh.element_aabb(e).intersects_sphere(center, radius) {
                out.push(r);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshDims;

    fn mesh(n: usize) -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(n), 5).unwrap()
    }

    #[test]
    fn zero_ranks_is_error() {
        assert!(RcbDecomposition::decompose(&mesh(2), 0).is_err());
    }

    #[test]
    fn single_rank_owns_everything() {
        let m = mesh(3);
        let d = RcbDecomposition::decompose(&m, 1).unwrap();
        assert_eq!(d.ranks(), 1);
        assert_eq!(d.elements_on_rank(Rank::new(0)), 27);
        assert_eq!(d.rank_region(Rank::new(0)), m.domain());
    }

    #[test]
    fn every_element_is_owned_exactly_once() {
        let m = mesh(4);
        for r in [2, 3, 5, 8, 16, 64] {
            let d = RcbDecomposition::decompose(&m, r).unwrap();
            let total: usize = d.element_counts().iter().sum();
            assert_eq!(total, m.element_count(), "ranks={r}");
        }
    }

    #[test]
    fn power_of_two_split_is_exactly_balanced() {
        let m = mesh(4); // 64 elements
        let d = RcbDecomposition::decompose(&m, 8).unwrap();
        for r in Rank::all(8) {
            assert_eq!(d.elements_on_rank(r), 8);
        }
    }

    #[test]
    fn uneven_ranks_stay_nearly_balanced() {
        let m = mesh(6); // 216 elements
        let d = RcbDecomposition::decompose(&m, 5).unwrap();
        let counts = d.element_counts();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(min > 0.0);
        assert!(max / min <= 2.0, "counts {counts:?}");
    }

    #[test]
    fn more_ranks_than_elements_leaves_spares_empty() {
        let m = mesh(2); // 8 elements
        let d = RcbDecomposition::decompose(&m, 16).unwrap();
        let owned: usize = d.element_counts().iter().filter(|&&c| c > 0).count();
        assert_eq!(owned, 8);
        let total: usize = d.element_counts().iter().sum();
        assert_eq!(total, 8);
        // empty ranks report empty regions
        let empty_rank = Rank::all(16).find(|&r| d.elements_on_rank(r) == 0).unwrap();
        assert!(d.rank_region(empty_rank).is_empty());
    }

    #[test]
    fn regions_are_disjoint_bricks() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose(&m, 8).unwrap();
        // Region volumes must sum to the domain volume (bricks tile).
        let v: f64 = Rank::all(8).map(|r| d.rank_region(r).volume()).sum();
        assert!((v - m.domain().volume()).abs() < 1e-12);
        // Every owned element's box must be inside its rank region.
        for id in m.element_ids() {
            let r = d.rank_of_element(id);
            let eb = m.element_aabb(id);
            let rb = d.rank_region(r);
            assert!(rb.contains_closed(eb.min) && rb.contains_closed(eb.max));
        }
    }

    #[test]
    fn rank_of_point_matches_element_owner() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose(&m, 6).unwrap();
        for id in m.element_ids() {
            let c = m.element_centroid(id);
            assert_eq!(d.rank_of_point(&m, c), Some(d.rank_of_element(id)));
        }
        assert_eq!(d.rank_of_point(&m, Vec3::splat(5.0)), None);
    }

    #[test]
    fn elements_of_rank_consistent_with_counts() {
        let m = mesh(3);
        let d = RcbDecomposition::decompose(&m, 4).unwrap();
        for r in Rank::all(4) {
            assert_eq!(d.elements_of_rank(r).len(), d.elements_on_rank(r));
        }
    }

    #[test]
    fn sphere_query_includes_home_and_neighbours() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose(&m, 8).unwrap();
        // Point near the domain center with a radius reaching all octants.
        let c = Vec3::splat(0.5);
        let touched = d.ranks_touching_sphere(&m, c, 0.3);
        assert_eq!(touched.len(), 8, "center sphere should touch all 8 octants");
        // Tiny sphere strictly inside one element touches only its owner.
        let p = Vec3::splat(0.1);
        let touched = d.ranks_touching_sphere(&m, p, 0.01);
        assert_eq!(touched, vec![d.rank_of_point(&m, p).unwrap()]);
    }

    #[test]
    fn weighted_decomposition_balances_hot_corner() {
        // all weight in one corner octant: the weighted cuts must slice the
        // hot corner across ranks instead of splitting element counts evenly
        let m = mesh(8); // 512 elements
        let mut weights = vec![0.0f64; m.element_count()];
        for id in m.element_ids() {
            let c = m.element_centroid(id);
            if c.x < 0.25 && c.y < 0.25 && c.z < 0.25 {
                weights[id.index()] = 100.0;
            } else {
                weights[id.index()] = 1.0;
            }
        }
        let uniform = RcbDecomposition::decompose(&m, 8).unwrap();
        let weighted = RcbDecomposition::decompose_weighted(&m, 8, &weights).unwrap();
        let imb = |d: &RcbDecomposition| {
            let w = d.rank_weights(&weights);
            let max = w.iter().cloned().fold(0.0f64, f64::max);
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            max / mean
        };
        assert!(
            imb(&weighted) < imb(&uniform) * 0.5,
            "weighted {} vs uniform {}",
            imb(&weighted),
            imb(&uniform)
        );
        // still a complete decomposition
        let total: usize = weighted.element_counts().iter().sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn weighted_decomposition_validates_inputs() {
        let m = mesh(2);
        assert!(RcbDecomposition::decompose_weighted(&m, 0, &[1.0; 8]).is_err());
        assert!(RcbDecomposition::decompose_weighted(&m, 2, &[1.0; 7]).is_err());
        assert!(RcbDecomposition::decompose_weighted(&m, 2, &[-1.0; 8]).is_err());
        assert!(RcbDecomposition::decompose_weighted(&m, 2, &[f64::NAN; 8]).is_err());
    }

    #[test]
    fn weighted_with_uniform_weights_matches_count_balance() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose_weighted(&m, 8, &vec![1.0; 64]).unwrap();
        for r in Rank::all(8) {
            assert_eq!(d.elements_on_rank(r), 8);
        }
    }

    #[test]
    fn weighted_all_zero_weights_falls_back() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose_weighted(&m, 4, &vec![0.0; 64]).unwrap();
        let total: usize = d.element_counts().iter().sum();
        assert_eq!(total, 64);
        assert!(d.element_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn sphere_query_respects_radius() {
        let m = mesh(4);
        let d = RcbDecomposition::decompose(&m, 8).unwrap();
        let p = Vec3::new(0.45, 0.25, 0.25); // 0.05 away from the x=0.5 cut
        let home = d.rank_of_point(&m, p).unwrap();
        let small = d.ranks_touching_sphere(&m, p, 0.01);
        assert_eq!(small, vec![home]);
        let big = d.ranks_touching_sphere(&m, p, 0.1);
        assert!(big.len() > 1);
        assert!(big.contains(&home));
    }
}
