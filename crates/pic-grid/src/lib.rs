//! # pic-grid
//!
//! The Eulerian substrate of the framework: a structured spectral-element
//! mesh ([`ElementMesh`]), Gauss–Lobatto–Legendre intra-element grid points
//! ([`gll`]), and the recursive-coordinate-bisection decomposition of
//! elements onto processors ([`RcbDecomposition`]) that CMT-nek inherits
//! from Nek5000 (paper §III-A, ref \[20\]).
//!
//! The mesh is the *static* half of a PIC computation: elements never move,
//! so the decomposition is computed once; all irregularity comes from
//! particles moving across the (fixed) processor domains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod gll;
pub mod mesh;

pub use decomp::RcbDecomposition;
pub use mesh::{ElementMesh, MeshDims};
