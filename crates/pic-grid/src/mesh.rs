//! Structured spectral-element mesh.
//!
//! CMT-nek decomposes its computational domain into hexahedral *spectral
//! elements*, each carrying an `N × N × N` grid of Gauss–Lobatto–Legendre
//! points. For the workload generator only the element geometry matters:
//! which element a particle position falls in, what the element's bounding
//! box is, and which rank stores it. [`ElementMesh`] provides those queries
//! in O(1) for a structured brick of elements.

use pic_types::{Aabb, ElementId, PicError, Result, Vec3};
use serde::{Deserialize, Serialize};

/// Number of elements along each axis of the structured mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshDims {
    /// Elements along x.
    pub nx: usize,
    /// Elements along y.
    pub ny: usize,
    /// Elements along z.
    pub nz: usize,
}

impl MeshDims {
    /// Construct dims; all axes must be non-zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> MeshDims {
        MeshDims { nx, ny, nz }
    }

    /// A cube of `n` elements per side.
    pub fn cube(n: usize) -> MeshDims {
        MeshDims::new(n, n, n)
    }

    /// Total element count `nx * ny * nz`.
    pub fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Dims as an array `[nx, ny, nz]`.
    pub fn to_array(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }
}

/// A structured mesh of hexahedral spectral elements filling a box domain.
///
/// Elements are indexed in x-fastest (lexicographic) order:
/// `id = ix + nx * (iy + ny * iz)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElementMesh {
    domain: Aabb,
    dims: MeshDims,
    /// Edge length of one element on each axis.
    h: Vec3,
    /// Grid resolution within an element (GLL points per direction), the
    /// paper's parameter `N`.
    order: usize,
}

impl ElementMesh {
    /// Build a mesh of `dims` elements tiling `domain`, each element carrying
    /// `order`³ grid points (`order ≥ 2`).
    pub fn new(domain: Aabb, dims: MeshDims, order: usize) -> Result<ElementMesh> {
        if domain.is_empty() || domain.volume() <= 0.0 {
            return Err(PicError::geometry("mesh domain must have positive volume"));
        }
        if dims.nx == 0 || dims.ny == 0 || dims.nz == 0 {
            return Err(PicError::config("mesh dims must be non-zero on every axis"));
        }
        if order < 2 {
            return Err(PicError::config("element order (N) must be at least 2"));
        }
        let e = domain.extent();
        let h = Vec3::new(
            e.x / dims.nx as f64,
            e.y / dims.ny as f64,
            e.z / dims.nz as f64,
        );
        Ok(ElementMesh {
            domain,
            dims,
            h,
            order,
        })
    }

    /// The full mesh domain.
    pub fn domain(&self) -> Aabb {
        self.domain
    }

    /// Element counts per axis.
    pub fn dims(&self) -> MeshDims {
        self.dims
    }

    /// Total number of spectral elements (the paper's `N_el` at full scale).
    pub fn element_count(&self) -> usize {
        self.dims.count()
    }

    /// Grid resolution within an element (the paper's `N`).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total grid points in the mesh: `N_el * N³`.
    pub fn grid_point_count(&self) -> usize {
        self.element_count() * self.order.pow(3)
    }

    /// Element edge lengths.
    pub fn element_size(&self) -> Vec3 {
        self.h
    }

    /// Lexicographic element id from per-axis indices.
    ///
    /// Panics in debug builds if an index is out of range.
    #[inline]
    pub fn element_id(&self, ix: usize, iy: usize, iz: usize) -> ElementId {
        debug_assert!(ix < self.dims.nx && iy < self.dims.ny && iz < self.dims.nz);
        ElementId::from_index(ix + self.dims.nx * (iy + self.dims.ny * iz))
    }

    /// Per-axis indices of an element id.
    #[inline]
    pub fn element_indices(&self, id: ElementId) -> (usize, usize, usize) {
        let i = id.index();
        let ix = i % self.dims.nx;
        let iy = (i / self.dims.nx) % self.dims.ny;
        let iz = i / (self.dims.nx * self.dims.ny);
        (ix, iy, iz)
    }

    /// The element containing point `p`, or `None` if `p` lies outside the
    /// domain. Points exactly on the domain's max face are clamped into the
    /// last element so that closed-domain particles always map somewhere.
    #[inline]
    pub fn element_of_point(&self, p: Vec3) -> Option<ElementId> {
        if !self.domain.contains_closed(p) {
            return None;
        }
        let rel = p - self.domain.min;
        let clamp_idx = |v: f64, h: f64, n: usize| -> usize {
            let i = (v / h).floor() as isize;
            i.clamp(0, n as isize - 1) as usize
        };
        let ix = clamp_idx(rel.x, self.h.x, self.dims.nx);
        let iy = clamp_idx(rel.y, self.h.y, self.dims.ny);
        let iz = clamp_idx(rel.z, self.h.z, self.dims.nz);
        Some(self.element_id(ix, iy, iz))
    }

    /// Blocked structure-of-arrays element location: for each position
    /// `(xs[i], ys[i], zs[i])`, clamp it onto the domain and write the
    /// containing element's lexicographic index to `out[i]` (`out` is
    /// resized to the input length).
    ///
    /// Bit-identical to `clamp` + [`element_of_point`](Self::element_of_point)
    /// per particle — same component-wise `max`/`min` clamp, same
    /// `((q - min)/h).floor()` index arithmetic — but laid out as three
    /// independent per-axis passes over fixed-width lanes so the compiler
    /// can vectorize the clamp/divide/floor chain. NaN coordinates clamp to
    /// `domain.min` (`f64::max`/`min` ignore NaN), exactly as the scalar
    /// path does.
    pub fn locate_clamped_soa(&self, xs: &[f64], ys: &[f64], zs: &[f64], out: &mut Vec<u32>) {
        assert_eq!(xs.len(), ys.len());
        assert_eq!(xs.len(), zs.len());
        let n = xs.len();
        out.clear();
        out.resize(n, 0);
        let (dmin, dmax) = (self.domain.min, self.domain.max);
        // Per-axis pass: out accumulates ix + nx*(iy + ny*iz) incrementally.
        let axis = |coords: &[f64],
                    lo: f64,
                    hi: f64,
                    h: f64,
                    n_ax: usize,
                    stride: u32,
                    out: &mut [u32]| {
            let max_i = n_ax as isize - 1;
            for (o, &v) in out.iter_mut().zip(coords) {
                let q = v.max(lo).min(hi);
                let i = ((q - lo) / h).floor() as isize;
                *o += stride * i.clamp(0, max_i) as u32;
            }
        };
        axis(xs, dmin.x, dmax.x, self.h.x, self.dims.nx, 1, out);
        axis(
            ys,
            dmin.y,
            dmax.y,
            self.h.y,
            self.dims.ny,
            self.dims.nx as u32,
            out,
        );
        axis(
            zs,
            dmin.z,
            dmax.z,
            self.h.z,
            self.dims.nz,
            (self.dims.nx * self.dims.ny) as u32,
            out,
        );
    }

    /// Bounding box of element `id`.
    pub fn element_aabb(&self, id: ElementId) -> Aabb {
        let (ix, iy, iz) = self.element_indices(id);
        let min = self.domain.min
            + Vec3::new(
                ix as f64 * self.h.x,
                iy as f64 * self.h.y,
                iz as f64 * self.h.z,
            );
        Aabb::new(min, min + self.h)
    }

    /// Centroid of element `id`.
    pub fn element_centroid(&self, id: ElementId) -> Vec3 {
        self.element_aabb(id).center()
    }

    /// Face-adjacent neighbour elements of `id` (up to 6).
    pub fn neighbors(&self, id: ElementId) -> Vec<ElementId> {
        let (ix, iy, iz) = self.element_indices(id);
        let mut out = Vec::with_capacity(6);
        let dims = [self.dims.nx, self.dims.ny, self.dims.nz];
        let idx = [ix, iy, iz];
        for axis in 0..3 {
            for delta in [-1isize, 1] {
                let v = idx[axis] as isize + delta;
                if v >= 0 && (v as usize) < dims[axis] {
                    let mut n = idx;
                    n[axis] = v as usize;
                    out.push(self.element_id(n[0], n[1], n[2]));
                }
            }
        }
        out
    }

    /// All element ids whose boxes intersect `query` (closed comparison).
    ///
    /// Runs in O(k) where k is the number of overlapped elements, by
    /// intersecting index ranges rather than scanning all elements. Used to
    /// find the processor domains a particle's projection-filter sphere
    /// touches.
    pub fn elements_in_aabb(&self, query: &Aabb) -> Vec<ElementId> {
        let mut out = Vec::new();
        if !self.domain.intersects(query) {
            return out;
        }
        let lo = (query.min - self.domain.min).max(Vec3::ZERO);
        let hi = (query.max - self.domain.min).min(self.domain.extent());
        let range = |v_lo: f64, v_hi: f64, h: f64, n: usize| -> (usize, usize) {
            let a = ((v_lo / h).floor() as isize).clamp(0, n as isize - 1) as usize;
            let b = ((v_hi / h).floor() as isize).clamp(0, n as isize - 1) as usize;
            (a, b)
        };
        let (x0, x1) = range(lo.x, hi.x, self.h.x, self.dims.nx);
        let (y0, y1) = range(lo.y, hi.y, self.h.y, self.dims.ny);
        let (z0, z1) = range(lo.z, hi.z, self.h.z, self.dims.nz);
        for iz in z0..=z1 {
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    out.push(self.element_id(ix, iy, iz));
                }
            }
        }
        out
    }

    /// Iterate over all element ids in lexicographic order.
    pub fn element_ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.element_count()).map(ElementId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(ElementMesh::new(Aabb::unit(), MeshDims::new(0, 1, 1), 5).is_err());
        assert!(ElementMesh::new(Aabb::unit(), MeshDims::cube(2), 1).is_err());
        assert!(ElementMesh::new(Aabb::empty(), MeshDims::cube(2), 5).is_err());
        let m = mesh4();
        assert_eq!(m.element_count(), 64);
        assert_eq!(m.grid_point_count(), 64 * 125);
        assert_eq!(m.order(), 5);
    }

    #[test]
    fn id_index_roundtrip() {
        let m = mesh4();
        for id in m.element_ids() {
            let (ix, iy, iz) = m.element_indices(id);
            assert_eq!(m.element_id(ix, iy, iz), id);
        }
    }

    #[test]
    fn point_lookup_matches_aabb() {
        let m = mesh4();
        for id in m.element_ids() {
            let c = m.element_centroid(id);
            assert_eq!(m.element_of_point(c), Some(id));
            assert!(m.element_aabb(id).contains(c));
        }
    }

    #[test]
    fn outside_points_return_none() {
        let m = mesh4();
        assert_eq!(m.element_of_point(Vec3::new(1.5, 0.5, 0.5)), None);
        assert_eq!(m.element_of_point(Vec3::new(-0.1, 0.5, 0.5)), None);
    }

    #[test]
    fn max_face_points_are_owned() {
        let m = mesh4();
        // Point exactly on the domain max corner maps into the last element.
        let last = m.element_id(3, 3, 3);
        assert_eq!(m.element_of_point(Vec3::ONE), Some(last));
    }

    #[test]
    fn soa_locate_matches_scalar_clamped_lookup() {
        let m = ElementMesh::new(
            Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 2.0, 5.0)),
            MeshDims::new(5, 3, 7),
            4,
        )
        .unwrap();
        let mut pts = Vec::new();
        // Interior lattice + out-of-domain + NaN + exact max-face points.
        for i in 0..200 {
            let t = i as f64 * 0.0137;
            pts.push(Vec3::new(-2.0 + t * 4.0, -1.0 + t * 2.5, 1.0 + t * 3.0));
        }
        pts.push(Vec3::new(f64::NAN, 1.0, 3.0));
        pts.push(Vec3::new(3.0, 2.0, 5.0)); // domain max corner
        pts.push(Vec3::splat(f64::INFINITY));
        pts.push(Vec3::splat(f64::NEG_INFINITY));
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let zs: Vec<f64> = pts.iter().map(|p| p.z).collect();
        let mut out = Vec::new();
        m.locate_clamped_soa(&xs, &ys, &zs, &mut out);
        assert_eq!(out.len(), pts.len());
        for (p, &e) in pts.iter().zip(&out) {
            let q = p.clamp(m.domain().min, m.domain().max);
            let want = m.element_of_point(q).unwrap();
            assert_eq!(e as usize, want.index(), "p={p}");
        }
    }

    #[test]
    fn element_boxes_tile_domain() {
        let m = mesh4();
        let total: f64 = m.element_ids().map(|id| m.element_aabb(id).volume()).sum();
        assert!((total - m.domain().volume()).abs() < 1e-12);
    }

    #[test]
    fn neighbors_counts() {
        let m = mesh4();
        // corner element: 3 neighbours
        assert_eq!(m.neighbors(m.element_id(0, 0, 0)).len(), 3);
        // face-center element: 5 neighbours
        assert_eq!(m.neighbors(m.element_id(1, 1, 0)).len(), 5);
        // interior element: 6 neighbours
        assert_eq!(m.neighbors(m.element_id(1, 1, 1)).len(), 6);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = mesh4();
        for id in m.element_ids() {
            for n in m.neighbors(id) {
                assert!(m.neighbors(n).contains(&id), "{id} <-> {n}");
            }
        }
    }

    #[test]
    fn elements_in_aabb_exact() {
        let m = mesh4();
        // a box covering exactly the first octant (2x2x2 elements)
        let q = Aabb::new(Vec3::ZERO, Vec3::splat(0.49));
        let hits = m.elements_in_aabb(&q);
        assert_eq!(hits.len(), 8);
        // sphere-sized query around a single centroid
        let c = m.element_centroid(m.element_id(2, 2, 2));
        let q = Aabb::new(c - Vec3::splat(0.01), c + Vec3::splat(0.01));
        assert_eq!(m.elements_in_aabb(&q), vec![m.element_id(2, 2, 2)]);
        // disjoint query
        let q = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(m.elements_in_aabb(&q).is_empty());
    }

    #[test]
    fn elements_in_aabb_is_consistent_with_intersects() {
        let m = mesh4();
        let q = Aabb::new(Vec3::new(0.2, 0.3, 0.4), Vec3::new(0.8, 0.6, 0.9));
        let brute: Vec<_> = m
            .element_ids()
            .filter(|&id| m.element_aabb(id).intersects(&q))
            .collect();
        let fast = m.elements_in_aabb(&q);
        assert_eq!(brute, fast);
    }
}
