//! `picpredict` — command-line front end for the prediction framework.
//!
//! ```text
//! picpredict run       --config cfg.json --trace out.pictrace --records rec.json
//! picpredict workload  --trace t.pictrace --ranks 128 --mapping bin-based
//!                      [--stream true] [--filter 0.03] [--mesh 6x6x6 --order 3] [--out dir]
//! picpredict fit       --records rec.json --out models.json [--strategy linear|auto]
//! picpredict predict   --trace t.pictrace --models models.json --ranks 128
//!                      [--mapping bin-based] [--machine quartz|vulcan|localhost]
//!                      [--mesh 6x6x6 --order 3] [--filter 0.03] [--sync barrier|neighbor]
//! picpredict extrapolate --trace t.pictrace --out big.pictrace --particles 100000
//! ```
//!
//! `run` executes the mini PIC application and writes the trace + timing
//! records; the other commands never touch the application again — they
//! are the paper's "predict anything from one trace" workflow. Every
//! trace-consuming command sniffs the file magic and accepts either the
//! raw (`PICTRC01`) or the compact delta-encoded (`PICTRC02`) format;
//! `compact` converts between them and `simpoint` replays a clustered
//! reduction of the trace instead of every sample.
#![forbid(unsafe_code)]

use pic_des::{MachineSpec, SyncMode};
use pic_grid::{ElementMesh, MeshDims};
use pic_mapping::MappingAlgorithm;
use pic_predict::{
    build_schedule, kernel_models::FitStrategy, predict_application_with_stats,
    predict_kernel_seconds, KernelModels,
};
use pic_sim::{MiniPic, Recorder, SimConfig};
use pic_trace::codec;
use pic_types::{Aabb, PicError, Result};
use pic_workload::generator::{self, WorkloadConfig};
use pic_workload::metrics;
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            1
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "usage:
  picpredict run --config cfg.json --trace out.pictrace [--records rec.json] [--precision f64|f32]
  picpredict default-config                 # print a template configuration
  picpredict info --trace t.pictrace        # trace metadata and statistics
  picpredict check [--workload w.json] [--particles N | --trace t.pictrace] [--models m.json] [--pipeline true] [--serve true] [--des true]
  picpredict workload --trace t.pictrace --ranks N --mapping M [--stream true] [--filter F] [--mesh AxBxC --order K] [--out DIR]
  picpredict benchmark --out rec.json [--wallclock true] [--order K] [--filter F]
  picpredict fit --records rec.json --out models.json [--strategy linear|auto]
  picpredict predict --trace t.pictrace --models models.json --ranks N [--mapping M] [--machine NAME] [--sync barrier|neighbor] [--mesh AxBxC --order K] [--filter F]
  picpredict extrapolate --trace t.pictrace --out big.pictrace --particles N [--seed S]
  picpredict study scalability --trace T --ranks 16,32,64 --mapping M [--filter F] [--mesh AxBxC --order K]
  picpredict study bins --trace T --filter F
  picpredict study sampling --trace T --ranks N --mapping M --strides 1,2,4 [--filter F] [--mesh AxBxC]
  picpredict sweep --trace T --ranks 16,32 [--mappings M1,M2] [--filters F1,F2] [--strides 1,2]
                   [--ghosts false] [--stream true] [--mesh AxBxC --order K] [--out grid.json]
  picpredict simpoint --trace T --ranks N --mapping M [--k K] [--k-max 16] [--seed S] [--bins B]
                      [--features spatial|full]
                      [--filter F] [--mesh AxBxC --order K] [--budget 0.02] [--holdout 8]
                      [--plan-out plan.json] [--out workload.json]
  picpredict compact --trace t.pictrace --out t.pictrcz [--precision f64|f32]
  picpredict serve [--addr 127.0.0.1:7070] [--budget-mb 512] [--read-timeout-ms 2000] [--max-body-mb 256]

global flags:
  --threads N    run the command under an N-thread pool (default: shared
                 pool sized from RAYON_NUM_THREADS or machine parallelism)";

/// Parse `--key value` flags into a map; bare words are positional.
fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::new());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| PicError::config(format!("missing required flag --{key}")))
}

fn parse_mapping(s: &str) -> Result<MappingAlgorithm> {
    serde_json::from_str(&format!("\"{s}\""))
        .map_err(|_| PicError::config(format!("unknown mapping '{s}'")))
}

fn parse_machine(s: &str) -> Result<MachineSpec> {
    match s {
        "quartz" | "quartz-like" => Ok(MachineSpec::quartz_like()),
        "vulcan" | "vulcan-like" => Ok(MachineSpec::vulcan_like()),
        "localhost" => Ok(MachineSpec::localhost(8)),
        path => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                PicError::config(format!(
                    "machine '{s}' is not a preset and not a readable file: {e}"
                ))
            })?;
            serde_json::from_str(&text)
                .map_err(|e| PicError::config(format!("bad machine JSON in {path}: {e}")))
        }
    }
}

/// Load a whole trace file in either on-disk format, sniffed by magic —
/// raw `PICTRC01` or compact delta-encoded `PICTRC02`.
fn load_trace(path: &str) -> Result<pic_trace::ParticleTrace> {
    pic_trace::compact::load_file_any(path)
}

fn parse_mesh(flags: &HashMap<String, String>, domain: Aabb) -> Result<Option<ElementMesh>> {
    let Some(spec) = flags.get("mesh") else {
        return Ok(None);
    };
    let dims: Vec<usize> = spec
        .split('x')
        .map(|p| {
            p.parse()
                .map_err(|_| PicError::config(format!("bad mesh spec '{spec}'")))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(PicError::config("mesh spec must be AxBxC"));
    }
    let order: usize = flags
        .get("order")
        .map(|s| s.parse().unwrap_or(3))
        .unwrap_or(3);
    Ok(Some(ElementMesh::new(
        domain,
        MeshDims::new(dims[0], dims[1], dims[2]),
        order,
    )?))
}

fn dispatch(args: &[String]) -> Result<()> {
    let (positional, flags) = parse_flags(args);
    let cmd = positional.first().map(|s| s.as_str()).unwrap_or("");
    // Global `--threads N`: run the whole command under a pool of that
    // size. Without it, the shared-pool policy applies (pool sized from
    // `RAYON_NUM_THREADS`, falling back to the machine's parallelism).
    if let Some(spec) = flags.get("threads") {
        let n: usize = spec
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| PicError::config("--threads must be a positive integer"))?;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .map_err(|e| PicError::config(format!("cannot build {n}-thread pool: {e}")))?;
        return pool.install(|| dispatch_cmd(cmd, &positional, &flags));
    }
    dispatch_cmd(cmd, &positional, &flags)
}

fn dispatch_cmd(cmd: &str, positional: &[String], flags: &HashMap<String, String>) -> Result<()> {
    match cmd {
        "run" => cmd_run(flags),
        "default-config" => {
            println!("{}", SimConfig::default().to_json());
            Ok(())
        }
        "info" => cmd_info(flags),
        "check" => cmd_check(flags),
        "workload" => cmd_workload(flags),
        "benchmark" => cmd_benchmark(flags),
        "fit" => cmd_fit(flags),
        "predict" => cmd_predict(flags),
        "extrapolate" => cmd_extrapolate(flags),
        "study" => cmd_study(positional.get(1).map(String::as_str).unwrap_or(""), flags),
        "sweep" => cmd_sweep(flags),
        "simpoint" => cmd_simpoint(flags),
        "compact" => cmd_compact(flags),
        "serve" => cmd_serve(flags),
        "" => Err(PicError::config("no command given")),
        other => Err(PicError::config(format!("unknown command '{other}'"))),
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<()> {
    let cfg_path = required(flags, "config")?;
    let trace_path = required(flags, "trace")?;
    let cfg = SimConfig::from_json(&std::fs::read_to_string(cfg_path)?)?;
    eprintln!(
        "running: {} particles / {} elements / {} ranks / {} mapping / {} steps",
        cfg.particles,
        cfg.element_count(),
        cfg.ranks,
        cfg.mapping,
        cfg.steps
    );
    let t0 = std::time::Instant::now();
    let out = MiniPic::new(cfg)?.run()?;
    eprintln!(
        "application finished in {:.2} s",
        t0.elapsed().as_secs_f64()
    );
    let precision = match flags.get("precision").map(|s| s.as_str()) {
        Some("f32") => codec::Precision::F32,
        _ => codec::Precision::F64,
    };
    codec::save_file(&out.trace, trace_path, precision)?;
    eprintln!(
        "trace: {} samples x {} particles -> {}",
        out.trace.sample_count(),
        out.trace.particle_count(),
        trace_path
    );
    if let Some(records_path) = flags.get("records") {
        std::fs::write(records_path, out.recorder.to_json())?;
        eprintln!(
            "records: {} kernel timings -> {}",
            out.recorder.len(),
            records_path
        );
    }
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<()> {
    let trace = load_trace(required(flags, "trace")?)?;
    let meta = trace.meta();
    println!("description:     {}", meta.description);
    println!("particles:       {}", meta.particle_count);
    println!("samples:         {}", trace.sample_count());
    println!("sample interval: {} iterations", meta.sample_interval);
    println!("domain:          {}", meta.domain);
    let vols = pic_trace::stats::boundary_volume_series(&trace);
    if let (Some(first), Some(last)) = (vols.first(), vols.last()) {
        println!("boundary volume: {first:.4e} -> {last:.4e}");
    }
    println!(
        "max step move:   {:.4e}",
        pic_trace::stats::max_step_displacement(&trace)
    );
    Ok(())
}

/// Static verification driver: workload invariant catalog, kernel-model
/// admission + expression analysis, the pipeline interleaving matrix, and
/// the serve-layer protocol models (`--serve true`: single-flight, LRU
/// accounting, shutdown handshake — explored with ample-set reduction and
/// lasso liveness, plus the seeded-mutant corpus, every one of which must
/// be caught), and the DES batching-soundness model (`--des true`: every
/// causal processing order of a bulk-synchronous step must reach the
/// barrier fast path's closed-form time, with its own mutant corpus).
/// Exits nonzero if any check fails; warnings alone do not fail the run.
fn cmd_check(flags: &HashMap<String, String>) -> Result<()> {
    let mut ran_any = false;
    let mut failures = 0usize;

    if let Some(path) = flags.get("workload") {
        ran_any = true;
        let w: pic_workload::DynamicWorkload =
            serde_json::from_str(&std::fs::read_to_string(path)?)
                .map_err(|e| PicError::config(format!("bad workload JSON in {path}: {e}")))?;
        // the conservation reference: explicit flag, else the trace header
        let expected: Option<u64> = match flags.get("particles") {
            Some(n) => Some(
                n.parse()
                    .map_err(|_| PicError::config("--particles must be an integer"))?,
            ),
            None => match flags.get("trace") {
                Some(tp) => {
                    let file = std::fs::File::open(tp)?;
                    let reader = pic_trace::AnyTraceReader::new(std::io::BufReader::new(file))?;
                    Some(reader.meta().particle_count as u64)
                }
                None => None,
            },
        };
        let violations = pic_analysis::check_workload(&w, expected);
        if violations.is_empty() {
            println!(
                "workload {path}: OK ({} ranks x {} samples, all invariants hold)",
                w.ranks,
                w.samples()
            );
        } else {
            for v in &violations {
                eprintln!("error: {v}");
            }
            eprintln!("workload {path}: {} violation(s)", violations.len());
            failures += violations.len();
        }
    }

    if let Some(path) = flags.get("models") {
        ran_any = true;
        // from_json runs the admission pass: corrupt models error out here
        // with positioned diagnostics
        let models = KernelModels::from_json(&std::fs::read_to_string(path)?)?;
        let mut warnings = 0usize;
        for km in models.models() {
            if let pic_models::FittedModel::Symbolic(sm) = &km.model {
                let space = pic_analysis::FeatureSpace::unconstrained(km.feature_columns.len());
                let report = pic_analysis::analyze_expr(&sm.expr, &space);
                for d in &report.diagnostics {
                    println!("{}: {d}", km.kernel);
                    if d.severity == pic_analysis::Severity::Warning {
                        warnings += 1;
                    }
                }
                // Differential check: the compiled tape predictions run on
                // must match the tree evaluator on the space's corners.
                pic_analysis::check_compiled_equivalence(&sm.expr, &space)
                    .map_err(|e| PicError::model(format!("kernel '{}': {e}", km.kernel)))?;
            }
        }
        println!(
            "models {path}: OK ({} kernel model(s) admitted, {warnings} warning(s))",
            models.models().len()
        );
    }

    if flags.get("pipeline").map(|v| v != "false").unwrap_or(false) {
        ran_any = true;
        let stats = pic_analysis::verify_streaming_shutdown()
            .map_err(|e| PicError::model(format!("pipeline interleaving check failed: {e}")))?;
        println!(
            "pipeline: OK ({} states, {} terminal, {} transitions explored — no hangs or leaks)",
            stats.states, stats.terminal_states, stats.transitions
        );
    }

    if flags.get("serve").map(|v| v != "false").unwrap_or(false) {
        ran_any = true;
        // Exhaustive exploration of the three serve concurrency protocols
        // over their configuration matrices — any deadlock, liveness
        // lasso, or invariant breach comes back as a replayable schedule.
        let verdicts = pic_analysis::verify_serve_protocols()
            .map_err(|e| PicError::model(format!("serve protocol check failed: {e}")))?;
        for v in &verdicts {
            let full = match v.full {
                Some(f) => format!(
                    "full {} states, reduction {:.1}x",
                    f.states,
                    v.reduction_factor().unwrap_or(1.0)
                ),
                None => "full run skipped (reduced exploration already large)".to_string(),
            };
            println!(
                "serve {:>13} [{}]: OK — reduced {} states / {} terminal / {} ample; {}",
                v.model,
                v.config,
                v.reduced.states,
                v.reduced.terminal_states,
                v.reduced.ample_states,
                full
            );
        }
        println!(
            "serve protocols: OK ({} configuration(s) deadlock-, lost-wakeup-, and leak-free)",
            verdicts.len()
        );
        // The seeded-mutant corpus proves the checker's teeth: one
        // representative bug per class, each of which must be CAUGHT.
        let outcomes = pic_analysis::serve_mutant_corpus();
        let mut caught = 0usize;
        for o in &outcomes {
            if o.caught {
                caught += 1;
                println!("serve mutant {:<28} caught: {}", o.name, o.detail);
            } else {
                eprintln!("error: serve mutant {} ESCAPED: {}", o.name, o.detail);
                failures += 1;
            }
        }
        println!("serve mutants: {caught}/{} caught", outcomes.len());
    }

    if flags.get("des").map(|v| v != "false").unwrap_or(false) {
        ran_any = true;
        // Batching soundness for the DES barrier fast path: every causal
        // processing order of a bulk-synchronous step (compute completions,
        // inlined deliveries, redundant probes) must reach the closed-form
        // barrier time the fast path computes directly.
        let verdicts = pic_analysis::verify_des_batching()
            .map_err(|e| PicError::model(format!("des batching check failed: {e}")))?;
        for v in &verdicts {
            println!(
                "des {:>17}: OK — {} states / {} terminal / {} transitions, all orders reach the closed form",
                v.config, v.exploration.states, v.exploration.terminal_states, v.exploration.transitions
            );
        }
        println!(
            "des batching: OK ({} configuration(s), every causal order matches the fast path)",
            verdicts.len()
        );
        let outcomes = pic_analysis::des_batch_mutants();
        let mut caught = 0usize;
        for (name, was_caught) in &outcomes {
            if *was_caught {
                caught += 1;
                println!("des mutant {name:<20} caught");
            } else {
                eprintln!("error: des mutant {name} ESCAPED");
                failures += 1;
            }
        }
        println!("des mutants: {caught}/{} caught", outcomes.len());
    }

    if !ran_any {
        return Err(PicError::config(
            "nothing to check: pass --workload, --models, --pipeline true, --serve true, and/or --des true",
        ));
    }
    if failures > 0 {
        // diagnostics were already printed, positioned; no usage dump
        eprintln!("check failed with {failures} violation(s)");
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_workload(flags: &HashMap<String, String>) -> Result<()> {
    let trace_path = required(flags, "trace")?;
    let ranks: usize = required(flags, "ranks")?
        .parse()
        .map_err(|_| PicError::config("--ranks must be an integer"))?;
    let mapping = parse_mapping(required(flags, "mapping")?)?;
    let filter: f64 = flags
        .get("filter")
        .map(|s| s.parse().unwrap_or(0.03))
        .unwrap_or(0.03);
    let cfg = WorkloadConfig::new(ranks, mapping, filter);
    let streaming = flags.get("stream").map(|v| v != "false").unwrap_or(false);
    let t0 = std::time::Instant::now();
    // `--stream` replays the trace through the bounded pipeline without
    // ever loading it whole — the path for traces larger than memory. A
    // truncated or corrupt file fails here with a byte-positioned error.
    let (w, ingest, particles) = if streaming {
        let file = std::fs::File::open(trace_path)?;
        let reader = pic_trace::AnyTraceReader::new(std::io::BufReader::new(file))?;
        let particles = reader.meta().particle_count as u64;
        let mesh = parse_mesh(flags, reader.meta().domain)?;
        let (w, stats) = generator::generate_streaming_with_stats(reader, &cfg, mesh.as_ref())?;
        (w, Some(stats), particles)
    } else {
        let trace = load_trace(trace_path)?;
        let particles = trace.meta().particle_count as u64;
        let mesh = parse_mesh(flags, trace.meta().domain)?;
        (
            generator::generate_with_mesh(&trace, &cfg, mesh.as_ref())?,
            None,
            particles,
        )
    };
    eprintln!("workload generated in {:.2} s", t0.elapsed().as_secs_f64());
    // defense in depth: a generator bug (or a corrupted trace that decoded
    // cleanly) must not propagate silently into predictions
    pic_analysis::assert_workload_valid(&w, Some(particles))?;
    if let Some(stats) = &ingest {
        let json = serde_json::to_string_pretty(stats)
            .map_err(|e| PicError::config(format!("cannot serialize ingest stats: {e}")))?;
        println!("ingest stats: {json}");
    }

    let summary = metrics::summarize(&w);
    println!("ranks:                {}", summary.ranks);
    println!("samples:              {}", summary.samples);
    println!("peak workload:        {}", summary.peak_workload);
    println!(
        "resource utilization: {:.2}%",
        100.0 * summary.resource_utilization
    );
    println!(
        "mean idle fraction:   {:.2}%",
        100.0 * summary.mean_idle_fraction
    );
    println!("mean imbalance:       {:.2}", summary.mean_imbalance);
    println!("total migrations:     {}", summary.total_migrations);
    if let Some(bins) = summary.max_bins {
        println!("max bins:             {bins}");
    }
    if let Some(dir) = flags.get("out") {
        std::fs::create_dir_all(dir)?;
        std::fs::write(format!("{dir}/comp_real.csv"), w.real.to_csv())?;
        std::fs::write(format!("{dir}/comp_ghost_recv.csv"), w.ghost_recv.to_csv())?;
        let mut comm = String::from("sample,from,to,count\n");
        for (t, entries) in w.comm.entries.iter().enumerate() {
            for &(f, to, c) in entries {
                comm.push_str(&format!("{t},{f},{to},{c}\n"));
            }
        }
        std::fs::write(format!("{dir}/comm.csv"), comm)?;
        // the full workload as JSON — the input format of `picpredict check`
        let json = serde_json::to_string_pretty(&w)
            .map_err(|e| PicError::config(format!("cannot serialize workload: {e}")))?;
        std::fs::write(format!("{dir}/workload.json"), json)?;
        eprintln!("matrices written to {dir}/");
    }
    Ok(())
}

/// Kernel benchmarking sweep (paper §II-B): the preferred way to produce
/// training data, since it varies every workload parameter independently —
/// unlike a single application run, whose balanced mapping keeps `N_p`
/// nearly constant across ranks.
fn cmd_benchmark(flags: &HashMap<String, String>) -> Result<()> {
    let mut sweep = pic_sim::SweepConfig::default();
    if let Some(order) = flags.get("order") {
        sweep.order = order
            .parse()
            .map_err(|_| PicError::config("--order must be an integer"))?;
    }
    if let Some(filter) = flags.get("filter") {
        sweep.projection_filter = filter
            .parse()
            .map_err(|_| PicError::config("--filter must be a number"))?;
    }
    if flags
        .get("wallclock")
        .map(|v| v != "false")
        .unwrap_or(false)
    {
        sweep.timing = pic_sim::config::TimingMode::WallClock;
    }
    eprintln!(
        "benchmarking {} kernel observations ({:?} mode)...",
        sweep.record_count(),
        if matches!(sweep.timing, pic_sim::config::TimingMode::WallClock) {
            "wall-clock"
        } else {
            "oracle"
        }
    );
    let t0 = std::time::Instant::now();
    let rec = pic_sim::benchmark_kernels(&sweep)?;
    eprintln!("sweep finished in {:.2} s", t0.elapsed().as_secs_f64());
    let out = required(flags, "out")?;
    std::fs::write(out, rec.to_json())?;
    eprintln!("records: {} -> {out}", rec.len());
    Ok(())
}

fn cmd_fit(flags: &HashMap<String, String>) -> Result<()> {
    let recorder = Recorder::from_json(&std::fs::read_to_string(required(flags, "records")?)?)?;
    let strategy = match flags.get("strategy").map(|s| s.as_str()) {
        Some("linear") | None => FitStrategy::Linear,
        Some("auto") => FitStrategy::default(),
        Some(other) => return Err(PicError::config(format!("unknown strategy '{other}'"))),
    };
    let models = KernelModels::fit(&recorder, &strategy, 42)?;
    print!("{}", models.describe());
    println!(
        "average validation MAPE: {:.2}%",
        models.mean_validation_mape()
    );
    let out = required(flags, "out")?;
    std::fs::write(out, models.to_json())?;
    eprintln!("models -> {out}");
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<()> {
    let trace = load_trace(required(flags, "trace")?)?;
    let models = KernelModels::from_json(&std::fs::read_to_string(required(flags, "models")?)?)?;
    let ranks: usize = required(flags, "ranks")?
        .parse()
        .map_err(|_| PicError::config("--ranks must be an integer"))?;
    let mapping = parse_mapping(
        flags
            .get("mapping")
            .map(|s| s.as_str())
            .unwrap_or("bin-based"),
    )?;
    let filter: f64 = flags
        .get("filter")
        .map(|s| s.parse().unwrap_or(0.03))
        .unwrap_or(0.03);
    let machine = parse_machine(flags.get("machine").map(|s| s.as_str()).unwrap_or("quartz"))?;
    let sync = match flags.get("sync").map(|s| s.as_str()) {
        Some("neighbor") => SyncMode::NeighborSync,
        _ => SyncMode::BulkSynchronous,
    };
    let mesh = parse_mesh(flags, trace.meta().domain)?;
    let order = flags
        .get("order")
        .map(|s| s.parse().unwrap_or(3))
        .unwrap_or(3);

    let wcfg = WorkloadConfig::new(ranks, mapping, filter);
    let w = generator::generate_with_mesh(&trace, &wcfg, mesh.as_ref())?;
    // fluid share: uniform unless a mesh is given
    let elements: Vec<u32> = match &mesh {
        Some(m) => {
            let d = pic_grid::RcbDecomposition::decompose(m, ranks)?;
            d.element_counts().iter().map(|&c| c as u32).collect()
        }
        None => vec![0; ranks],
    };
    let predicted = predict_kernel_seconds(&w, &models, &elements, order, filter);
    let schedule = build_schedule(
        &w,
        &predicted,
        trace.meta().sample_interval,
        pic_predict::pipeline::bytes_per_particle(),
    );
    let (timeline, des) = predict_application_with_stats(&schedule, &machine, sync)?;
    // machine-readable result on stdout, human summary on stderr
    #[derive(serde::Serialize)]
    struct PredictOutput {
        machine: String,
        sync: SyncMode,
        predicted_seconds: f64,
        mean_idle_fraction: f64,
        events_processed: u64,
        des_queue: &'static str,
        des_barrier_fast_path: bool,
        des_wall_seconds: f64,
        samples: usize,
        ranks: usize,
    }
    let out = PredictOutput {
        machine: machine.name.clone(),
        sync,
        predicted_seconds: timeline.total_seconds,
        mean_idle_fraction: timeline.mean_idle_fraction(),
        events_processed: des.events_processed,
        des_queue: des.queue,
        des_barrier_fast_path: des.barrier_fast_path,
        des_wall_seconds: des.wall_seconds,
        samples: schedule.len(),
        ranks,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&out)
            .map_err(|e| PicError::config(format!("cannot serialize prediction: {e}")))?
    );
    eprintln!("machine:             {}", machine.name);
    eprintln!("sync mode:           {sync:?}");
    eprintln!("predicted time:      {:.6} s", timeline.total_seconds);
    eprintln!(
        "mean idle fraction:  {:.2}%",
        100.0 * timeline.mean_idle_fraction()
    );
    eprintln!(
        "events processed:    {} (queue={}, {:.3} s simulator wall time)",
        des.events_processed, des.queue, des.wall_seconds
    );
    Ok(())
}

fn parse_usize_list(s: &str, what: &str) -> Result<Vec<usize>> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| PicError::config(format!("bad {what} entry '{p}'")))
        })
        .collect()
}

/// The paper's three analysis drivers plus the sampling-frequency study,
/// straight from the command line.
fn cmd_study(kind: &str, flags: &HashMap<String, String>) -> Result<()> {
    let trace = load_trace(required(flags, "trace")?)?;
    let filter: f64 = flags
        .get("filter")
        .map(|s| s.parse().unwrap_or(0.03))
        .unwrap_or(0.03);
    match kind {
        "scalability" => {
            let ranks = parse_usize_list(required(flags, "ranks")?, "ranks")?;
            let mapping = parse_mapping(
                flags
                    .get("mapping")
                    .map(|s| s.as_str())
                    .unwrap_or("bin-based"),
            )?;
            let mesh = parse_mesh(flags, trace.meta().domain)?;
            let pts = pic_predict::studies::scalability_study(
                &trace,
                mesh.as_ref(),
                mapping,
                filter,
                &ranks,
            )?;
            println!(
                "{:>8} {:>12} {:>14} {:>12}",
                "ranks", "peak", "utilization", "migrations"
            );
            for p in &pts {
                println!(
                    "{:>8} {:>12} {:>13.1}% {:>12}",
                    p.ranks,
                    p.summary.peak_workload,
                    100.0 * p.summary.resource_utilization,
                    p.summary.total_migrations
                );
            }
        }
        "bins" => {
            let study = pic_predict::studies::optimal_rank_study(&trace, filter)?;
            for (iter, bins) in study.iterations.iter().zip(&study.bin_series) {
                println!("iteration {iter:>8}: {bins} bins");
            }
            println!("optimal processor count: {}", study.optimal_rank_count());
        }
        "sampling" => {
            let ranks: usize = required(flags, "ranks")?
                .parse()
                .map_err(|_| PicError::config("--ranks must be an integer"))?;
            let mapping = parse_mapping(
                flags
                    .get("mapping")
                    .map(|s| s.as_str())
                    .unwrap_or("bin-based"),
            )?;
            let strides = parse_usize_list(
                flags
                    .get("strides")
                    .map(|s| s.as_str())
                    .unwrap_or("1,2,4,8"),
                "strides",
            )?;
            let mesh = parse_mesh(flags, trace.meta().domain)?;
            let pts = pic_predict::studies::sampling_frequency_study(
                &trace,
                ranks,
                mapping,
                mesh.as_ref(),
                filter,
                &strides,
            )?;
            println!(
                "{:>8} {:>14} {:>16} {:>22}",
                "stride", "trace bytes", "peak MAPE [%]", "migration loss [%]"
            );
            for p in &pts {
                println!(
                    "{:>8} {:>14} {:>16.2} {:>22.2}",
                    p.stride, p.trace_bytes, p.peak_workload_mape, p.migration_undercount_pct
                );
            }
        }
        other => {
            return Err(PicError::config(format!(
                "unknown study '{other}' (expected scalability | bins | sampling)"
            )))
        }
    }
    Ok(())
}

fn parse_f64_list(s: &str, what: &str) -> Result<Vec<f64>> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| PicError::config(format!("bad {what} entry '{p}'")))
        })
        .collect()
}

/// The multi-configuration sweep: replay the trace once, emit the whole
/// grid. Gated on the pic-analysis invariant catalog over every grid
/// point — a grid that fails verification is never written. The grid
/// expansion and `--out` serialization live in [`pic_predict::gridspec`],
/// shared with the resident service so both emit bit-identical bytes.
fn cmd_sweep(flags: &HashMap<String, String>) -> Result<()> {
    let trace_path = required(flags, "trace")?;
    let spec = pic_predict::SweepGridSpec {
        ranks: parse_usize_list(required(flags, "ranks")?, "ranks")?,
        mappings: flags
            .get("mappings")
            .map(|s| s.as_str())
            .unwrap_or("bin-based")
            .split(',')
            .map(|p| parse_mapping(p.trim()))
            .collect::<Result<_>>()?,
        filters: parse_f64_list(
            flags.get("filters").map(|s| s.as_str()).unwrap_or("0.03"),
            "filters",
        )?,
        strides: match flags.get("strides") {
            Some(s) => parse_usize_list(s, "strides")?,
            None => vec![1],
        },
        compute_ghosts: flags.get("ghosts").map(|v| v != "false").unwrap_or(true),
    };
    spec.validate()?;
    let streaming = flags.get("stream").map(|v| v != "false").unwrap_or(false);
    let points = spec.points();

    let t0 = std::time::Instant::now();
    let (workloads, stats, particles) = if streaming {
        let file = std::fs::File::open(trace_path)?;
        let reader = pic_trace::AnyTraceReader::new(std::io::BufReader::new(file))?;
        let particles = reader.meta().particle_count as u64;
        let mesh = parse_mesh(flags, reader.meta().domain)?;
        let w = pic_workload::sweep_streaming(reader, &points, mesh.as_ref())?;
        (w, None, particles)
    } else {
        let trace = load_trace(trace_path)?;
        let particles = trace.meta().particle_count as u64;
        let mesh = parse_mesh(flags, trace.meta().domain)?;
        let (w, stats) = pic_workload::sweep_with_stats(&trace, &points, mesh.as_ref())?;
        (w, Some(stats), particles)
    };
    eprintln!(
        "sweep of {} grid point(s) generated in {:.2} s",
        points.len(),
        t0.elapsed().as_secs_f64()
    );
    if let Some(stats) = &stats {
        eprintln!(
            "sharing: {} point(s) -> {} assignment group(s); {} of {} assignment passes run; {} ghost radii ({} group(s) served by one shared query)",
            stats.points,
            stats.groups,
            stats.assign_passes,
            stats.naive_assign_passes,
            stats.ghost_radii,
            stats.shared_query_groups,
        );
    }
    // The gate: every grid point through the full invariant catalog, with
    // (point, rank, sample)-positioned diagnostics on failure.
    pic_analysis::assert_sweep_valid(&workloads, Some(particles))?;

    println!(
        "{:>5} {:>16} {:>8} {:>10} {:>7} {:>10} {:>13} {:>12} {:>12}",
        "point",
        "mapping",
        "ranks",
        "filter",
        "stride",
        "peak",
        "utilization",
        "migrations",
        "ghosts"
    );
    for (i, (p, w)) in points.iter().zip(&workloads).enumerate() {
        let summary = metrics::summarize(w);
        let ghosts: u64 = (0..w.samples()).map(|t| w.ghost_recv.sample_total(t)).sum();
        println!(
            "{:>5} {:>16} {:>8} {:>10.4} {:>7} {:>10} {:>12.1}% {:>12} {:>12}",
            i,
            p.config.mapping.to_string(),
            p.config.ranks,
            p.config.projection_filter,
            p.stride,
            summary.peak_workload,
            100.0 * summary.resource_utilization,
            summary.total_migrations,
            ghosts
        );
    }
    if let Some(out) = flags.get("out") {
        let entries = pic_predict::grid_entries(&points, workloads);
        let json = pic_predict::grid_to_json(&entries)?;
        std::fs::write(out, json)?;
        eprintln!("full grid ({} point(s)) -> {out}", entries.len());
    }
    Ok(())
}

/// SimPoint-style reduced replay: cluster the trace's samples into
/// phases, replay one representative per phase (plus owner-only passes
/// for representative predecessors), broadcast each outcome across its
/// cluster, and gate the reconstruction on the holdout error budget
/// before anything is written. The full invariant catalog does not
/// apply here — `comm-flow` cannot hold across broadcast boundaries —
/// so the reduction gate (exact replay of held-out samples, compared on
/// peak load) is the acceptance check.
fn cmd_simpoint(flags: &HashMap<String, String>) -> Result<()> {
    let trace = load_trace(required(flags, "trace")?)?;
    let ranks: usize = required(flags, "ranks")?
        .parse()
        .map_err(|_| PicError::config("--ranks must be an integer"))?;
    let mapping = parse_mapping(required(flags, "mapping")?)?;
    let filter: f64 = flags
        .get("filter")
        .map(|s| s.parse().unwrap_or(0.03))
        .unwrap_or(0.03);
    let cfg = WorkloadConfig::new(ranks, mapping, filter);
    let mesh = parse_mesh(flags, trace.meta().domain)?;

    let mut opts = pic_predict::SimpointOptions::default();
    if let Some(k) = flags.get("k") {
        opts.k = Some(
            k.parse()
                .map_err(|_| PicError::config("--k must be an integer"))?,
        );
    }
    if let Some(km) = flags.get("k-max") {
        opts.k_max = km
            .parse()
            .map_err(|_| PicError::config("--k-max must be an integer"))?;
    }
    if let Some(seed) = flags.get("seed") {
        opts.seed = seed
            .parse()
            .map_err(|_| PicError::config("--seed must be an integer"))?;
    }
    if let Some(bins) = flags.get("bins") {
        opts.features.bins_per_axis = bins
            .parse()
            .map_err(|_| PicError::config("--bins must be an integer"))?;
    }
    if let Some(f) = flags.get("features") {
        opts.spatial_only = match f.as_str() {
            "spatial" => true,
            "full" => false,
            _ => return Err(PicError::config("--features must be spatial or full")),
        };
    }
    let mut budget = pic_analysis::ReductionBudget::default();
    if let Some(b) = flags.get("budget") {
        budget.max_peak_rel_error = b
            .parse()
            .map_err(|_| PicError::config("--budget must be a number"))?;
    }
    if let Some(h) = flags.get("holdout") {
        budget.holdout = h
            .parse()
            .map_err(|_| PicError::config("--holdout must be an integer"))?;
    }

    let t0 = std::time::Instant::now();
    let plan = pic_predict::build_simpoint_plan(&trace, &opts)?;
    let cluster_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let (w, stats) = pic_workload::generate_reduced_with_stats(&trace, &cfg, mesh.as_ref(), &plan)?;
    let replay_s = t1.elapsed().as_secs_f64();
    let report =
        pic_analysis::assert_reduction_valid(&trace, &cfg, mesh.as_ref(), &plan, &w, &budget)?;

    println!("samples:            {}", plan.total_samples);
    println!("phases (K):         {}", plan.k());
    println!(
        "replayed samples:   {} full + {} owner-only",
        stats.representatives, stats.owner_only_samples
    );
    println!("reduction factor:   {:.1}x", stats.reduction_factor());
    println!(
        "holdout peak error: {:.4} (budget {:.4}, {} holdout sample(s))",
        report.max_rel_error,
        budget.max_peak_rel_error,
        report.points.len()
    );
    println!("timing:             cluster {cluster_s:.3} s + reduced replay {replay_s:.3} s");
    let summary = metrics::summarize(&w);
    println!("peak workload:      {}", summary.peak_workload);
    println!(
        "resource util:      {:.2}%",
        100.0 * summary.resource_utilization
    );
    if let Some(path) = flags.get("plan-out") {
        let json = serde_json::to_string_pretty(&plan)
            .map_err(|e| PicError::config(format!("cannot serialize plan: {e}")))?;
        std::fs::write(path, json)?;
        eprintln!("reduction plan -> {path}");
    }
    if let Some(path) = flags.get("out") {
        let json = serde_json::to_string_pretty(&w)
            .map_err(|e| PicError::config(format!("cannot serialize workload: {e}")))?;
        std::fs::write(path, json)?;
        eprintln!("reconstructed workload -> {path}");
    }
    Ok(())
}

/// Convert a trace (either format in) to the compact delta-encoded
/// format, reporting the size ratio. The conversion is gated on a
/// decode-back comparison: the compact file's dequantized positions must
/// bin identically under the decode path before the command succeeds.
fn cmd_compact(flags: &HashMap<String, String>) -> Result<()> {
    let in_path = required(flags, "trace")?;
    let out_path = required(flags, "out")?;
    let trace = load_trace(in_path)?;
    let precision = match flags.get("precision").map(|s| s.as_str()) {
        Some("f64") => codec::Precision::F64,
        _ => codec::Precision::F32,
    };
    let in_bytes = std::fs::metadata(in_path)?.len();
    let out_bytes = pic_trace::compact::save_file(&trace, out_path, precision)?;
    // round-trip gate: the file we just wrote must decode to the same
    // shape (sample/particle counts) before we report success
    let back = load_trace(out_path)?;
    if back.sample_count() != trace.sample_count()
        || back.particle_count() != trace.particle_count()
    {
        return Err(PicError::config(format!(
            "compact round-trip mismatch: wrote {}x{}, read back {}x{}",
            trace.sample_count(),
            trace.particle_count(),
            back.sample_count(),
            back.particle_count()
        )));
    }
    println!(
        "{in_path} ({in_bytes} B) -> {out_path} ({out_bytes} B, {:.2}x smaller)",
        in_bytes as f64 / out_bytes.max(1) as f64
    );
    Ok(())
}

/// The resident prediction service: bind, announce, serve until a
/// `POST /shutdown` arrives, then drain connections and exit cleanly.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<()> {
    let mut cfg = pic_predict::ServeConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.clone();
    } else {
        cfg.addr = "127.0.0.1:7070".to_string();
    }
    if let Some(mb) = flags.get("budget-mb") {
        let n: usize = mb
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| PicError::config("--budget-mb must be a positive integer"))?;
        cfg.budget_bytes = n << 20;
    }
    if let Some(ms) = flags.get("read-timeout-ms") {
        let n: u64 = ms
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| PicError::config("--read-timeout-ms must be a positive integer"))?;
        cfg.read_timeout = std::time::Duration::from_millis(n);
    }
    if let Some(mb) = flags.get("max-body-mb") {
        let n: u64 = mb
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| PicError::config("--max-body-mb must be a positive integer"))?;
        cfg.max_body_bytes = n << 20;
    }
    let server = pic_predict::Server::start(cfg)?;
    println!("picpredict serve listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run_to_completion();
    println!("picpredict serve: shutdown complete");
    Ok(())
}

fn cmd_extrapolate(flags: &HashMap<String, String>) -> Result<()> {
    let trace = load_trace(required(flags, "trace")?)?;
    let out = required(flags, "out")?;
    let particles: usize = required(flags, "particles")?
        .parse()
        .map_err(|_| PicError::config("--particles must be an integer"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);
    let big = pic_trace::extrapolate(&trace, particles, seed)?;
    codec::save_file(&big, out, codec::Precision::F32)?;
    println!(
        "extrapolated {} -> {} particles ({} samples) -> {out}",
        trace.particle_count(),
        particles,
        big.sample_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_splits_positional_and_flags() {
        let (pos, flags) = parse_flags(&argv("run --config c.json --trace t.bin"));
        assert_eq!(pos, vec!["run"]);
        assert_eq!(flags.get("config").map(String::as_str), Some("c.json"));
        assert_eq!(flags.get("trace").map(String::as_str), Some("t.bin"));
    }

    #[test]
    fn parse_flags_trailing_flag_without_value() {
        let (_, flags) = parse_flags(&argv("run --verbose"));
        assert_eq!(flags.get("verbose").map(String::as_str), Some(""));
    }

    #[test]
    fn required_reports_missing_flag() {
        let (_, flags) = parse_flags(&argv("run"));
        let err = required(&flags, "config").unwrap_err();
        assert!(err.to_string().contains("--config"));
    }

    #[test]
    fn parse_mapping_accepts_all_algorithms() {
        assert_eq!(
            parse_mapping("bin-based").unwrap(),
            MappingAlgorithm::BinBased
        );
        assert_eq!(
            parse_mapping("element-based").unwrap(),
            MappingAlgorithm::ElementBased
        );
        assert_eq!(
            parse_mapping("hilbert-ordered").unwrap(),
            MappingAlgorithm::HilbertOrdered
        );
        assert_eq!(
            parse_mapping("load-balanced").unwrap(),
            MappingAlgorithm::LoadBalanced
        );
        assert!(parse_mapping("nonsense").is_err());
    }

    #[test]
    fn parse_machine_presets() {
        assert_eq!(parse_machine("quartz").unwrap().name, "quartz-like");
        assert_eq!(parse_machine("vulcan-like").unwrap().name, "vulcan-like");
        assert_eq!(parse_machine("localhost").unwrap().nodes, 1);
        assert!(parse_machine("/nonexistent/machine.json").is_err());
    }

    #[test]
    fn parse_mesh_spec() {
        let (_, flags) = parse_flags(&argv("x --mesh 4x6x8 --order 3"));
        let mesh = parse_mesh(&flags, Aabb::unit()).unwrap().unwrap();
        assert_eq!(mesh.dims().to_array(), [4, 6, 8]);
        assert_eq!(mesh.order(), 3);
        // absent → None
        let (_, flags) = parse_flags(&argv("x"));
        assert!(parse_mesh(&flags, Aabb::unit()).unwrap().is_none());
        // malformed
        let (_, flags) = parse_flags(&argv("x --mesh 4x6"));
        assert!(parse_mesh(&flags, Aabb::unit()).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&argv("frobnicate")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn usize_list_parsing() {
        assert_eq!(parse_usize_list("1,2, 4", "x").unwrap(), vec![1, 2, 4]);
        assert!(parse_usize_list("1,a", "x").is_err());
    }

    #[test]
    fn f64_list_parsing() {
        assert_eq!(
            parse_f64_list("0.01, 0.02,0.4", "x").unwrap(),
            vec![0.01, 0.02, 0.4]
        );
        assert!(parse_f64_list("0.01,oops", "x").is_err());
    }

    #[test]
    fn sweep_grid_is_mapping_major_cross_product() {
        // The expansion itself is tested in pic_predict::gridspec; here we
        // check the CLI builds the spec in the same canonical order.
        let spec = pic_predict::SweepGridSpec {
            mappings: vec![MappingAlgorithm::ElementBased, MappingAlgorithm::BinBased],
            ranks: vec![16, 32],
            filters: vec![0.01, 0.02],
            strides: vec![1],
            compute_ghosts: true,
        };
        let points = spec.points();
        assert_eq!(points.len(), 8);
        // mapping-major: first half element-based, second half bin-based
        assert!(points[..4]
            .iter()
            .all(|p| p.config.mapping == MappingAlgorithm::ElementBased));
        assert!(points[4..]
            .iter()
            .all(|p| p.config.mapping == MappingAlgorithm::BinBased));
        // then ranks, then filter
        assert_eq!(points[0].config.ranks, 16);
        assert_eq!(points[1].config.projection_filter, 0.02);
        assert_eq!(points[2].config.ranks, 32);
        assert!(points
            .iter()
            .all(|p| p.stride == 1 && p.config.compute_ghosts));
    }
}
