//! Per-kernel performance models fitted from instrumentation records.

use pic_models::{
    CompiledExpr, Dataset, FittedModel, GpConfig, LinearModel, PerfModel, SymbolicRegressor,
};
use pic_sim::instrument::WorkloadParams;
use pic_sim::{KernelKind, Recorder};
use pic_types::{PicError, Result};
use serde::{Deserialize, Serialize};

/// Which regression family to use for each kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", tag = "strategy")]
pub enum FitStrategy {
    /// Ordinary least squares on the varying features (the paper's choice
    /// for single-parameter models).
    Linear,
    /// GP symbolic regression on the varying features (the paper's choice
    /// for multi-parameter models).
    Symbolic {
        /// GP search parameters.
        gp: GpConfig,
    },
    /// Fit linear first; if its held-out MAPE exceeds `mape_threshold`
    /// (percent), fall back to symbolic regression and keep the better of
    /// the two. This mirrors the paper's finding that linear regression
    /// sufficed for simple kernels but failed on multi-parameter ones.
    Auto {
        /// MAPE (percent) above which the GP fallback is tried.
        mape_threshold: f64,
        /// GP search parameters for the fallback.
        gp: GpConfig,
    },
}

impl Default for FitStrategy {
    fn default() -> FitStrategy {
        FitStrategy::Auto {
            mape_threshold: 12.0,
            gp: GpConfig::default(),
        }
    }
}

impl FitStrategy {
    /// An Auto strategy with a fast GP — for tests and quick studies.
    pub fn fast(seed: u64) -> FitStrategy {
        FitStrategy::Auto {
            mape_threshold: 12.0,
            gp: GpConfig::fast(seed),
        }
    }
}

/// Maximum depth accepted for a symbolic model's expression tree. The
/// recursive walkers that render and analyze admitted models (and serde's
/// `Serialize`) stay far from the thread stack limit at this bound;
/// evaluation itself is depth-safe regardless (deep trees run on the
/// compiled tape). Checked iteratively by [`KernelModel::validate`].
pub const MAX_EXPR_DEPTH: usize = 512;

/// Maximum raw JSON nesting depth accepted by [`KernelModels::from_json`].
/// Scanned byte-wise *before* parsing, because the parser and the derived
/// `Deserialize` recurse per nesting level — a hostile or corrupt model
/// file must be rejected before it can touch the call stack. Generous:
/// a [`MAX_EXPR_DEPTH`]-deep expression serializes to ~2 JSON levels per
/// node, well under this cap.
pub const MAX_JSON_DEPTH: usize = 4096;

/// One kernel's fitted model plus the feature columns it consumes
/// (indices into [`WorkloadParams::features`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// The kernel this model predicts.
    pub kernel: KernelKind,
    /// The fitted model.
    pub model: FittedModel,
    /// Feature column indices the model was trained on.
    pub feature_columns: Vec<usize>,
    /// Held-out validation MAPE (percent) measured at fit time.
    pub validation_mape: f64,
}

impl KernelModel {
    /// Static admission check for a (possibly deserialized) kernel model.
    ///
    /// The evaluators are deliberately total — `Expr::eval` maps an
    /// out-of-range `Var(i)` to `0.0` and a short linear coefficient
    /// vector silently truncates the dot product — so a stale or corrupt
    /// model file would *predict* rather than *fail*. This check rejects
    /// such models at the load boundary with positioned diagnostics
    /// (kernel name, and for symbolic models the offending node's preorder
    /// index and path, via [`pic_analysis::check_model_expr`]).
    pub fn validate(&self) -> Result<()> {
        let ctx = |msg: String| PicError::model(format!("kernel '{}': {msg}", self.kernel));
        let arity = self.feature_columns.len();
        let n_features = WorkloadParams::FEATURE_NAMES.len();
        if arity == 0 {
            return Err(ctx("no feature columns".into()));
        }
        for &c in &self.feature_columns {
            if c >= n_features {
                return Err(ctx(format!(
                    "feature column {c} out of range for the {n_features} workload features"
                )));
            }
        }
        if !self.validation_mape.is_finite() || self.validation_mape < 0.0 {
            return Err(ctx(format!(
                "non-physical validation MAPE {}",
                self.validation_mape
            )));
        }
        match &self.model {
            FittedModel::Linear(m) => {
                if m.coefficients.len() != arity {
                    return Err(ctx(format!(
                        "linear model has {} coefficients for {arity} feature columns",
                        m.coefficients.len()
                    )));
                }
                if !m.intercept.is_finite() || m.coefficients.iter().any(|c| !c.is_finite()) {
                    return Err(ctx("linear model has non-finite parameters".into()));
                }
            }
            FittedModel::Polynomial(m) => {
                if m.feature_index >= arity {
                    return Err(ctx(format!(
                        "polynomial feature index {} out of range for {arity} columns",
                        m.feature_index
                    )));
                }
                if m.coefficients.iter().any(|c| !c.is_finite()) {
                    return Err(ctx("polynomial model has non-finite coefficients".into()));
                }
            }
            FittedModel::Symbolic(m) => {
                // Depth gate first: it is iterative, and everything after
                // it (the analyzer, rendering, serialization) recurses.
                if m.expr.depth_within(MAX_EXPR_DEPTH).is_none() {
                    return Err(ctx(format!(
                        "symbolic expression nests deeper than {MAX_EXPR_DEPTH} levels"
                    )));
                }
                pic_analysis::check_model_expr(&m.expr, arity).map_err(|e| ctx(e.to_string()))?;
                if !m.scale.is_finite() || !m.offset.is_finite() {
                    return Err(ctx("symbolic model has non-finite scaling".into()));
                }
            }
        }
        Ok(())
    }
}

/// The full set of per-kernel performance models.
///
/// Symbolic models are lowered to compiled bytecode tapes at
/// construction (fit *and* load), so every downstream prediction —
/// pipeline assembly, DES replay — runs on the non-recursive tape
/// instead of walking the boxed expression tree. Bit-identical output
/// either way; the tapes are derived state and are never serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelModels {
    models: Vec<KernelModel>,
    /// Compiled tape per model (`None` for linear/polynomial), aligned
    /// with `models`. Rebuilt by every constructor; empty only on the
    /// deserialization fast path, which [`KernelModels::from_json`]
    /// immediately repairs.
    #[serde(skip)]
    compiled: Vec<Option<CompiledExpr>>,
}

impl PartialEq for KernelModels {
    fn eq(&self, other: &KernelModels) -> bool {
        // The tapes are a pure function of the models: comparing them
        // would only distinguish construction paths, not content.
        self.models == other.models
    }
}

/// Lower each symbolic model's expression to a tape.
fn compile_tapes(models: &[KernelModel]) -> Vec<Option<CompiledExpr>> {
    models
        .iter()
        .map(|m| match &m.model {
            FittedModel::Symbolic(s) => Some(CompiledExpr::compile(&s.expr)),
            _ => None,
        })
        .collect()
}

impl KernelModels {
    /// Fit one model per kernel found in the recorder, using an 80/20
    /// train/validation split.
    pub fn fit(recorder: &Recorder, strategy: &FitStrategy, seed: u64) -> Result<KernelModels> {
        let mut models = Vec::new();
        for kernel in KernelKind::ALL {
            let records = recorder.for_kernel(kernel);
            if records.is_empty() {
                continue;
            }
            let full = dataset_for(&records);
            // Constant columns carry no signal; keep only varying ones (or
            // the first column if everything is constant — degenerate but
            // legal: the model reduces to a constant).
            let mut columns = full.varying_features();
            if columns.is_empty() {
                columns = vec![0];
            }
            let data = full.select_features(&columns);
            let (train, test) = data.split(0.8, seed)?;
            let test = if test.is_empty() { train.clone() } else { test };

            let (model, mape) = fit_one(&train, &test, strategy, seed)?;
            if let FittedModel::Symbolic(s) = &model {
                // Differential admission: the compiled tape every later
                // prediction runs on must agree bit-for-bit with the tree
                // on the corners of the training feature space.
                let space = pic_analysis::FeatureSpace::from_dataset(&data);
                pic_analysis::check_compiled_equivalence(&s.expr, &space)
                    .map_err(|e| PicError::model(format!("kernel '{kernel}': {e}")))?;
            }
            models.push(KernelModel {
                kernel,
                model,
                feature_columns: columns,
                validation_mape: mape,
            });
        }
        if models.is_empty() {
            return Err(PicError::model("recorder holds no training records"));
        }
        Ok(KernelModels::from_models(models))
    }

    /// The model for a kernel, if fitted.
    pub fn model(&self, kernel: KernelKind) -> Option<&KernelModel> {
        self.models.iter().find(|m| m.kernel == kernel)
    }

    /// All fitted models, in fit order.
    pub fn models(&self) -> &[KernelModel] {
        &self.models
    }

    /// Assemble a model set directly, without the admission pass — for
    /// tools and tests that need to construct sets (including deliberately
    /// invalid ones); loading from disk still validates.
    pub fn from_models(models: Vec<KernelModel>) -> KernelModels {
        KernelModels {
            compiled: compile_tapes(&models),
            models,
        }
    }

    /// Run [`KernelModel::validate`] on every model.
    pub fn validate(&self) -> Result<()> {
        for m in &self.models {
            m.validate()?;
        }
        Ok(())
    }

    /// All fitted kernels.
    pub fn kernels(&self) -> Vec<KernelKind> {
        self.models.iter().map(|m| m.kernel).collect()
    }

    /// Predict one kernel's execution seconds for a workload. Negative
    /// model outputs clamp to zero (times cannot be negative).
    pub fn predict(&self, kernel: KernelKind, params: &WorkloadParams) -> f64 {
        let Some(idx) = self.models.iter().position(|m| m.kernel == kernel) else {
            return 0.0;
        };
        let km = &self.models[idx];
        let feats = params.features();
        let row: Vec<f64> = km.feature_columns.iter().map(|&c| feats[c]).collect();
        let raw = match (&km.model, self.compiled.get(idx).and_then(Option::as_ref)) {
            // Compiled path: same IEEE operations as `Expr::eval`, so the
            // prediction is bit-identical to the tree walk.
            (FittedModel::Symbolic(s), Some(tape)) => s.scale * tape.eval_row(&row) + s.offset,
            (m, _) => m.predict(&row),
        };
        raw.max(0.0)
    }

    /// Per-kernel held-out validation MAPE (percent).
    pub fn validation_mapes(&self) -> Vec<(KernelKind, f64)> {
        self.models
            .iter()
            .map(|m| (m.kernel, m.validation_mape))
            .collect()
    }

    /// Average validation MAPE across kernels (the paper's headline
    /// "average MAPE of 8.42 %").
    pub fn mean_validation_mape(&self) -> f64 {
        let v: Vec<f64> = self.models.iter().map(|m| m.validation_mape).collect();
        pic_types::stats::mean(&v)
    }

    /// Human-readable model formulas.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for m in &self.models {
            s.push_str(&format!(
                "{}: {} (validation MAPE {:.2}%)\n",
                m.kernel,
                m.model.describe(),
                m.validation_mape
            ));
        }
        s
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("models serialize")
    }

    /// Parse from JSON, rejecting structurally invalid models (the
    /// analyzer admission pass — see [`KernelModel::validate`]) and
    /// hostile nesting depths (see [`MAX_JSON_DEPTH`]), then compile the
    /// admitted symbolic models to tapes.
    pub fn from_json(s: &str) -> Result<KernelModels> {
        json_depth_check(s, MAX_JSON_DEPTH)?;
        let mut models: KernelModels = serde_json::from_str(s)
            .map_err(|e| PicError::model(format!("bad models JSON: {e}")))?;
        models.validate()?;
        models.compiled = compile_tapes(&models.models);
        Ok(models)
    }
}

/// Reject JSON whose raw `{`/`[` nesting exceeds `max` *before* handing
/// it to the recursive parser. String-literal aware (brackets inside
/// strings, including escaped quotes, do not count). Reports the byte
/// offset where the limit was crossed.
fn json_depth_check(s: &str, max: usize) -> Result<()> {
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, b) in s.bytes().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => {
                depth += 1;
                if depth > max {
                    return Err(PicError::model(format!(
                        "models JSON nests deeper than {max} levels (at byte {i}); \
                         refusing to parse"
                    )));
                }
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    Ok(())
}

/// Build the full-feature dataset for one kernel's records.
fn dataset_for(records: &[pic_sim::TrainingRecord]) -> Dataset {
    let names = WorkloadParams::FEATURE_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut d = Dataset::new(names);
    for r in records {
        d.push(r.params.features().to_vec(), r.seconds);
    }
    d
}

fn fit_one(
    train: &Dataset,
    test: &Dataset,
    strategy: &FitStrategy,
    seed: u64,
) -> Result<(FittedModel, f64)> {
    let linear = || -> Result<(FittedModel, f64)> {
        // Relative least squares matches the MAPE objective (timing noise
        // is multiplicative).
        let m = LinearModel::fit_relative(train)?;
        let mape = m.mape(test);
        Ok((FittedModel::Linear(m), mape))
    };
    let symbolic = |gp: &GpConfig| -> Result<(FittedModel, f64)> {
        let mut gp = gp.clone();
        gp.seed ^= seed;
        let m = SymbolicRegressor::new(gp).fit(train)?;
        let mape = m.mape(test);
        Ok((FittedModel::Symbolic(m), mape))
    };
    match strategy {
        FitStrategy::Linear => linear(),
        FitStrategy::Symbolic { gp } => symbolic(gp),
        FitStrategy::Auto { mape_threshold, gp } => {
            let (lm, lmape) = linear()?;
            if lmape <= *mape_threshold {
                return Ok((lm, lmape));
            }
            let (sm, smape) = symbolic(gp)?;
            if smape < lmape {
                Ok((sm, smape))
            } else {
                Ok((lm, lmape))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_sim::CostOracle;
    use pic_types::rng::SplitMix64;

    /// Synthesize oracle-based training data across a workload sweep.
    fn synthetic_recorder(noise: f64, seed: u64) -> Recorder {
        let oracle = CostOracle {
            noise_sigma: noise,
            seed,
        };
        let mut rec = Recorder::new();
        let mut rng = SplitMix64::new(seed);
        let mut key = 0u64;
        for _ in 0..220 {
            let p = WorkloadParams {
                np: rng.next_range(0.0, 2000.0).round(),
                ngp: rng.next_range(0.0, 400.0).round(),
                nel: rng.next_range(8.0, 64.0).round(),
                n_order: 5.0,
                filter: 0.05,
            };
            for k in KernelKind::ALL {
                rec.record(k, p, oracle.observed_cost(k, &p, key));
                key += 1;
            }
        }
        rec
    }

    #[test]
    fn linear_strategy_fits_all_kernels_within_noise() {
        let rec = synthetic_recorder(0.10, 3);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 1).unwrap();
        assert_eq!(models.kernels().len(), 6);
        // With σ = 0.1 multiplicative noise, E|rel err| ≈ 8 % — the paper's
        // 8.42 % regime. Allow headroom.
        for (k, mape) in models.validation_mapes() {
            assert!(mape < 15.0, "{k}: MAPE {mape}");
        }
        let avg = models.mean_validation_mape();
        assert!(avg > 2.0 && avg < 12.0, "avg {avg}");
    }

    #[test]
    fn noiseless_linear_fit_is_nearly_exact() {
        let rec = synthetic_recorder(0.0, 4);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 2).unwrap();
        for (k, mape) in models.validation_mapes() {
            // all oracle kernels are linear in (np, ngp, nel) at fixed N
            // and filter
            assert!(mape < 0.5, "{k}: MAPE {mape}");
        }
    }

    #[test]
    fn predictions_use_correct_feature_columns() {
        let rec = synthetic_recorder(0.0, 5);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 3).unwrap();
        let oracle = CostOracle::noiseless();
        let p = WorkloadParams {
            np: 500.0,
            ngp: 100.0,
            nel: 27.0,
            n_order: 5.0,
            filter: 0.05,
        };
        for k in KernelKind::ALL {
            let pred = models.predict(k, &p);
            let truth = oracle.true_cost(k, &p);
            let rel = (pred - truth).abs() / truth.max(1e-12);
            assert!(rel < 0.05, "{k}: pred {pred} truth {truth}");
        }
    }

    #[test]
    fn predictions_clamp_to_zero() {
        let rec = synthetic_recorder(0.1, 6);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 4).unwrap();
        let p = WorkloadParams {
            np: 0.0,
            ngp: 0.0,
            nel: 0.0,
            n_order: 5.0,
            filter: 0.05,
        };
        for k in KernelKind::ALL {
            assert!(models.predict(k, &p) >= 0.0);
        }
    }

    #[test]
    fn empty_recorder_is_error() {
        let rec = Recorder::new();
        assert!(KernelModels::fit(&rec, &FitStrategy::Linear, 1).is_err());
    }

    #[test]
    fn auto_strategy_keeps_linear_when_good() {
        let rec = synthetic_recorder(0.05, 7);
        let models = KernelModels::fit(&rec, &FitStrategy::fast(1), 5).unwrap();
        // linear is near-exact here, so Auto must not degrade accuracy
        for (k, mape) in models.validation_mapes() {
            assert!(mape < 10.0, "{k}: {mape}");
        }
        // and the chosen family should be Linear for at least the pusher
        let m = models.model(KernelKind::ParticlePusher).unwrap();
        assert!(matches!(m.model, FittedModel::Linear(_)));
    }

    fn symbolic_kernel_model(expr: pic_models::Expr, columns: Vec<usize>) -> KernelModel {
        KernelModel {
            kernel: KernelKind::ParticlePusher,
            model: FittedModel::Symbolic(pic_models::gp::SymbolicModel {
                expr,
                scale: 1.0,
                offset: 0.0,
                feature_names: columns.iter().map(|c| format!("f{c}")).collect(),
            }),
            feature_columns: columns,
            validation_mape: 1.0,
        }
    }

    #[test]
    fn validate_accepts_fitted_models() {
        let rec = synthetic_recorder(0.1, 10);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 8).unwrap();
        assert!(models.validate().is_ok());
        assert_eq!(models.models().len(), models.kernels().len());
    }

    #[test]
    fn out_of_range_var_is_rejected_with_position() {
        use pic_models::Expr;
        let e = Expr::Add(Box::new(Expr::Var(0)), Box::new(Expr::Var(7)));
        let m = symbolic_kernel_model(e, vec![0, 1]);
        let err = m.validate().unwrap_err().to_string();
        assert!(err.contains("E001"), "{err}");
        assert!(err.contains("node 2"), "{err}");
        assert!(err.contains("root/rhs"), "{err}");
        assert!(err.contains("particle_pusher"), "{err}");
    }

    #[test]
    fn corrupt_serialized_models_fail_to_load() {
        use pic_models::Expr;
        // a valid single-model set...
        let good = KernelModels::from_models(vec![symbolic_kernel_model(
            Expr::Mul(Box::new(Expr::Var(0)), Box::new(Expr::Const(2.0))),
            vec![0],
        )]);
        let json = good.to_json();
        assert!(KernelModels::from_json(&json).is_ok());
        // ...corrupted on disk: the variable index now points past the arity
        let bad = json
            .replace("\"Var\": 0", "\"Var\": 9")
            .replace("\"Var\":0", "\"Var\":9");
        assert_ne!(bad, json, "corruption must hit the serialized Var");
        let err = KernelModels::from_json(&bad).unwrap_err().to_string();
        assert!(err.contains("E001"), "{err}");
    }

    #[test]
    fn truncated_linear_coefficients_are_rejected() {
        let rec = synthetic_recorder(0.0, 11);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 9).unwrap();
        let mut broken = models.clone();
        let lm = &mut broken.models[0];
        let FittedModel::Linear(ref mut linear) = lm.model else {
            panic!("expected linear model")
        };
        linear.coefficients.pop();
        let err = broken.validate().unwrap_err().to_string();
        assert!(err.contains("coefficients"), "{err}");
        // and the load path rejects it too
        assert!(KernelModels::from_json(&broken.to_json()).is_err());
    }

    #[test]
    fn feature_columns_out_of_range_are_rejected() {
        let m = KernelModel {
            feature_columns: vec![0, 99],
            ..symbolic_kernel_model(pic_models::Expr::Var(0), vec![0])
        };
        let err = m.validate().unwrap_err().to_string();
        assert!(err.contains("99"), "{err}");
    }

    /// Serialized `Add` chain of the given length around a `Var(0)` leaf,
    /// built by string concatenation: serializing a real tree would
    /// recurse, which is exactly what the load path must survive without.
    fn deep_expr_json(levels: usize) -> String {
        let mut s = String::with_capacity(24 * levels + 16);
        for _ in 0..levels {
            s.push_str("{\"Add\": [{\"Const\": 1.0}, ");
        }
        s.push_str("{\"Var\": 0}");
        for _ in 0..levels {
            s.push_str("]}");
        }
        s
    }

    fn with_deep_expr(levels: usize) -> String {
        let good = KernelModels::from_models(vec![symbolic_kernel_model(
            pic_models::Expr::Var(0),
            vec![0],
        )]);
        let json = good.to_json();
        let bad = json.replace("{\"Var\": 0}", &deep_expr_json(levels));
        // Pretty-printing may break the expr across lines; fall back to
        // replacing the bare tag.
        if bad != json {
            bad
        } else {
            json.replace(
                "\"Var\": 0",
                &deep_expr_json(levels)[1..deep_expr_json(levels).len() - 1],
            )
        }
    }

    #[test]
    fn hundred_k_deep_model_file_is_rejected_before_parsing() {
        // A ~100k-deep expression would overflow the stack in the parser,
        // the derived Deserialize, or the drop glue — the raw-depth scan
        // must reject it first, as a clean error.
        let hostile = with_deep_expr(100_000);
        let err = KernelModels::from_json(&hostile).unwrap_err().to_string();
        assert!(err.contains("nests deeper"), "{err}");
        assert!(err.contains("byte"), "{err}");
    }

    #[test]
    fn over_deep_expression_is_rejected_by_validation() {
        // Deep enough to exceed the expression bound, shallow enough to
        // parse: the iterative depth gate in validate() must catch it.
        let sneaky = with_deep_expr(MAX_EXPR_DEPTH + 100);
        let err = KernelModels::from_json(&sneaky).unwrap_err().to_string();
        assert!(
            err.contains(&format!("nests deeper than {MAX_EXPR_DEPTH}")),
            "{err}"
        );
    }

    #[test]
    fn compiled_predictions_match_tree_walk_bitwise() {
        use pic_models::Expr;
        // (f0 * 2 + f1) / f0 exercises add/mul/div including the guard
        let expr = Expr::Div(
            Box::new(Expr::Add(
                Box::new(Expr::Mul(
                    Box::new(Expr::Var(0)),
                    Box::new(Expr::Const(2.0)),
                )),
                Box::new(Expr::Var(1)),
            )),
            Box::new(Expr::Var(0)),
        );
        let km = KernelModel {
            model: FittedModel::Symbolic(pic_models::gp::SymbolicModel {
                expr: expr.clone(),
                scale: 1.5,
                offset: 0.25,
                feature_names: vec!["f0".into(), "f1".into()],
            }),
            feature_columns: vec![0, 1],
            ..symbolic_kernel_model(Expr::Var(0), vec![0, 1])
        };
        let models = KernelModels::from_models(vec![km]);
        // ...and a loaded copy, whose tapes come from the from_json rebuild
        let loaded = KernelModels::from_json(&models.to_json()).unwrap();
        for np in [0.0, 1.0, 513.0, 2e4] {
            let p = WorkloadParams {
                np,
                ngp: 3.0 * np + 1.0,
                nel: 27.0,
                n_order: 5.0,
                filter: 0.05,
            };
            let feats = p.features();
            let want = (1.5 * expr.eval(&[feats[0], feats[1]]) + 0.25).max(0.0);
            let got = models.predict(KernelKind::ParticlePusher, &p);
            assert_eq!(got.to_bits(), want.to_bits());
            let got_loaded = loaded.predict(KernelKind::ParticlePusher, &p);
            assert_eq!(got_loaded.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn json_roundtrip() {
        let rec = synthetic_recorder(0.1, 8);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 6).unwrap();
        let json = models.to_json();
        let back = KernelModels::from_json(&json).unwrap();
        assert_eq!(back, models);
    }

    #[test]
    fn describe_lists_all_kernels() {
        let rec = synthetic_recorder(0.1, 9);
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 7).unwrap();
        let d = models.describe();
        for k in KernelKind::ALL {
            assert!(d.contains(k.name()), "missing {k} in:\n{d}");
        }
    }
}
