//! The sweep-grid specification shared by the `picpredict sweep`
//! subcommand and the resident prediction service.
//!
//! Both front ends must emit **bit-identical** grids for the same inputs
//! (the serve integration tests diff the bytes), so the cross-product
//! expansion order and the serialized entry shape live here, once.

use pic_mapping::MappingAlgorithm;
use pic_types::{PicError, Result};
use pic_workload::{DynamicWorkload, SweepPoint, WorkloadConfig};
use serde::Serialize;

/// A cross-product sweep grid: every `(mapping, ranks, filter, stride)`
/// combination, expanded mapping-major, then ranks, filter, stride — the
/// order `picpredict sweep` has always printed and written.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGridSpec {
    /// Mapping algorithms to evaluate.
    pub mappings: Vec<MappingAlgorithm>,
    /// Rank counts to evaluate.
    pub ranks: Vec<usize>,
    /// Projection-filter radii to evaluate.
    pub filters: Vec<f64>,
    /// Sampling strides to evaluate.
    pub strides: Vec<usize>,
    /// Whether grid points compute ghost matrices.
    pub compute_ghosts: bool,
}

impl SweepGridSpec {
    /// Validate the spec: every axis must be non-empty.
    pub fn validate(&self) -> Result<()> {
        for (name, empty) in [
            ("mappings", self.mappings.is_empty()),
            ("ranks", self.ranks.is_empty()),
            ("filters", self.filters.is_empty()),
            ("strides", self.strides.is_empty()),
        ] {
            if empty {
                return Err(PicError::config(format!(
                    "sweep grid axis '{name}' is empty"
                )));
            }
        }
        Ok(())
    }

    /// Number of grid points the spec expands to.
    pub fn len(&self) -> usize {
        self.mappings.len() * self.ranks.len() * self.filters.len() * self.strides.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand to sweep points in the canonical order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &mapping in &self.mappings {
            for &ranks in &self.ranks {
                for &filter in &self.filters {
                    for &stride in &self.strides {
                        let mut cfg = WorkloadConfig::new(ranks, mapping, filter);
                        cfg.compute_ghosts = self.compute_ghosts;
                        points.push(SweepPoint::with_stride(cfg, stride));
                    }
                }
            }
        }
        points
    }
}

/// One emitted grid point: the configuration alongside its full workload.
#[derive(Serialize)]
pub struct SweepGridEntry {
    /// Index of this point in the grid's canonical order.
    pub point: usize,
    /// Mapping algorithm of the point.
    pub mapping: MappingAlgorithm,
    /// Rank count of the point.
    pub ranks: usize,
    /// Projection-filter radius of the point.
    pub projection_filter: f64,
    /// Sampling stride of the point.
    pub stride: usize,
    /// The generated workload.
    pub workload: DynamicWorkload,
}

/// Pair grid points with their generated workloads, in grid order.
pub fn grid_entries(points: &[SweepPoint], workloads: Vec<DynamicWorkload>) -> Vec<SweepGridEntry> {
    points
        .iter()
        .zip(workloads)
        .enumerate()
        .map(|(point, (p, workload))| SweepGridEntry {
            point,
            mapping: p.config.mapping,
            ranks: p.config.ranks,
            projection_filter: p.config.projection_filter,
            stride: p.stride,
            workload,
        })
        .collect()
}

/// The canonical serialized grid — the bytes `picpredict sweep --out`
/// writes and `POST /sweep` returns.
pub fn grid_to_json(entries: &[SweepGridEntry]) -> Result<String> {
    serde_json::to_string_pretty(entries)
        .map_err(|e| PicError::config(format!("cannot serialize sweep grid: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_mapping_major_cross_product() {
        let spec = SweepGridSpec {
            mappings: vec![MappingAlgorithm::ElementBased, MappingAlgorithm::BinBased],
            ranks: vec![16, 32],
            filters: vec![0.01, 0.02],
            strides: vec![1],
            compute_ghosts: true,
        };
        assert_eq!(spec.len(), 8);
        let points = spec.points();
        assert_eq!(points.len(), 8);
        assert!(points[..4]
            .iter()
            .all(|p| p.config.mapping == MappingAlgorithm::ElementBased));
        assert!(points[4..]
            .iter()
            .all(|p| p.config.mapping == MappingAlgorithm::BinBased));
        assert_eq!(points[0].config.ranks, 16);
        assert_eq!(points[1].config.projection_filter, 0.02);
        assert_eq!(points[2].config.ranks, 32);
        assert!(points
            .iter()
            .all(|p| p.stride == 1 && p.config.compute_ghosts));
        let no_ghosts = SweepGridSpec {
            mappings: vec![MappingAlgorithm::BinBased],
            ranks: vec![4],
            filters: vec![0.1],
            strides: vec![2],
            compute_ghosts: false,
        };
        let pts = no_ghosts.points();
        assert!(!pts[0].config.compute_ghosts);
        assert_eq!(pts[0].stride, 2);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = SweepGridSpec {
            mappings: vec![MappingAlgorithm::BinBased],
            ranks: vec![4],
            filters: vec![0.1],
            strides: vec![1],
            compute_ghosts: true,
        };
        assert!(spec.validate().is_ok());
        spec.ranks.clear();
        assert!(spec.validate().is_err());
        assert!(spec.is_empty());
    }
}
