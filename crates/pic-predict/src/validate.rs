//! Validation of the Dynamic Workload Generator and of kernel predictions
//! against mini-app ground truth.
//!
//! The paper validated its Fig 5 workload predictions "by comparing the
//! output of our Dynamic Workload Generator with actual workload" and its
//! models via per-kernel MAPE (Fig 7). Both checks live here.

use pic_sim::app::GroundTruth;
use pic_sim::KernelKind;
use pic_types::{PicError, Result};
use pic_workload::DynamicWorkload;

/// Assert that a generated workload reproduces the mini-app's ground truth
/// *exactly*: same real counts, same ghost counts, same migrations, same
/// bin counts at every sample.
///
/// Exactness is the point: the DWG mimics the mapping algorithm on the same
/// positions, so any mismatch is a bug, not noise.
pub fn workload_matches_ground_truth(w: &DynamicWorkload, gt: &GroundTruth) -> Result<()> {
    if w.ranks != gt.ranks {
        return Err(PicError::sim(format!(
            "rank mismatch: workload {} vs ground truth {}",
            w.ranks, gt.ranks
        )));
    }
    if w.samples() != gt.samples.len() {
        return Err(PicError::sim(format!(
            "sample mismatch: workload {} vs ground truth {}",
            w.samples(),
            gt.samples.len()
        )));
    }
    for (t, s) in gt.samples.iter().enumerate() {
        if w.real.sample_row(t) != &s.real_counts[..] {
            return Err(PicError::sim(format!("real counts differ at sample {t}")));
        }
        if w.ghost_recv.sample_row(t) != &s.ghost_recv_counts[..] {
            return Err(PicError::sim(format!(
                "ghost recv counts differ at sample {t}"
            )));
        }
        if w.ghost_sent.sample_row(t) != &s.ghost_sent_counts[..] {
            return Err(PicError::sim(format!(
                "ghost sent counts differ at sample {t}"
            )));
        }
        if w.comm.entries[t] != s.migrations {
            return Err(PicError::sim(format!("migrations differ at sample {t}")));
        }
        if w.bin_counts[t] != s.bin_count {
            return Err(PicError::sim(format!("bin counts differ at sample {t}")));
        }
    }
    Ok(())
}

/// Per-kernel MAPE of predicted kernel times against the ground truth's
/// observed per-rank times — the paper's Fig 7.
///
/// `predicted[sample][rank][k]` must be indexed like
/// [`GroundTruthSample::kernel_seconds`](pic_sim::app::GroundTruthSample),
/// i.e. `k` in [`KernelKind::ALL`] order. Rank/sample pairs whose observed
/// time is zero (idle ranks) are skipped, as in any percentage-error
/// metric.
pub fn kernel_mape_vs_ground_truth(
    predicted: &[Vec<[f64; 6]>],
    gt: &GroundTruth,
) -> Result<Vec<(KernelKind, f64)>> {
    if predicted.len() != gt.samples.len() {
        return Err(PicError::sim("prediction/ground-truth sample mismatch"));
    }
    let mut out = Vec::with_capacity(6);
    for (slot, &kernel) in KernelKind::ALL.iter().enumerate() {
        let mut pred = Vec::new();
        let mut actual = Vec::new();
        for (p_sample, g_sample) in predicted.iter().zip(&gt.samples) {
            if p_sample.len() != g_sample.kernel_seconds.len() {
                return Err(PicError::sim("prediction/ground-truth rank mismatch"));
            }
            for (p_rank, g_rank) in p_sample.iter().zip(&g_sample.kernel_seconds) {
                if g_rank[slot] > 0.0 {
                    pred.push(p_rank[slot]);
                    actual.push(g_rank[slot]);
                }
            }
        }
        out.push((kernel, pic_types::stats::mape(&pred, &actual)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_sim::app::GroundTruthSample;
    use pic_workload::{CommMatrix, CompMatrix};

    fn tiny_gt() -> GroundTruth {
        GroundTruth {
            ranks: 2,
            elements_per_rank: vec![4, 4],
            samples: vec![GroundTruthSample {
                iteration: 0,
                real_counts: vec![3, 1],
                ghost_recv_counts: vec![0, 1],
                ghost_sent_counts: vec![1, 0],
                bin_count: Some(2),
                migrations: vec![],
                kernel_seconds: vec![[1.0; 6], [2.0; 6]],
            }],
        }
    }

    fn matching_workload() -> DynamicWorkload {
        DynamicWorkload {
            ranks: 2,
            iterations: vec![0],
            real: CompMatrix::from_rows(2, vec![vec![3, 1]]),
            ghost_recv: CompMatrix::from_rows(2, vec![vec![0, 1]]),
            ghost_sent: CompMatrix::from_rows(2, vec![vec![1, 0]]),
            comm: CommMatrix::with_samples(1),
            bin_counts: vec![Some(2)],
        }
    }

    #[test]
    fn exact_match_passes() {
        workload_matches_ground_truth(&matching_workload(), &tiny_gt()).unwrap();
    }

    #[test]
    fn count_mismatch_fails_with_sample_info() {
        let mut w = matching_workload();
        w.real = CompMatrix::from_rows(2, vec![vec![2, 2]]);
        let err = workload_matches_ground_truth(&w, &tiny_gt()).unwrap_err();
        assert!(err.to_string().contains("sample 0"), "{err}");
    }

    #[test]
    fn rank_mismatch_fails() {
        let mut w = matching_workload();
        w.ranks = 3;
        assert!(workload_matches_ground_truth(&w, &tiny_gt()).is_err());
    }

    #[test]
    fn bin_count_mismatch_fails() {
        let mut w = matching_workload();
        w.bin_counts = vec![Some(1)];
        assert!(workload_matches_ground_truth(&w, &tiny_gt()).is_err());
    }

    #[test]
    fn mape_perfect_prediction_is_zero() {
        let gt = tiny_gt();
        let predicted = vec![vec![[1.0; 6], [2.0; 6]]];
        let mapes = kernel_mape_vs_ground_truth(&predicted, &gt).unwrap();
        assert_eq!(mapes.len(), 6);
        for (_, m) in mapes {
            assert_eq!(m, 0.0);
        }
    }

    #[test]
    fn mape_ten_percent_error() {
        let gt = tiny_gt();
        let predicted = vec![vec![[1.1; 6], [2.2; 6]]];
        let mapes = kernel_mape_vs_ground_truth(&predicted, &gt).unwrap();
        for (_, m) in mapes {
            assert!((m - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mape_sample_mismatch_is_error() {
        let gt = tiny_gt();
        assert!(kernel_mape_vs_ground_truth(&[], &gt).is_err());
    }
}
