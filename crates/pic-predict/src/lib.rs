//! # pic-predict
//!
//! The trace-driven performance prediction framework (paper Fig 2), tying
//! the pieces together:
//!
//! ```text
//!  particle trace ──► Dynamic Workload Generator ──► workload matrices
//!        ▲                (pic-workload)                   │
//!        │                                                 ▼
//!  mini PIC app ──► kernel timing records ──► Model Generator ──► models
//!   (pic-sim)            (pic-sim)             (pic-models)        │
//!                                                                  ▼
//!                              Simulation Platform (pic-des) ◄── schedule
//!                                        │
//!                                        ▼
//!                         predicted kernel & application times
//! ```
//!
//! Entry points:
//! * [`KernelModels`] — fit per-kernel performance models from timing
//!   records (linear or GP-symbolic, with automatic fallback);
//! * [`pipeline`] — kernel-time prediction over a generated workload, the
//!   DES schedule builder, and end-to-end application-time prediction;
//! * [`validate`] — exact DWG-vs-ground-truth workload checks and the
//!   Fig 7 kernel-MAPE computation;
//! * [`studies`] — the paper's three use cases: scalability prediction,
//!   mapping-algorithm evaluation, and the projection-filter parameter
//!   study;
//! * [`run_case_study`] — one call that runs the mini-app, generates the
//!   workload, fits models, validates, and predicts application time;
//! * [`serve`] — the resident prediction service: a long-lived daemon
//!   with a content-addressed trace registry that decodes each trace
//!   once and answers sweep/predict/check requests over HTTP, sharing
//!   assignment artifacts across concurrent and repeat requests;
//! * [`gridspec`] — the canonical sweep-grid expansion and serialization
//!   shared by the `sweep` subcommand and the service, so both emit
//!   bit-identical grids;
//! * [`simpoint`] — SimPoint-style trace reduction: cluster per-sample
//!   feature vectors into phases and emit a
//!   [`pic_workload::ReductionPlan`] that replays one representative per
//!   phase, gated by the `pic-analysis` error budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gridspec;
pub mod kernel_models;
pub mod pipeline;
pub mod serve;
pub mod simpoint;
pub mod studies;
pub mod validate;

pub use gridspec::{grid_entries, grid_to_json, SweepGridEntry, SweepGridSpec};
pub use kernel_models::{FitStrategy, KernelModels};
pub use pipeline::run_case_study;
pub use pipeline::{
    build_schedule, predict_application, predict_application_with_stats, predict_kernel_seconds,
    CaseStudyOutput, DesRunStats,
};
pub use serve::{registry::TraceRegistry, ServeConfig, Server};
pub use simpoint::{build_plan as build_simpoint_plan, SimpointOptions};
pub use validate::{kernel_mape_vs_ground_truth, workload_matches_ground_truth};
