//! The paper's three framework use cases (§II-D, §IV):
//! scalability prediction, mapping-algorithm evaluation, and the
//! projection-filter parameter study.

use crate::kernel_models::KernelModels;
use crate::pipeline::predict_kernel_seconds;
use pic_grid::ElementMesh;
use pic_mapping::MappingAlgorithm;
use pic_sim::instrument::WorkloadParams;
use pic_sim::KernelKind;
use pic_trace::ParticleTrace;
use pic_types::{Rank, Result};
use pic_workload::generator::{self, WorkloadConfig};
use pic_workload::metrics::{self, WorkloadSummary};
use pic_workload::sweep::{self, SweepPoint};

/// One rank-count point of a scalability study.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Target processor count.
    pub ranks: usize,
    /// Peak particles-per-rank at each sample (the Fig 5 series).
    pub peak_series: Vec<u32>,
    /// Workload summary (utilization, imbalance, migrations, bins).
    pub summary: WorkloadSummary,
}

/// Strong-scaling workload prediction from a single trace (paper §IV-B):
/// generate the workload at each target rank count and report the peak
/// series. The trace is never re-collected — that is the framework's
/// central economy. All rank counts replay through one sweep-engine pass
/// (mesh validated and mapper built once per rank count, decode shared),
/// bit-identical to per-configuration generation.
pub fn scalability_study(
    trace: &ParticleTrace,
    mesh: Option<&ElementMesh>,
    mapping: MappingAlgorithm,
    projection_filter: f64,
    rank_counts: &[usize],
) -> Result<Vec<ScalabilityPoint>> {
    let points: Vec<SweepPoint> = rank_counts
        .iter()
        .map(|&ranks| {
            let mut cfg = WorkloadConfig::new(ranks, mapping, projection_filter);
            // Peak-workload scaling only needs real-particle counts.
            cfg.compute_ghosts = false;
            SweepPoint::new(cfg)
        })
        .collect();
    let workloads = sweep::sweep(trace, &points, mesh)?;
    Ok(rank_counts
        .iter()
        .zip(workloads)
        .map(|(&ranks, w)| ScalabilityPoint {
            ranks,
            peak_series: w.real.peak_series(),
            summary: metrics::summarize(&w),
        })
        .collect())
}

/// The Fig 6 analysis: unbounded bin counts per sample and the optimal
/// processor count they imply.
#[derive(Debug, Clone)]
pub struct BinCountStudy {
    /// Sample iterations.
    pub iterations: Vec<u64>,
    /// Maximum bins the threshold permits at each sample.
    pub bin_series: Vec<usize>,
}

impl BinCountStudy {
    /// The optimal processor count: the maximum bin count ever generated
    /// (more processors than this can never receive particle workload).
    pub fn optimal_rank_count(&self) -> usize {
        self.bin_series.iter().copied().max().unwrap_or(0)
    }
}

/// Compute the unbounded bin-count series for a trace (paper Fig 6: "we
/// have relaxed the processor count limitation").
pub fn optimal_rank_study(trace: &ParticleTrace, threshold: f64) -> Result<BinCountStudy> {
    Ok(BinCountStudy {
        iterations: trace.iterations(),
        bin_series: generator::unbounded_bin_series(trace, threshold)?,
    })
}

/// One mapping algorithm's result at one rank count (Figs 8/9).
#[derive(Debug, Clone)]
pub struct MappingEvaluation {
    /// The algorithm evaluated.
    pub mapping: MappingAlgorithm,
    /// Target processor count.
    pub ranks: usize,
    /// Peak particles-per-rank over the run.
    pub peak_workload: u32,
    /// Resource utilization in `[0, 1]`.
    pub resource_utilization: f64,
    /// Number of ranks that ever held a particle.
    pub active_ranks: usize,
}

/// Evaluate mapping algorithms across rank counts from one trace
/// (paper §IV-C): who has the lower peak workload, and at what utilization.
/// The whole mapping × ranks grid replays through one sweep-engine pass;
/// results stay in mapping-major, then rank-count order.
pub fn mapping_comparison(
    trace: &ParticleTrace,
    mesh: Option<&ElementMesh>,
    projection_filter: f64,
    rank_counts: &[usize],
    algorithms: &[MappingAlgorithm],
) -> Result<Vec<MappingEvaluation>> {
    let mut points = Vec::with_capacity(algorithms.len() * rank_counts.len());
    for &mapping in algorithms {
        for &ranks in rank_counts {
            let mut cfg = WorkloadConfig::new(ranks, mapping, projection_filter);
            cfg.compute_ghosts = false;
            points.push(SweepPoint::new(cfg));
        }
    }
    let workloads = sweep::sweep(trace, &points, mesh)?;
    Ok(points
        .iter()
        .zip(workloads)
        .map(|(p, w)| MappingEvaluation {
            mapping: p.config.mapping,
            ranks: p.config.ranks,
            peak_workload: w.peak_workload(),
            resource_utilization: metrics::resource_utilization(&w.real),
            active_ranks: metrics::active_rank_count(&w.real),
        })
        .collect())
}

/// One projection-filter value's result (Fig 10).
#[derive(Debug, Clone)]
pub struct FilterStudyPoint {
    /// Projection filter size (= bin-size threshold).
    pub filter: f64,
    /// Maximum bins the threshold permits over the trace (Fig 10a).
    pub max_bins: usize,
    /// Total ghost particles generated over the run.
    pub total_ghosts: u64,
    /// Predicted `create_ghost_particles` time on the busiest rank,
    /// averaged over samples (Fig 10b).
    pub ghost_kernel_seconds: f64,
}

/// The projection-filter parameter study (paper §IV-D): smaller filters
/// allow more bins (better distribution); larger filters multiply ghosts
/// and the `create_ghost_particles` kernel time.
pub fn filter_study(
    trace: &ParticleTrace,
    ranks: usize,
    filters: &[f64],
    models: &KernelModels,
    elements_per_rank: &[u32],
    order: usize,
) -> Result<Vec<FilterStudyPoint>> {
    let ghost_slot = KernelKind::ALL
        .iter()
        .position(|&k| k == KernelKind::CreateGhostParticles)
        .expect("kernel list contains create_ghost_particles");
    // One sweep across all filters. Bin-based assignment depends on the
    // threshold, so the points don't collapse into one assignment group —
    // but the decode pass, mapper hoisting, and outer parallelism across
    // grid points are still shared, and the outputs are bit-identical to
    // per-configuration generation.
    let points: Vec<SweepPoint> = filters
        .iter()
        .map(|&filter| {
            SweepPoint::new(WorkloadConfig::new(
                ranks,
                MappingAlgorithm::BinBased,
                filter,
            ))
        })
        .collect();
    let workloads = sweep::sweep(trace, &points, None)?;
    let mut out = Vec::with_capacity(filters.len());
    for (&filter, w) in filters.iter().zip(&workloads) {
        let max_bins = generator::unbounded_bin_series(trace, filter)?
            .into_iter()
            .max()
            .unwrap_or(0);
        let total_ghosts: u64 = (0..w.samples()).map(|t| w.ghost_recv.sample_total(t)).sum();
        let predicted = predict_kernel_seconds(w, models, elements_per_rank, order, filter);
        // critical-path ghost kernel time: max over ranks, mean over samples
        let mut per_sample_max = Vec::with_capacity(predicted.len());
        for sample in &predicted {
            let m = sample.iter().map(|row| row[ghost_slot]).fold(0.0, f64::max);
            per_sample_max.push(m);
        }
        out.push(FilterStudyPoint {
            filter,
            max_bins,
            total_ghosts,
            ghost_kernel_seconds: pic_types::stats::mean(&per_sample_max),
        });
    }
    Ok(out)
}

/// Predicted peak-rank total kernel time per sample — the critical-path
/// series a system-level simulation follows (used by figure regeneration).
pub fn critical_path_series(
    workload: &pic_workload::DynamicWorkload,
    models: &KernelModels,
    elements_per_rank: &[u32],
    order: usize,
    filter: f64,
) -> Vec<f64> {
    let predicted = predict_kernel_seconds(workload, models, elements_per_rank, order, filter);
    predicted
        .iter()
        .map(|sample| {
            sample
                .iter()
                .map(|row| row.iter().sum::<f64>())
                .fold(0.0, f64::max)
        })
        .collect()
}

/// Convenience: the workload parameters of one rank at one sample, matching
/// the conventions used during instrumentation (sent ghosts for
/// `create_ghost_particles`, received for everything else).
pub fn params_at(
    workload: &pic_workload::DynamicWorkload,
    kernel: KernelKind,
    rank: Rank,
    sample: usize,
    elements_per_rank: &[u32],
    order: usize,
    filter: f64,
) -> WorkloadParams {
    let ngp = match kernel {
        KernelKind::CreateGhostParticles => workload.ghost_sent.get(rank, sample) as f64,
        _ => workload.ghost_recv.get(rank, sample) as f64,
    };
    WorkloadParams {
        np: workload.real.get(rank, sample) as f64,
        ngp,
        nel: elements_per_rank.get(rank.index()).copied().unwrap_or(0) as f64,
        n_order: order as f64,
        filter,
    }
}

/// One sampling-interval point of the trace-fidelity study (paper §II-D:
/// "A low sampling frequency would reduce the file size, but would not
/// accurately capture particle movement").
#[derive(Debug, Clone)]
pub struct SamplingStudyPoint {
    /// Subsampling stride applied to the reference trace.
    pub stride: usize,
    /// Estimated on-disk trace size at this stride (f32 storage), bytes.
    pub trace_bytes: u64,
    /// MAPE (percent) of the subsampled trace's peak-workload series
    /// against the full trace's series at the matching samples.
    pub peak_workload_mape: f64,
    /// Relative error (percent) of total migration counts per retained
    /// interval versus the full trace's migrations aggregated over the
    /// same interval. Coarser sampling *undercounts* migrations (back-and-
    /// forth movement inside an interval cancels out).
    pub migration_undercount_pct: f64,
}

/// Quantify the sampling-frequency trade-off: how much workload fidelity
/// is lost (and trace bytes saved) as the sampling interval grows.
///
/// The full-trace reference and every stride share one sweep-engine group:
/// the trace is decoded and every sample assigned exactly once, and each
/// stride's workload is assembled from the shared per-sample outcomes —
/// bit-identical to generating over `trace.subsample(stride)` separately.
pub fn sampling_frequency_study(
    trace: &ParticleTrace,
    ranks: usize,
    mapping: MappingAlgorithm,
    mesh: Option<&pic_grid::ElementMesh>,
    projection_filter: f64,
    strides: &[usize],
) -> Result<Vec<SamplingStudyPoint>> {
    let mut cfg = pic_workload::WorkloadConfig::new(ranks, mapping, projection_filter);
    cfg.compute_ghosts = false;
    // Point 0 is the stride-1 reference; the rest are the requested strides.
    let mut points = vec![SweepPoint::new(cfg.clone())];
    points.extend(
        strides
            .iter()
            .map(|&stride| SweepPoint::with_stride(cfg.clone(), stride.max(1))),
    );
    let workloads = sweep::sweep(trace, &points, mesh)?;
    let full = &workloads[0];
    let full_peaks = full.real.peak_series();
    let mut out = Vec::with_capacity(strides.len());
    for (&stride, w) in strides.iter().zip(&workloads[1..]) {
        let s = stride.max(1);
        let peaks: Vec<f64> = w.real.peak_series().iter().map(|&v| v as f64).collect();
        let reference: Vec<f64> = (0..trace.sample_count())
            .step_by(s)
            .map(|t| full_peaks[t] as f64)
            .collect();
        let peak_workload_mape = pic_types::stats::mape(&peaks, &reference);
        // migrations: full trace, aggregated over each retained interval,
        // versus the subsampled trace's per-interval diff
        let full_migrations: u64 = full.comm.total();
        let sub_migrations: u64 = w.comm.total();
        let undercount = if full_migrations == 0 {
            0.0
        } else {
            100.0 * (full_migrations.saturating_sub(sub_migrations)) as f64 / full_migrations as f64
        };
        out.push(SamplingStudyPoint {
            stride,
            trace_bytes: pic_trace::stats::estimated_file_size(
                trace.particle_count(),
                w.samples(),
                pic_trace::Precision::F32,
            ),
            peak_workload_mape,
            migration_undercount_pct: undercount,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_models::FitStrategy;
    use pic_grid::MeshDims;
    use pic_sim::{CostOracle, Recorder};
    use pic_trace::TraceMeta;
    use pic_types::rng::SplitMix64;
    use pic_types::{Aabb, Vec3};

    /// A Hele-Shaw-shaped synthetic trace: concentrated cloud that expands.
    fn expanding_trace(np: usize, t: usize, seed: u64) -> ParticleTrace {
        let mut rng = SplitMix64::new(seed);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(0.0, 1.0),
                )
            })
            .collect();
        let meta = TraceMeta::new(np, 10, Aabb::unit(), "study-test");
        let mut tr = ParticleTrace::new(meta);
        for k in 0..t {
            let scale = 0.02 + 0.06 * k as f64;
            let positions: Vec<Vec3> = dirs
                .iter()
                .map(|d| (Vec3::new(0.5, 0.5, 0.05) + *d * scale).clamp(Vec3::ZERO, Vec3::ONE))
                .collect();
            tr.push_positions(positions).unwrap();
        }
        tr
    }

    fn mesh() -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 3).unwrap()
    }

    fn trained_models(seed: u64) -> KernelModels {
        let oracle = CostOracle::noiseless();
        let mut rec = Recorder::new();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..120 {
            let p = WorkloadParams {
                np: rng.next_range(0.0, 500.0).round(),
                ngp: rng.next_range(0.0, 200.0).round(),
                nel: rng.next_range(4.0, 16.0).round(),
                n_order: 3.0,
                filter: 0.05,
            };
            for k in KernelKind::ALL {
                rec.record(k, p, oracle.true_cost(k, &p));
            }
        }
        KernelModels::fit(&rec, &FitStrategy::Linear, seed).unwrap()
    }

    #[test]
    fn scalability_peak_is_monotone_nonincreasing_in_ranks() {
        let tr = expanding_trace(800, 4, 1);
        let pts =
            scalability_study(&tr, None, MappingAlgorithm::BinBased, 1e-4, &[4, 16, 64]).unwrap();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(
                w[1].summary.peak_workload <= w[0].summary.peak_workload,
                "{} ranks peak {} vs {} ranks peak {}",
                w[0].ranks,
                w[0].summary.peak_workload,
                w[1].ranks,
                w[1].summary.peak_workload
            );
        }
    }

    #[test]
    fn coarse_threshold_freezes_scaling() {
        // Fig 5's flat region reproduced on the synthetic trace.
        let tr = expanding_trace(600, 3, 2);
        let pts =
            scalability_study(&tr, None, MappingAlgorithm::BinBased, 0.3, &[16, 64, 256]).unwrap();
        assert_eq!(pts[0].peak_series, pts[1].peak_series);
        assert_eq!(pts[1].peak_series, pts[2].peak_series);
    }

    #[test]
    fn optimal_rank_study_grows_with_boundary() {
        let tr = expanding_trace(2000, 5, 3);
        let study = optimal_rank_study(&tr, 0.08).unwrap();
        assert_eq!(study.bin_series.len(), 5);
        assert!(study.bin_series.last().unwrap() > study.bin_series.first().unwrap());
        assert_eq!(
            study.optimal_rank_count(),
            *study.bin_series.iter().max().unwrap()
        );
    }

    #[test]
    fn mapping_comparison_prefers_bins_for_concentrated_particles() {
        let tr = expanding_trace(1000, 3, 4);
        let m = mesh();
        let evals = mapping_comparison(
            &tr,
            Some(&m),
            1e-4,
            &[16],
            &[MappingAlgorithm::ElementBased, MappingAlgorithm::BinBased],
        )
        .unwrap();
        let el = &evals[0];
        let bin = &evals[1];
        assert_eq!(el.mapping, MappingAlgorithm::ElementBased);
        assert!(
            bin.peak_workload < el.peak_workload,
            "bin {} vs element {}",
            bin.peak_workload,
            el.peak_workload
        );
        assert!(bin.resource_utilization > el.resource_utilization);
        assert_eq!(
            bin.active_ranks,
            (bin.resource_utilization * 16.0).round() as usize
        );
    }

    #[test]
    fn filter_study_reproduces_fig10_shapes() {
        let tr = expanding_trace(800, 3, 5);
        let models = trained_models(6);
        // Filters chosen so the bounded partition stays at 16 bins for all of
        // them (the bin threshold is far below the bin sizes); the ghost
        // radius is then the only thing varying.
        let pts = filter_study(&tr, 16, &[0.01, 0.02, 0.04], &models, &[4; 16], 3).unwrap();
        assert_eq!(pts.len(), 3);
        // Fig 10a: bins shrink as the filter grows
        assert!(pts[0].max_bins >= pts[1].max_bins && pts[1].max_bins >= pts[2].max_bins);
        assert!(pts[0].max_bins > pts[2].max_bins);
        // Fig 10b: ghost totals and ghost kernel time grow with the filter
        assert!(pts[2].total_ghosts > pts[0].total_ghosts);
        assert!(pts[2].ghost_kernel_seconds > pts[0].ghost_kernel_seconds);
    }

    #[test]
    fn critical_path_series_is_positive_and_sized() {
        let tr = expanding_trace(400, 4, 7);
        let models = trained_models(8);
        let cfg = WorkloadConfig::new(8, MappingAlgorithm::BinBased, 0.05);
        let w = generator::generate(&tr, &cfg).unwrap();
        let series = critical_path_series(&w, &models, &[8; 8], 3, 0.05);
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn sampling_study_quantifies_fidelity_loss() {
        let tr = expanding_trace(800, 12, 11);
        let pts =
            sampling_frequency_study(&tr, 16, MappingAlgorithm::BinBased, None, 0.05, &[1, 2, 4])
                .unwrap();
        assert_eq!(pts.len(), 3);
        // stride 1 is the reference: zero error, full size
        assert_eq!(pts[0].peak_workload_mape, 0.0);
        assert_eq!(pts[0].migration_undercount_pct, 0.0);
        // coarser traces are smaller on disk
        assert!(pts[1].trace_bytes < pts[0].trace_bytes);
        assert!(pts[2].trace_bytes < pts[1].trace_bytes);
        // and undercount migrations (never overcount)
        assert!(pts[2].migration_undercount_pct >= 0.0);
        assert!(pts[2].migration_undercount_pct <= 100.0);
        // the peak-workload series at retained samples stays consistent
        // (same positions -> same mapping), so its MAPE is exactly zero
        for p in &pts {
            assert_eq!(p.peak_workload_mape, 0.0, "stride {}", p.stride);
        }
    }

    #[test]
    fn sweep_backed_drivers_match_per_config_generation() {
        let tr = expanding_trace(500, 4, 12);
        let m = mesh();
        // scalability: each point must equal a dedicated generator run
        let pts = scalability_study(&tr, Some(&m), MappingAlgorithm::ElementBased, 0.02, &[4, 8])
            .unwrap();
        for p in &pts {
            let mut cfg = WorkloadConfig::new(p.ranks, MappingAlgorithm::ElementBased, 0.02);
            cfg.compute_ghosts = false;
            let w = generator::generate_with_mesh(&tr, &cfg, Some(&m)).unwrap();
            assert_eq!(p.peak_series, w.real.peak_series());
            assert_eq!(p.summary, metrics::summarize(&w));
        }
        // mapping comparison: grid order and values must match the naive loop
        let evals = mapping_comparison(
            &tr,
            Some(&m),
            0.05,
            &[4, 8],
            &[MappingAlgorithm::HilbertOrdered, MappingAlgorithm::BinBased],
        )
        .unwrap();
        let mut i = 0;
        for &mapping in &[MappingAlgorithm::HilbertOrdered, MappingAlgorithm::BinBased] {
            for &ranks in &[4usize, 8] {
                let mut cfg = WorkloadConfig::new(ranks, mapping, 0.05);
                cfg.compute_ghosts = false;
                let w = generator::generate_with_mesh(&tr, &cfg, Some(&m)).unwrap();
                assert_eq!(evals[i].mapping, mapping);
                assert_eq!(evals[i].ranks, ranks);
                assert_eq!(evals[i].peak_workload, w.peak_workload());
                i += 1;
            }
        }
    }

    #[test]
    fn params_at_uses_sent_for_ghost_kernel() {
        let tr = expanding_trace(300, 2, 9);
        let cfg = WorkloadConfig::new(4, MappingAlgorithm::BinBased, 0.1);
        let w = generator::generate(&tr, &cfg).unwrap();
        let r = Rank::new(0);
        let pg = params_at(&w, KernelKind::CreateGhostParticles, r, 1, &[16; 4], 3, 0.1);
        let pi = params_at(&w, KernelKind::Interpolation, r, 1, &[16; 4], 3, 0.1);
        assert_eq!(pg.ngp, w.ghost_sent.get(r, 1) as f64);
        assert_eq!(pi.ngp, w.ghost_recv.get(r, 1) as f64);
        assert_eq!(pg.np, pi.np);
    }
}
