//! Content-addressed trace registry with a byte-budgeted LRU.
//!
//! Every trace the service ingests is decoded **once**, addressed by the
//! 128-bit FNV-1a digest of its raw encoded bytes, and kept resident
//! together with its [`AssignmentCache`] — the per-sample assignment +
//! [`pic_mapping::RegionIndex`] artifacts keyed by (mesh, binning) that
//! subsequent sweep/predict/check requests replay against without
//! re-running the mapper. Fitted [`KernelModels`] are registered the same
//! way (addressed by digest of their JSON). Re-ingesting identical bytes
//! lands on the identical address and, after an eviction, rebuilds
//! bit-identical artifacts — content-address stability the integration
//! tests assert.
//!
//! Eviction is strict LRU over *trace* entries by last-touch tick, where
//! an entry's weight is its decoded positions plus everything its
//! assignment cache holds; the most recently ingested entry is never
//! evicted by its own arrival. Model entries are tiny and capped by
//! count, LRU as well.

use pic_trace::ParticleTrace;
use pic_types::sync::TrackedMutex;
use pic_types::Vec3;
use pic_workload::{AssignmentCache, ReductionPlan};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

use crate::kernel_models::KernelModels;

/// Maximum fitted-model sets kept resident.
pub const MAX_MODELS: usize = 64;

/// Cache key for a reduction plan: the clustering knobs that determine
/// the plan bit-for-bit (the trace itself is fixed by the owning entry,
/// and the clustering is deterministic for a fixed seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Requested cluster count; `0` means automatic BIC-knee selection.
    pub k: usize,
    /// Upper bound of the automatic selection.
    pub k_max: usize,
    /// Clustering seed.
    pub seed: u64,
    /// Feature-histogram resolution (bins per axis).
    pub bins_per_axis: usize,
}

/// Per-trace cache of SimPoint reduction plans, keyed by clustering
/// knobs. Plans are built *outside* this lock (clustering is seconds on
/// large traces); two racing builders both build and the first insert
/// wins — deterministic construction makes both results identical, so
/// the race only costs duplicate work, never divergent answers.
pub struct PlanCache {
    inner: TrackedMutex<HashMap<PlanKey, Arc<ReductionPlan>>>,
}

impl PlanCache {
    fn new() -> PlanCache {
        PlanCache {
            inner: TrackedMutex::new(
                "serve.plan_cache",
                super::lock_order::PLAN_CACHE,
                HashMap::new(),
            ),
        }
    }

    /// Fetch the cached plan for `key`, if one is resident.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<ReductionPlan>> {
        self.inner.lock().get(key).map(Arc::clone)
    }

    /// Insert a freshly built plan; if another builder won the race the
    /// resident plan is returned instead and the argument is dropped.
    pub fn insert(&self, key: PlanKey, plan: ReductionPlan) -> Arc<ReductionPlan> {
        let mut inner = self.inner.lock();
        Arc::clone(inner.entry(key).or_insert_with(|| Arc::new(plan)))
    }

    /// Approximate resident bytes across every cached plan, counted into
    /// the owning trace entry's LRU weight.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().values().map(|p| p.approx_bytes()).sum()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One resident trace: the decoded positions and the artifact cache every
/// request against this trace shares.
pub struct ResidentTrace {
    /// The decoded trace.
    pub trace: Arc<ParticleTrace>,
    /// Shared per-trace assignment artifacts.
    pub cache: Arc<AssignmentCache>,
    /// Shared per-trace reduction plans (SimPoint clustering results).
    pub plans: Arc<PlanCache>,
    /// Raw encoded bytes ingested (for reporting; the bytes themselves
    /// are not kept).
    pub encoded_bytes: u64,
}

struct TraceEntry {
    resident: ResidentTrace,
    last_used: u64,
}

struct ModelEntry {
    models: Arc<KernelModels>,
    last_used: u64,
}

/// Registry counters, serialized into `GET /stats` responses.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RegistryStats {
    /// Trace lookups served from residency.
    pub trace_hits: u64,
    /// Trace lookups that found nothing resident.
    pub trace_misses: u64,
    /// Trace entries evicted under budget pressure.
    pub trace_evictions: u64,
    /// Traces ingested (including re-ingests of a resident address).
    pub ingests: u64,
    /// Traces currently resident.
    pub resident_traces: usize,
    /// Approximate bytes resident (decoded traces + assignment caches).
    pub resident_bytes: usize,
    /// Model sets currently resident.
    pub resident_models: usize,
}

struct RegistryInner {
    traces: HashMap<String, TraceEntry>,
    models: HashMap<String, ModelEntry>,
    tick: u64,
    stats: RegistryStats,
}

/// The registry. `Send + Sync`; all mutation behind one mutex — every
/// critical section is bookkeeping only, never a replay (replays happen
/// outside the lock against `Arc`-shared entries). That bookkeeping-only
/// contract is also what makes poison recovery sound: a panic under the
/// lock cannot leave a half-applied multi-step update. The registry lock
/// is the *outermost* class of the declared serve hierarchy — weighing
/// entries under it takes each entry's assignment-cache lock (level 100).
pub struct TraceRegistry {
    budget_bytes: usize,
    inner: TrackedMutex<RegistryInner>,
}

fn trace_bytes(trace: &ParticleTrace) -> usize {
    trace.sample_count() * trace.particle_count() * std::mem::size_of::<Vec3>()
        + trace.sample_count() * 64
}

fn entry_bytes(e: &ResidentTrace) -> usize {
    trace_bytes(&e.trace) + e.cache.stats().resident_bytes + e.plans.resident_bytes()
}

impl TraceRegistry {
    /// A registry holding at most ~`budget_bytes` of decoded traces and
    /// assignment artifacts.
    pub fn new(budget_bytes: usize) -> TraceRegistry {
        TraceRegistry {
            budget_bytes,
            inner: TrackedMutex::new(
                "serve.registry",
                super::lock_order::REGISTRY,
                RegistryInner {
                    traces: HashMap::new(),
                    models: HashMap::new(),
                    tick: 0,
                    stats: RegistryStats::default(),
                },
            ),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Register a decoded trace under its content address. If the address
    /// is already resident the existing entry (and its warmed-up artifact
    /// cache) is kept and returned — identical bytes, identical artifacts.
    /// Returns the resident handle and the addresses evicted to make room.
    pub fn insert_trace(
        &self,
        address: &str,
        trace: ParticleTrace,
        encoded_bytes: u64,
    ) -> (Arc<ParticleTrace>, Vec<String>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.stats.ingests += 1;
        if let Some(e) = inner.traces.get_mut(address) {
            e.last_used = tick;
            let out = Arc::clone(&e.resident.trace);
            drop(inner);
            return (out, Vec::new());
        }
        let resident = ResidentTrace {
            trace: Arc::new(trace),
            // Each trace's artifact cache shares the registry-wide budget;
            // the eviction loop below weighs whatever it actually holds.
            cache: Arc::new(AssignmentCache::new(self.budget_bytes)),
            plans: Arc::new(PlanCache::new()),
            encoded_bytes,
        };
        let out = Arc::clone(&resident.trace);
        inner.traces.insert(
            address.to_string(),
            TraceEntry {
                resident,
                last_used: tick,
            },
        );
        let evicted = Self::evict_over_budget(&mut inner, self.budget_bytes, Some(address));
        (out, evicted)
    }

    fn evict_over_budget(
        inner: &mut RegistryInner,
        budget: usize,
        keep: Option<&str>,
    ) -> Vec<String> {
        let mut evicted = Vec::new();
        loop {
            let total: usize = inner
                .traces
                .values()
                .map(|e| entry_bytes(&e.resident))
                .sum();
            inner.stats.resident_bytes = total;
            inner.stats.resident_traces = inner.traces.len();
            if total <= budget || inner.traces.len() <= 1 {
                break;
            }
            let victim = inner
                .traces
                .iter()
                .filter(|(addr, _)| keep != Some(addr.as_str()))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(addr, _)| addr.clone());
            match victim {
                Some(addr) => {
                    inner.traces.remove(&addr);
                    inner.stats.trace_evictions += 1;
                    evicted.push(addr);
                }
                None => break,
            }
        }
        evicted
    }

    /// Look up a resident trace by content address, bumping its recency.
    pub fn get_trace(&self, address: &str) -> Option<(Arc<ParticleTrace>, Arc<AssignmentCache>)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.traces.get_mut(address) {
            Some(e) => {
                e.last_used = tick;
                let out = (Arc::clone(&e.resident.trace), Arc::clone(&e.resident.cache));
                inner.stats.trace_hits += 1;
                Some(out)
            }
            None => {
                inner.stats.trace_misses += 1;
                None
            }
        }
    }

    /// The reduction-plan cache of a resident trace, without bumping its
    /// recency (a plan lookup always follows a `get_trace` on the same
    /// address, which already did).
    pub fn plan_cache(&self, address: &str) -> Option<Arc<PlanCache>> {
        let inner = self.inner.lock();
        inner
            .traces
            .get(address)
            .map(|e| Arc::clone(&e.resident.plans))
    }

    /// Register fitted models under their content address.
    pub fn insert_models(&self, address: &str, models: KernelModels) -> Arc<KernelModels> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.models.get_mut(address) {
            e.last_used = tick;
            return Arc::clone(&e.models);
        }
        let arc = Arc::new(models);
        inner.models.insert(
            address.to_string(),
            ModelEntry {
                models: Arc::clone(&arc),
                last_used: tick,
            },
        );
        while inner.models.len() > MAX_MODELS {
            let victim = inner
                .models
                .iter()
                .filter(|(addr, _)| addr.as_str() != address)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(addr, _)| addr.clone());
            match victim {
                Some(a) => {
                    inner.models.remove(&a);
                }
                None => break,
            }
        }
        inner.stats.resident_models = inner.models.len();
        arc
    }

    /// Look up resident models by content address.
    pub fn get_models(&self, address: &str) -> Option<Arc<KernelModels>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.models.get_mut(address).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.models)
        })
    }

    /// One line per resident trace: `(address, particles, samples,
    /// encoded bytes, approx resident bytes)`, address-sorted.
    pub fn list_traces(&self) -> Vec<(String, usize, usize, u64, usize)> {
        let inner = self.inner.lock();
        let mut out: Vec<_> = inner
            .traces
            .iter()
            .map(|(addr, e)| {
                (
                    addr.clone(),
                    e.resident.trace.particle_count(),
                    e.resident.trace.sample_count(),
                    e.resident.encoded_bytes,
                    entry_bytes(&e.resident),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Current counters (recomputes resident bytes so assignment-cache
    /// growth since the last eviction pass is reflected).
    pub fn stats(&self) -> RegistryStats {
        let mut inner = self.inner.lock();
        inner.stats.resident_bytes = inner
            .traces
            .values()
            .map(|e| entry_bytes(&e.resident))
            .sum();
        inner.stats.resident_traces = inner.traces.len();
        inner.stats.resident_models = inner.models.len();
        inner.stats
    }

    /// Aggregate assignment-cache counters across every resident trace.
    pub fn aggregate_cache_stats(&self) -> pic_workload::AssignmentCacheStats {
        let inner = self.inner.lock();
        let mut agg = pic_workload::AssignmentCacheStats::default();
        for e in inner.traces.values() {
            let s = e.resident.cache.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.evictions += s.evictions;
            agg.resident_bytes += s.resident_bytes;
            agg.entries += s.entries;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_trace::TraceMeta;
    use pic_types::{Aabb, Vec3};

    fn trace(n: usize, samples: usize, tag: &str) -> ParticleTrace {
        let meta = TraceMeta::new(n, 10, Aabb::unit(), tag);
        let mut tr = ParticleTrace::new(meta);
        for k in 0..samples {
            tr.push_positions(vec![Vec3::splat(0.1 * (k + 1) as f64); n])
                .unwrap();
        }
        tr
    }

    #[test]
    fn insert_get_and_reingest_share_entry() {
        let reg = TraceRegistry::new(usize::MAX);
        let (a1, ev) = reg.insert_trace("aa", trace(10, 3, "x"), 100);
        assert!(ev.is_empty());
        let (t, _cache) = reg.get_trace("aa").unwrap();
        assert!(Arc::ptr_eq(&a1, &t));
        // re-ingest: same entry survives, no duplicate
        let (a2, _) = reg.insert_trace("aa", trace(10, 3, "x"), 100);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(reg.stats().resident_traces, 1);
        assert_eq!(reg.stats().ingests, 2);
        assert!(reg.get_trace("bb").is_none());
        assert_eq!(reg.stats().trace_misses, 1);
    }

    #[test]
    fn lru_eviction_under_byte_pressure() {
        let one = trace_bytes(&trace(100, 4, "x"));
        let reg = TraceRegistry::new(2 * one + one / 2);
        reg.insert_trace("t1", trace(100, 4, "a"), 1);
        reg.insert_trace("t2", trace(100, 4, "b"), 1);
        // touch t1 so t2 is the LRU when t3 arrives
        reg.get_trace("t1").unwrap();
        let (_, evicted) = reg.insert_trace("t3", trace(100, 4, "c"), 1);
        assert_eq!(evicted, vec!["t2".to_string()]);
        assert!(reg.get_trace("t2").is_none());
        assert!(reg.get_trace("t1").is_some());
        assert!(reg.get_trace("t3").is_some());
        assert_eq!(reg.stats().trace_evictions, 1);
    }

    #[test]
    fn oversized_single_entry_is_admitted() {
        let reg = TraceRegistry::new(1);
        let (_, ev) = reg.insert_trace("big", trace(1000, 4, "big"), 1);
        assert!(ev.is_empty());
        assert!(reg.get_trace("big").is_some());
    }

    fn tiny_recorder() -> pic_sim::Recorder {
        let mut rec = pic_sim::Recorder::new();
        let oracle = pic_sim::CostOracle::noiseless();
        for np in [0.0, 10.0, 100.0, 500.0] {
            for k in pic_sim::KernelKind::ALL {
                let p = pic_sim::instrument::WorkloadParams {
                    np,
                    ngp: np / 10.0,
                    nel: 8.0,
                    n_order: 3.0,
                    filter: 0.04,
                };
                rec.record(k, p, oracle.true_cost(k, &p));
            }
        }
        rec
    }

    #[test]
    fn models_capped_by_count() {
        let reg = TraceRegistry::new(usize::MAX);
        let rec = tiny_recorder();
        for i in 0..(MAX_MODELS + 3) {
            let m = KernelModels::fit(&rec, &crate::kernel_models::FitStrategy::Linear, 1).unwrap();
            reg.insert_models(&format!("m{i:03}"), m);
        }
        assert_eq!(reg.stats().resident_models, MAX_MODELS);
        // newest still resident, oldest gone
        assert!(reg.get_models(&format!("m{:03}", MAX_MODELS + 2)).is_some());
        assert!(reg.get_models("m000").is_none());
    }
}
