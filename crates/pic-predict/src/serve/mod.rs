//! `picpredict serve` — the resident prediction service (DESIGN.md §13).
//!
//! A long-lived daemon that keeps ingested traces *decoded once* in a
//! content-addressed [`registry::TraceRegistry`] and answers
//! sweep/predict/check requests against them over hand-rolled HTTP/1.1 +
//! JSON (`std::net` only; the workspace is offline). The performance
//! contract:
//!
//! * **Ingest once, replay many.** `POST /traces` streams the body
//!   through [`pic_trace::BoundedReader`] → [`pic_trace::DigestReader`] →
//!   [`pic_trace::AnyTraceReader`]: the trace — raw or compact
//!   delta-encoded, sniffed by magic — is decoded exactly once, its
//!   content address is the FNV-1a-128 digest of the bytes the decoder
//!   consumed, and identical bytes always land on the identical address.
//! * **Shared replays.** Requests against a resident trace run through
//!   [`pic_workload::sweep_with_cache`] on the trace's shared
//!   [`pic_workload::AssignmentCache`], so concurrent and repeat requests
//!   reuse per-sample assignment artifacts (mapper pass + region index)
//!   across filter radii, strides, and ghost toggles. Byte-identical
//!   in-flight requests additionally collapse onto one computation
//!   (single-flight batching).
//! * **Bit-identical to offline.** A `POST /sweep` response body is
//!   byte-for-byte the file `picpredict sweep --out` writes for the same
//!   grid — both serialize through [`crate::gridspec`], and the cached
//!   sweep engine is bit-identical to the per-configuration reference.
//! * **Gated responses.** Sweep grids pass
//!   [`pic_analysis::assert_sweep_valid`] and predictions pass
//!   [`pic_analysis::check_prediction`] before a byte leaves the server.
//! * **Opt-in reduced replay.** A sweep request carrying `"reduced":
//!   true` replays SimPoint representatives instead of every sample
//!   (stride 1 only); the reduction plan is cached per trace in its
//!   [`registry::PlanCache`] under the same LRU weight, and every grid
//!   point passes the [`pic_analysis::check_reduction`] holdout gate —
//!   the broadcast reconstruction cannot satisfy the `comm-flow`
//!   invariant, so the error-budget gate is the acceptance check.
//! * **Adversarial clients survive.** Framing is bounded and deadlined
//!   (see [`http`]); the pic-trace fault corpus replayed over a socket
//!   yields positioned 4xx responses, never a panic or a hung thread.

pub mod http;
pub mod registry;

use crate::gridspec::{grid_entries, grid_to_json, SweepGridSpec};
use crate::kernel_models::KernelModels;
use http::{HttpError, Request};
use pic_grid::{ElementMesh, MeshDims};
use pic_mapping::MappingAlgorithm;
use pic_trace::{AnyTraceReader, BoundedReader, DigestReader, ParticleTrace};
use pic_types::hash::fnv1a_128;
use pic_types::sync::{TrackedCondvar, TrackedMutex, TrackedRwLock};
use pic_types::{PicError, Result};
use pic_workload::{SweepPoint, WorkloadConfig};
use registry::TraceRegistry;
use serde::Deserialize;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The declared lock hierarchy of the serve layer (DESIGN.md §14).
///
/// Levels must strictly increase along any nested acquisition; the
/// tracked primitives check this on every lock in debug/test builds.
/// The sweep-engine `AssignmentCache` sits *below* everything here (level
/// 100, declared in `pic-workload`): the registry computes entry weights
/// by calling `cache.stats()` under its own lock, so `registry <
/// assignment_cache` is a real nesting this hierarchy must admit.
pub(crate) mod lock_order {
    /// `TraceRegistry::inner` — the outermost serve lock.
    pub const REGISTRY: u32 = 10;
    /// `ServerState::inflight` — the single-flight table.
    pub const INFLIGHT: u32 = 20;
    /// `Flight::done` — one in-flight computation's result slot.
    pub const FLIGHT_DONE: u32 = 30;
    /// `ServerState::shutdown` — the shutdown flag.
    pub const SHUTDOWN: u32 = 40;
    /// `ServerState::addr` — the bound-address cell.
    pub const ADDR: u32 = 50;
    /// `PlanCache::inner` — a resident trace's reduction-plan map. Sits
    /// above the `pic-workload` assignment cache (level 100) because the
    /// registry weighs both sequentially under its own lock when
    /// computing entry bytes.
    pub const PLAN_CACHE: u32 = 110;
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Registry byte budget for decoded traces + assignment artifacts.
    pub budget_bytes: usize,
    /// Per-socket read deadline (slow-loris cutoff).
    pub read_timeout: Duration,
    /// Per-socket write deadline.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            budget_bytes: 512 << 20,
            read_timeout: Duration::from_millis(2000),
            write_timeout: Duration::from_millis(10_000),
            max_body_bytes: 256 << 20,
        }
    }
}

/// One single-flight computation: followers park on the condvar until the
/// leader publishes `(status, body)`.
struct Flight {
    done: TrackedMutex<Option<(u16, String)>>,
    cv: TrackedCondvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            done: TrackedMutex::new("serve.flight.done", lock_order::FLIGHT_DONE, None),
            cv: TrackedCondvar::new(),
        }
    }
}

/// Shared server state. `Send + Sync`: the registry and flight table are
/// mutex-guarded, counters are atomics, and request handlers only hold
/// `Arc`s into registry entries while computing.
pub struct ServerState {
    cfg: ServeConfig,
    registry: TraceRegistry,
    inflight: TrackedMutex<HashMap<u128, Arc<Flight>>>,
    requests: AtomicU64,
    errors: AtomicU64,
    batched: AtomicU64,
    active_connections: AtomicUsize,
    shutdown: TrackedMutex<bool>,
    shutdown_cv: TrackedCondvar,
    addr: TrackedRwLock<Option<SocketAddr>>,
}

impl ServerState {
    fn new(cfg: ServeConfig) -> ServerState {
        ServerState {
            registry: TraceRegistry::new(cfg.budget_bytes),
            cfg,
            inflight: TrackedMutex::new("serve.inflight", lock_order::INFLIGHT, HashMap::new()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            shutdown: TrackedMutex::new("serve.shutdown", lock_order::SHUTDOWN, false),
            shutdown_cv: TrackedCondvar::new(),
            addr: TrackedRwLock::new("serve.addr", lock_order::ADDR, None),
        }
    }

    /// The trace/model registry (exposed for tests and stats).
    pub fn registry(&self) -> &TraceRegistry {
        &self.registry
    }

    /// Request counters since startup: `(requests, errors, batched)`.
    /// `batched` counts requests that rode an identical in-flight
    /// computation instead of running their own.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.batched.load(Ordering::Relaxed),
        )
    }

    fn is_shutting_down(&self) -> bool {
        *self.shutdown.lock()
    }

    fn begin_shutdown(&self) {
        {
            let mut flag = self.shutdown.lock();
            if *flag {
                return;
            }
            *flag = true;
        }
        self.shutdown_cv.notify_all();
        // Poke the accept loop out of its blocking accept.
        if let Some(addr) = *self.addr.read() {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    fn wait_shutdown(&self) {
        let flag = self.shutdown.lock();
        // wait_while re-checks under the lock on every wakeup: lost and
        // spurious wakeups cannot produce a premature return (the model
        // in pic-analysis::serve_model::shutdown proves the handshake).
        let _flag = self.shutdown_cv.wait_while(flag, |f| !*f);
    }
}

/// A running server: accept loop plus one thread per connection.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns as soon as the listener is live.
    pub fn start(cfg: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| PicError::config(format!("cannot bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PicError::config(format!("cannot resolve bound address: {e}")))?;
        let state = Arc::new(ServerState::new(cfg));
        *state.addr.write() = Some(addr);
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_state.is_shutting_down() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let st = Arc::clone(&accept_state);
                st.active_connections.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    handle_connection(&st, stream);
                    st.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (stats inspection in tests and benches).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Block until `POST /shutdown` (or [`Server::shutdown`] from another
    /// thread via the state handle), then drain connections and join the
    /// accept loop.
    pub fn run_to_completion(mut self) {
        self.state.wait_shutdown();
        self.cleanup();
    }

    /// Initiate shutdown and drain: stops accepting, waits (bounded) for
    /// in-flight connections, joins the accept thread.
    pub fn shutdown(mut self) {
        self.state.begin_shutdown();
        self.cleanup();
    }

    fn cleanup(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.state.active_connections.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.begin_shutdown();
        self.cleanup();
    }
}

// --------------------------------------------------------------- routing

fn handle_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let head = match http::read_head(&mut reader) {
        Ok(h) => h,
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            http::write_error(&mut write_half, &e);
            lingering_close(&mut reader);
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    match route(state, &head, &mut reader) {
        Ok((status, body)) => {
            http::write_response(&mut write_half, status, "application/json", body.as_bytes());
        }
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            http::write_error(&mut write_half, &e);
            lingering_close(&mut reader);
        }
    }
}

/// Drain (bounded) whatever request bytes the client already sent before
/// dropping an errored connection. Closing with unread data in the
/// receive buffer makes the kernel send RST, which can destroy the error
/// response before the client reads it.
fn lingering_close(reader: &mut BufReader<TcpStream>) {
    use std::io::Read;
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(150)));
    let mut scratch = [0u8; 16 * 1024];
    let mut drained = 0usize;
    while drained < 1 << 20 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Dispatch one parsed request. JSON-body endpoints read the (bounded)
/// body here; `POST /traces` streams it straight into the decoder.
fn route(
    state: &ServerState,
    head: &Request,
    reader: &mut BufReader<TcpStream>,
) -> std::result::Result<(u16, String), HttpError> {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => Ok((200, "{\"ok\":true}".to_string())),
        ("GET", "/stats") => handle_stats(state),
        ("GET", "/traces") => handle_list_traces(state),
        ("POST", "/shutdown") => {
            state.begin_shutdown();
            Ok((200, "{\"ok\":true,\"shutting_down\":true}".to_string()))
        }
        ("POST", "/traces") => handle_ingest_trace(state, head, reader),
        ("POST", "/models") => {
            let body = read_json_body(state, head, reader)?;
            handle_ingest_models(state, &body)
        }
        ("POST", path @ ("/sweep" | "/predict" | "/check")) => {
            let body = read_json_body(state, head, reader)?;
            let key = flight_key(path, &body);
            single_flight(state, key, || match path {
                "/sweep" => handle_sweep(state, &body),
                "/predict" => handle_predict(state, &body),
                _ => handle_check(state, &body),
            })
        }
        (
            _,
            "/healthz" | "/stats" | "/traces" | "/shutdown" | "/sweep" | "/predict" | "/check"
            | "/models",
        ) => Err(HttpError::new(
            405,
            format!("method {} not allowed on {}", head.method, head.path),
        )),
        (_, path) => Err(HttpError::new(404, format!("no such endpoint {path}"))),
    }
}

fn read_json_body(
    state: &ServerState,
    head: &Request,
    reader: &mut BufReader<TcpStream>,
) -> std::result::Result<Vec<u8>, HttpError> {
    let len = head
        .content_length
        .ok_or_else(|| HttpError::new(411, "Content-Length required"))?;
    if len > state.cfg.max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "declared body of {len} bytes exceeds the {} byte limit",
                state.cfg.max_body_bytes
            ),
        ));
    }
    http::read_body(reader, len)
}

fn flight_key(path: &str, body: &[u8]) -> u128 {
    let mut keyed = Vec::with_capacity(path.len() + 1 + body.len());
    keyed.extend_from_slice(path.as_bytes());
    keyed.push(0);
    keyed.extend_from_slice(body);
    fnv1a_128(&keyed)
}

/// Publishes a flight's result exactly once, even if the leader panics.
///
/// The leader's obligation — publish, wake followers, clear the table
/// entry — is owed no matter how the compute ends. If the leader unwinds
/// before [`FlightPublisher::publish`] runs (the abandonment bug the
/// single-flight model in `pic-analysis::serve_model` proves deadlocks
/// followers), `Drop` publishes a 500 so every parked follower gets a
/// response and a later request can elect a fresh leader.
struct FlightPublisher<'a> {
    state: &'a ServerState,
    key: u128,
    flight: &'a Flight,
    published: bool,
}

impl FlightPublisher<'_> {
    fn publish(&mut self, outcome: (u16, String)) {
        *self.flight.done.lock() = Some(outcome);
        self.flight.cv.notify_all();
        self.state.inflight.lock().remove(&self.key);
        self.published = true;
    }
}

impl Drop for FlightPublisher<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.state.errors.fetch_add(1, Ordering::Relaxed);
            self.publish((
                500,
                "{\"error\":{\"status\":500,\"message\":\"request computation \
                 abandoned: the leading request panicked before publishing\"}}"
                    .to_string(),
            ));
        }
    }
}

/// Collapse byte-identical in-flight requests onto one computation: the
/// first arrival computes, later arrivals park and share the response.
fn single_flight(
    state: &ServerState,
    key: u128,
    compute: impl FnOnce() -> std::result::Result<(u16, String), HttpError>,
) -> std::result::Result<(u16, String), HttpError> {
    let (flight, leader) = {
        let mut tbl = state.inflight.lock();
        match tbl.get(&key) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(Flight::new());
                tbl.insert(key, Arc::clone(&f));
                (f, true)
            }
        }
    };
    if leader {
        let mut publisher = FlightPublisher {
            state,
            key,
            flight: &flight,
            published: false,
        };
        let outcome = compute();
        let published = match &outcome {
            Ok(ok) => ok.clone(),
            Err(e) => (
                e.status,
                format!(
                    "{{\"error\":{{\"status\":{},\"message\":{}}}}}",
                    e.status,
                    http::json_escape(&e.message)
                ),
            ),
        };
        publisher.publish(published);
        outcome
    } else {
        state.batched.fetch_add(1, Ordering::Relaxed);
        let done = flight.done.lock();
        let done = flight.cv.wait_while(done, |d| d.is_none());
        let (status, body) = done
            .clone()
            .expect("wait_while guarantees a published result");
        Ok((status, body))
    }
}

// -------------------------------------------------------------- handlers

fn handle_stats(state: &ServerState) -> std::result::Result<(u16, String), HttpError> {
    let reg = serde_json::to_string(&state.registry.stats())
        .map_err(|e| HttpError::new(500, format!("stats serialization: {e}")))?;
    let cache = serde_json::to_string(&state.registry.aggregate_cache_stats())
        .map_err(|e| HttpError::new(500, format!("stats serialization: {e}")))?;
    let body = format!(
        "{{\"requests\":{},\"errors\":{},\"batched\":{},\"budget_bytes\":{},\"registry\":{reg},\"sweep_cache\":{cache}}}",
        state.requests.load(Ordering::Relaxed),
        state.errors.load(Ordering::Relaxed),
        state.batched.load(Ordering::Relaxed),
        state.cfg.budget_bytes,
    );
    Ok((200, body))
}

fn handle_list_traces(state: &ServerState) -> std::result::Result<(u16, String), HttpError> {
    let rows: Vec<String> = state
        .registry
        .list_traces()
        .into_iter()
        .map(|(addr, particles, samples, encoded, resident)| {
            format!(
                "{{\"address\":\"{addr}\",\"particles\":{particles},\"samples\":{samples},\
                 \"encoded_bytes\":{encoded},\"resident_bytes\":{resident}}}"
            )
        })
        .collect();
    Ok((200, format!("[{}]", rows.join(","))))
}

fn handle_ingest_trace(
    state: &ServerState,
    head: &Request,
    reader: &mut BufReader<TcpStream>,
) -> std::result::Result<(u16, String), HttpError> {
    let len = head
        .content_length
        .ok_or_else(|| HttpError::new(411, "Content-Length required for trace ingest"))?;
    if len == 0 {
        return Err(HttpError::new(400, "empty trace body"));
    }
    if len > state.cfg.max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "declared trace of {len} bytes exceeds the {} byte limit",
                state.cfg.max_body_bytes
            ),
        ));
    }
    // The hardened ingest stack: cap at the declaration, digest what the
    // decoder consumes, decode frame-by-frame. No full-body buffer exists
    // at any point.
    let bounded = BoundedReader::new(reader, len);
    let mut digesting = DigestReader::new(bounded);
    let decoded: Result<ParticleTrace> = (|| {
        let mut tr = AnyTraceReader::new(&mut digesting)?;
        let meta = tr.meta().clone();
        let mut trace = ParticleTrace::new(meta);
        while let Some(sample) = tr.read_sample()? {
            trace.push_sample(sample)?;
        }
        Ok(trace)
    })();
    let trace = decoded.map_err(|e| match e {
        PicError::Io(ref io)
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            HttpError::new(
                408,
                format!("read deadline expired during trace ingest: {e}"),
            )
        }
        e => HttpError::new(422, format!("trace rejected: {e}")),
    })?;
    let consumed = digesting.bytes_read();
    if consumed != len {
        return Err(HttpError::new(
            400,
            format!("trace decoded cleanly at byte {consumed} but body declares {len} bytes"),
        ));
    }
    let address = digesting.digest().hex();
    let (resident, evicted) = state.registry.insert_trace(&address, trace, len);
    let evicted_json: Vec<String> = evicted.iter().map(|a| format!("\"{a}\"")).collect();
    let body = format!(
        "{{\"address\":\"{address}\",\"particles\":{},\"samples\":{},\"encoded_bytes\":{len},\
         \"evicted\":[{}]}}",
        resident.particle_count(),
        resident.sample_count(),
        evicted_json.join(",")
    );
    Ok((200, body))
}

fn handle_ingest_models(
    state: &ServerState,
    body: &[u8],
) -> std::result::Result<(u16, String), HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| HttpError::new(400, format!("models body is not UTF-8: {e}")))?;
    // from_json runs the full admission pass: corrupt or degenerate
    // models are rejected here with positioned diagnostics.
    let models = KernelModels::from_json(text)
        .map_err(|e| HttpError::new(422, format!("models rejected: {e}")))?;
    let mut digest = pic_types::hash::Fnv128::new();
    digest.update(body);
    let address = digest.hex();
    let resident = state.registry.insert_models(&address, models);
    let body = format!(
        "{{\"address\":\"{address}\",\"kernels\":{}}}",
        resident.models().len()
    );
    Ok((200, body))
}

// Request shapes. Unknown fields are rejected by the vendored serde
// derive, which keeps client typos loud.

fn default_mappings() -> Vec<String> {
    vec!["bin-based".to_string()]
}
fn default_filters() -> Vec<f64> {
    vec![0.03]
}
fn default_strides() -> Vec<usize> {
    vec![1]
}
fn default_true() -> bool {
    true
}
fn default_order() -> usize {
    3
}
fn default_machine() -> String {
    "quartz".to_string()
}
fn default_sync() -> String {
    "barrier".to_string()
}
fn default_mapping_one() -> String {
    "bin-based".to_string()
}

#[derive(Deserialize)]
struct SweepRequest {
    trace: String,
    ranks: Vec<usize>,
    #[serde(default = "default_mappings")]
    mappings: Vec<String>,
    #[serde(default = "default_filters")]
    filters: Vec<f64>,
    #[serde(default = "default_strides")]
    strides: Vec<usize>,
    #[serde(default = "default_true")]
    ghosts: bool,
    #[serde(default)]
    mesh: Option<String>,
    #[serde(default = "default_order")]
    order: usize,
    /// Replay SimPoint representatives instead of every sample.
    #[serde(default)]
    reduced: bool,
    /// Fixed cluster count for the reduction (`null` = automatic).
    #[serde(default)]
    reduced_k: Option<usize>,
    /// Peak-load holdout error budget (default 2%).
    #[serde(default)]
    reduced_budget: Option<f64>,
}

#[derive(Deserialize)]
struct PredictRequest {
    trace: String,
    models: String,
    ranks: usize,
    #[serde(default = "default_mapping_one")]
    mapping: String,
    #[serde(default = "default_filters")]
    filters: Vec<f64>,
    #[serde(default = "default_machine")]
    machine: String,
    #[serde(default = "default_sync")]
    sync: String,
    #[serde(default)]
    mesh: Option<String>,
    #[serde(default = "default_order")]
    order: usize,
}

#[derive(Deserialize)]
struct CheckRequest {
    trace: String,
    ranks: usize,
    #[serde(default = "default_mapping_one")]
    mapping: String,
    #[serde(default = "default_filters")]
    filters: Vec<f64>,
    #[serde(default)]
    mesh: Option<String>,
    #[serde(default = "default_order")]
    order: usize,
}

fn parse_request<T: Deserialize>(body: &[u8]) -> std::result::Result<T, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| HttpError::new(400, format!("request body is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| HttpError::new(400, format!("bad request JSON: {e}")))
}

fn parse_mapping_name(s: &str) -> std::result::Result<MappingAlgorithm, HttpError> {
    serde_json::from_str(&format!("\"{s}\""))
        .map_err(|_| HttpError::new(422, format!("unknown mapping '{s}'")))
}

fn parse_mesh_spec(
    spec: Option<&str>,
    order: usize,
    domain: pic_types::Aabb,
) -> std::result::Result<Option<ElementMesh>, HttpError> {
    let Some(spec) = spec else { return Ok(None) };
    let dims: Vec<usize> = spec
        .split('x')
        .map(|p| {
            p.parse()
                .map_err(|_| HttpError::new(422, format!("bad mesh spec '{spec}' (want AxBxC)")))
        })
        .collect::<std::result::Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(HttpError::new(
            422,
            format!("mesh spec '{spec}' must have three axes"),
        ));
    }
    ElementMesh::new(domain, MeshDims::new(dims[0], dims[1], dims[2]), order)
        .map(Some)
        .map_err(|e| HttpError::new(422, format!("bad mesh: {e}")))
}

fn resolve_trace(
    state: &ServerState,
    address: &str,
) -> std::result::Result<(Arc<ParticleTrace>, Arc<pic_workload::AssignmentCache>), HttpError> {
    state.registry.get_trace(address).ok_or_else(|| {
        HttpError::new(
            404,
            format!("trace {address} is not resident; POST /traces it first"),
        )
    })
}

fn semantic(e: PicError) -> HttpError {
    HttpError::new(422, format!("{e}"))
}

fn single_filter(filters: &[f64]) -> std::result::Result<f64, HttpError> {
    match filters {
        [f] => Ok(*f),
        _ => Err(HttpError::new(
            422,
            format!("expected exactly one filter, got {}", filters.len()),
        )),
    }
}

fn handle_sweep(state: &ServerState, body: &[u8]) -> std::result::Result<(u16, String), HttpError> {
    let req: SweepRequest = parse_request(body)?;
    let (trace, cache) = resolve_trace(state, &req.trace)?;
    let mappings: Vec<MappingAlgorithm> = req
        .mappings
        .iter()
        .map(|s| parse_mapping_name(s))
        .collect::<std::result::Result<_, _>>()?;
    let spec = SweepGridSpec {
        mappings,
        ranks: req.ranks,
        filters: req.filters,
        strides: req.strides,
        compute_ghosts: req.ghosts,
    };
    spec.validate().map_err(semantic)?;
    let mesh = parse_mesh_spec(req.mesh.as_deref(), req.order, trace.meta().domain)?;
    let points = spec.points();
    let workloads = if req.reduced {
        sweep_reduced_gated(
            state,
            &req.trace,
            req.reduced_k,
            req.reduced_budget,
            &trace,
            mesh.as_ref(),
            &points,
        )?
    } else {
        let (workloads, _stats) =
            pic_workload::sweep_with_cache(&trace, &points, mesh.as_ref(), &cache)
                .map_err(semantic)?;
        // Response gate: the full invariant catalog over every grid point.
        pic_analysis::assert_sweep_valid(&workloads, Some(trace.particle_count() as u64))
            .map_err(|e| HttpError::new(500, format!("response failed validity gate: {e}")))?;
        workloads
    };
    let entries = grid_entries(&points, workloads);
    let json = grid_to_json(&entries).map_err(|e| HttpError::new(500, format!("{e}")))?;
    Ok((200, json))
}

/// The reduced-replay sweep path: fetch (or build and cache) the trace's
/// reduction plan, replay representatives only, then gate **every** grid
/// point on the holdout error budget. The broadcast reconstruction
/// cannot satisfy the catalog's `comm-flow` invariant, so
/// [`pic_analysis::check_reduction`] — exact replay of held-out samples
/// compared on peak load — is the acceptance check here.
#[allow(clippy::too_many_arguments)]
fn sweep_reduced_gated(
    state: &ServerState,
    trace_addr: &str,
    reduced_k: Option<usize>,
    reduced_budget: Option<f64>,
    trace: &ParticleTrace,
    mesh: Option<&ElementMesh>,
    points: &[SweepPoint],
) -> std::result::Result<Vec<pic_workload::DynamicWorkload>, HttpError> {
    if points.iter().any(|p| p.stride != 1) {
        return Err(HttpError::new(
            422,
            "reduced replay serves stride 1 only (strided reconstruction is unguarded)",
        ));
    }
    let plans = state.registry.plan_cache(trace_addr).ok_or_else(|| {
        HttpError::new(
            404,
            format!("trace {trace_addr} is not resident; POST /traces it first"),
        )
    })?;
    let opts = crate::simpoint::SimpointOptions {
        k: reduced_k,
        ..crate::simpoint::SimpointOptions::default()
    };
    let key = registry::PlanKey {
        k: reduced_k.unwrap_or(0),
        k_max: opts.k_max,
        seed: opts.seed,
        bins_per_axis: opts.features.bins_per_axis,
    };
    // Built outside the plan-cache lock; a racing builder loses to the
    // first insert and adopts the resident plan (identical by
    // determinism, so only the work is duplicated).
    let plan = match plans.get(&key) {
        Some(p) => p,
        None => {
            let built = crate::simpoint::build_plan(trace, &opts).map_err(semantic)?;
            plans.insert(key, built)
        }
    };
    let workloads = pic_workload::sweep_reduced(trace, points, mesh, &plan).map_err(semantic)?;
    let mut budget = pic_analysis::ReductionBudget::default();
    if let Some(b) = reduced_budget {
        budget.max_peak_rel_error = b;
    }
    for (point, w) in points.iter().zip(&workloads) {
        pic_analysis::assert_reduction_valid(trace, &point.config, mesh, &plan, w, &budget)
            .map_err(|e| {
                HttpError::new(
                    422,
                    format!(
                        "reduced replay failed the error-budget gate at ranks={} mapping={}: {e}",
                        point.config.ranks, point.config.mapping
                    ),
                )
            })?;
    }
    Ok(workloads)
}

fn handle_predict(
    state: &ServerState,
    body: &[u8],
) -> std::result::Result<(u16, String), HttpError> {
    let req: PredictRequest = parse_request(body)?;
    let (trace, cache) = resolve_trace(state, &req.trace)?;
    let models = state.registry.get_models(&req.models).ok_or_else(|| {
        HttpError::new(
            404,
            format!(
                "models {} are not resident; POST /models them first",
                req.models
            ),
        )
    })?;
    let mapping = parse_mapping_name(&req.mapping)?;
    let filter = single_filter(&req.filters)?;
    let mesh = parse_mesh_spec(req.mesh.as_deref(), req.order, trace.meta().domain)?;
    let machine = match req.machine.as_str() {
        "quartz" | "quartz-like" => pic_des::MachineSpec::quartz_like(),
        "vulcan" | "vulcan-like" => pic_des::MachineSpec::vulcan_like(),
        "localhost" => pic_des::MachineSpec::localhost(8),
        other => {
            return Err(HttpError::new(
                422,
                format!("unknown machine '{other}' (the service accepts presets only)"),
            ))
        }
    };
    let sync = match req.sync.as_str() {
        "neighbor" => pic_des::SyncMode::NeighborSync,
        "barrier" => pic_des::SyncMode::BulkSynchronous,
        other => return Err(HttpError::new(422, format!("unknown sync mode '{other}'"))),
    };
    // One-point cached sweep: bit-identical to the offline generator and
    // shares the assignment artifacts with every other request.
    let point = SweepPoint::new(WorkloadConfig::new(req.ranks, mapping, filter));
    let (mut workloads, _) =
        pic_workload::sweep_with_cache(&trace, std::slice::from_ref(&point), mesh.as_ref(), &cache)
            .map_err(semantic)?;
    let workload = workloads.pop().expect("one point in, one workload out");
    pic_analysis::assert_workload_valid(&workload, Some(trace.particle_count() as u64))
        .map_err(|e| HttpError::new(500, format!("response failed validity gate: {e}")))?;
    let elements: Vec<u32> = match &mesh {
        Some(m) => {
            let d = pic_grid::RcbDecomposition::decompose(m, req.ranks).map_err(semantic)?;
            d.element_counts().iter().map(|&c| c as u32).collect()
        }
        None => vec![0; req.ranks],
    };
    let predicted = crate::predict_kernel_seconds(&workload, &models, &elements, req.order, filter);
    // Response gate: no NaN / negative / ragged kernel time ships.
    pic_analysis::assert_prediction_valid(&predicted)
        .map_err(|e| HttpError::new(500, format!("response failed validity gate: {e}")))?;
    let schedule = crate::build_schedule(
        &workload,
        &predicted,
        trace.meta().sample_interval,
        crate::pipeline::bytes_per_particle(),
    );
    let (timeline, des) =
        crate::predict_application_with_stats(&schedule, &machine, sync).map_err(semantic)?;
    let body = format!(
        "{{\"machine\":{},\"sync\":{},\"predicted_seconds\":{},\"mean_idle_fraction\":{},\
         \"events_processed\":{},\"des_queue\":{},\"des_barrier_fast_path\":{},\
         \"des_wall_seconds\":{},\"samples\":{},\"ranks\":{}}}",
        http::json_escape(&machine.name),
        http::json_escape(&req.sync),
        timeline.total_seconds,
        timeline.mean_idle_fraction(),
        timeline.events_processed,
        http::json_escape(des.queue),
        des.barrier_fast_path,
        des.wall_seconds,
        workload.samples(),
        workload.ranks,
    );
    Ok((200, body))
}

fn handle_check(state: &ServerState, body: &[u8]) -> std::result::Result<(u16, String), HttpError> {
    let req: CheckRequest = parse_request(body)?;
    let (trace, cache) = resolve_trace(state, &req.trace)?;
    let mapping = parse_mapping_name(&req.mapping)?;
    let filter = single_filter(&req.filters)?;
    let mesh = parse_mesh_spec(req.mesh.as_deref(), req.order, trace.meta().domain)?;
    let point = SweepPoint::new(WorkloadConfig::new(req.ranks, mapping, filter));
    let (mut workloads, _) =
        pic_workload::sweep_with_cache(&trace, std::slice::from_ref(&point), mesh.as_ref(), &cache)
            .map_err(semantic)?;
    let workload = workloads.pop().expect("one point in, one workload out");
    let violations = pic_analysis::check_workload(&workload, Some(trace.particle_count() as u64));
    let rendered: Vec<String> = violations
        .iter()
        .map(|v| http::json_escape(&v.to_string()))
        .collect();
    let body = format!(
        "{{\"ok\":{},\"ranks\":{},\"samples\":{},\"violations\":[{}]}}",
        violations.is_empty(),
        workload.ranks,
        workload.samples(),
        rendered.join(",")
    );
    Ok((200, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three-phase synthetic trace (clouds parked in distinct corners,
    /// jittered) — the clustering-friendly shape the simpoint unit tests
    /// use, small enough for a handler-level test.
    fn phased_trace(np: usize, per_phase: usize) -> ParticleTrace {
        use pic_types::rng::SplitMix64;
        use pic_types::Vec3;
        let centers = [
            Vec3::new(0.3, 0.3, 0.3),
            Vec3::new(0.7, 0.3, 0.3),
            Vec3::new(0.3, 0.7, 0.7),
        ];
        let meta = pic_trace::TraceMeta::new(np, 10, pic_types::Aabb::unit(), "serve-reduced");
        let mut tr = ParticleTrace::new(meta);
        let mut rng = SplitMix64::new(3);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        for c in centers {
            for _ in 0..per_phase {
                let positions: Vec<Vec3> = dirs
                    .iter()
                    .map(|d| {
                        let jitter = Vec3::new(
                            rng.next_range(-0.01, 0.01),
                            rng.next_range(-0.01, 0.01),
                            rng.next_range(-0.01, 0.01),
                        );
                        (c + *d * 0.05 + jitter).clamp(Vec3::ZERO, Vec3::ONE)
                    })
                    .collect();
                tr.push_positions(positions).unwrap();
            }
        }
        tr
    }

    /// `"reduced": true` sweeps replay representatives, pass the holdout
    /// gate, and cache the plan in the trace's registry entry — a repeat
    /// request reuses the resident plan instead of re-clustering.
    #[test]
    fn reduced_sweep_serves_and_caches_plan() {
        let state = ServerState::new(ServeConfig::default());
        state.registry.insert_trace("tt", phased_trace(80, 6), 1);
        let body =
            br#"{"trace":"tt","ranks":[8],"reduced":true,"reduced_k":3,"reduced_budget":1.0}"#;
        let (status, resp) = handle_sweep(&state, body).unwrap();
        assert_eq!(status, 200, "{resp}");
        let plans = state.registry.plan_cache("tt").unwrap();
        assert_eq!(plans.len(), 1);
        // repeat: same knobs land on the cached plan, not a second entry
        let (status, _) = handle_sweep(&state, body).unwrap();
        assert_eq!(status, 200);
        assert_eq!(plans.len(), 1);
        // the cached plan weighs into the entry's LRU bytes
        assert!(plans.resident_bytes() > 0);
        pic_types::sync::assert_witness_clean();
    }

    /// Strided reduced requests are refused up front: the one-step
    /// migration proxy is unguarded beyond stride 1, so the serve layer
    /// does not offer it.
    #[test]
    fn reduced_sweep_rejects_strides() {
        let state = ServerState::new(ServeConfig::default());
        state.registry.insert_trace("tt", phased_trace(40, 4), 1);
        let body =
            br#"{"trace":"tt","ranks":[8],"strides":[1,2],"reduced":true,"reduced_budget":1.0}"#;
        let err = handle_sweep(&state, body).unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("stride 1"), "{}", err.message);
        pic_types::sync::assert_witness_clean();
    }

    /// An impossible budget turns into a 422 naming the failing grid
    /// point — the reduced path never ships an unguarded reconstruction.
    #[test]
    fn reduced_sweep_budget_breach_is_422() {
        let state = ServerState::new(ServeConfig::default());
        state.registry.insert_trace("tt", phased_trace(80, 6), 1);
        // K=1 on a three-phase trace cannot reconstruct peaks exactly;
        // a zero budget requires exactly that.
        let body =
            br#"{"trace":"tt","ranks":[8],"reduced":true,"reduced_k":1,"reduced_budget":0.0}"#;
        let err = handle_sweep(&state, body).unwrap_err();
        assert_eq!(err.status, 422, "{}", err.message);
        assert!(err.message.contains("error-budget"), "{}", err.message);
        pic_types::sync::assert_witness_clean();
    }

    /// A panicking leader must not strand its followers: the drop guard
    /// publishes a 500, wakes every parked follower, and clears the
    /// inflight table. Mirrors the `sf-no-abandonment-guard` mutant in
    /// the pic-analysis model, on the real primitives.
    #[test]
    fn abandoned_leader_unparks_followers_with_500() {
        let state = Arc::new(ServerState::new(ServeConfig::default()));
        let key = 42u128;

        let leader_state = Arc::clone(&state);
        let leader = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                single_flight(&leader_state, key, || {
                    // Hold the flight open until a follower has joined,
                    // so the follower deterministically parks on an
                    // unpublished slot.
                    while leader_state.batched.load(Ordering::Relaxed) == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    panic!("leader dies mid-compute");
                })
            }));
            assert!(result.is_err(), "leader must observe its own panic");
        });

        // Wait for the flight to be registered before joining as follower.
        while state.inflight.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let follower_state = Arc::clone(&state);
        let follower = std::thread::spawn(move || {
            single_flight(&follower_state, key, || {
                panic!("follower must never be elected while the flight is registered")
            })
        });

        let (status, body) = follower.join().unwrap().unwrap();
        assert_eq!(status, 500);
        assert!(body.contains("abandoned"), "{body}");
        leader.join().unwrap();

        // The abandonment counted as an error and the table is clean.
        assert_eq!(state.counters().1, 1);
        assert!(state.inflight.lock().is_empty());
        pic_types::sync::assert_witness_clean();
    }

    /// After an abandonment the key is no longer in flight: the next
    /// request for the same bytes elects a fresh leader and computes.
    #[test]
    fn fresh_leader_after_abandonment() {
        let state = Arc::new(ServerState::new(ServeConfig::default()));
        let key = 7u128;
        let panicking = Arc::clone(&state);
        std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                single_flight(&panicking, key, || panic!("first leader dies"))
            }));
        })
        .join()
        .unwrap();
        assert!(state.inflight.lock().is_empty());

        let (status, body) =
            single_flight(&state, key, || Ok((200, "\"recomputed\"".to_string()))).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "\"recomputed\"");
        pic_types::sync::assert_witness_clean();
    }

    /// The ordinary path: one leader computes, a follower shares the
    /// response verbatim and is counted as batched.
    #[test]
    fn follower_shares_leader_response() {
        let state = Arc::new(ServerState::new(ServeConfig::default()));
        let key = 9u128;
        let leader_state = Arc::clone(&state);
        let leader = std::thread::spawn(move || {
            single_flight(&leader_state, key, || {
                while leader_state.batched.load(Ordering::Relaxed) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok((200, "\"shared\"".to_string()))
            })
        });
        while state.inflight.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let follower_state = Arc::clone(&state);
        let follower = std::thread::spawn(move || {
            single_flight(&follower_state, key, || unreachable!("must batch"))
        });
        assert_eq!(
            follower.join().unwrap().unwrap(),
            (200, "\"shared\"".to_string())
        );
        assert_eq!(
            leader.join().unwrap().unwrap(),
            (200, "\"shared\"".to_string())
        );
        assert_eq!(state.counters().2, 1);
        pic_types::sync::assert_witness_clean();
    }
}
