//! Minimal, hardened HTTP/1.1 framing for the resident prediction
//! service.
//!
//! The workspace is offline and vendored, so this is a hand-rolled
//! single-request-per-connection server protocol ("Connection: close"),
//! built directly on `std::net::TcpStream` with three defenses that the
//! fault-corpus tests exercise end to end:
//!
//! * **Read deadlines** — the socket carries `set_read_timeout` /
//!   `set_write_timeout` before a single byte is parsed, so a slow-loris
//!   client that dribbles header bytes is cut off with `408 Request
//!   Timeout` instead of pinning a thread.
//! * **Bounded headers** — the request head (request line + headers) may
//!   not exceed [`MAX_HEAD_BYTES`]; one byte past that is `431`.
//! * **Bounded bodies** — `POST` requires `Content-Length` (`411`
//!   otherwise), the declared length is capped by the server's body
//!   limit (`413` over it), and the handler reads the body through
//!   [`pic_trace::BoundedReader`] so a lying client cannot stream past
//!   its declaration.
//!
//! Every rejection is a *positioned* JSON error — the parser reports the
//! byte offset in the request head where framing broke down — and never a
//! panic: all inputs arrive from the network and are assumed adversarial.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request head (request line + all headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request head plus the buffered stream positioned at the body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request path (`/sweep`, ...), no query parsing — the API is JSON.
    pub path: String,
    /// Declared `Content-Length`, when present.
    pub content_length: Option<u64>,
}

/// A framing-level rejection: HTTP status plus a positioned message.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable, byte-positioned diagnostic.
    pub message: String,
}

impl HttpError {
    /// Build an error.
    pub fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reason phrases for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn timeoutish(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read and parse one request head from `stream`. Returns the parsed
/// head; body bytes (if any) remain in `stream`'s buffer, ready to be
/// read next. Every failure is an [`HttpError`]; the socket deadline
/// surfaces as `408`.
pub fn read_head(stream: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    loop {
        let buf = stream.fill_buf().map_err(|e| {
            if timeoutish(&e) {
                HttpError::new(408, "read deadline expired while reading request head")
            } else {
                HttpError::new(400, format!("connection error while reading head: {e}"))
            }
        })?;
        if buf.is_empty() {
            return Err(HttpError::new(
                400,
                format!(
                    "connection closed inside request head at byte {}",
                    head.len()
                ),
            ));
        }
        // Scan for the CRLFCRLF terminator across the chunk boundary.
        let start = head.len().saturating_sub(3);
        head.extend_from_slice(buf);
        let consumed_now = buf.len();
        if let Some(pos) = find_terminator(&head[start..]).map(|p| p + start) {
            // Only the bytes through the terminator belong to the head;
            // everything after stays buffered for the body.
            let over = head.len() - (pos + 4);
            stream.consume(consumed_now - over);
            head.truncate(pos + 4);
            break;
        }
        stream.consume(consumed_now);
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(
                431,
                format!(
                    "request head exceeds {MAX_HEAD_BYTES} bytes (no terminator within bound, \
                     at byte {})",
                    head.len()
                ),
            ));
        }
    }
    parse_head(&head)
}

fn find_terminator(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head).map_err(|e| {
        HttpError::new(
            400,
            format!("request head is not UTF-8 at byte {}", e.valid_up_to()),
        )
    })?;
    let mut offset = 0usize;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            400,
            format!(
                "malformed request line {request_line:?} at byte 0 \
                 (expected 'METHOD /path HTTP/1.x')"
            ),
        ));
    }
    if !path.starts_with('/') {
        return Err(HttpError::new(
            400,
            format!(
                "request target {path:?} at byte {} must be origin-form (start with '/')",
                method.len() + 1
            ),
        ));
    }
    offset += request_line.len() + 2;
    let mut content_length: Option<u64> = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some(colon) = line.find(':') else {
            return Err(HttpError::new(
                400,
                format!("header line without ':' at byte {offset}: {line:?}"),
            ));
        };
        let name = line[..colon].trim();
        let value = line[colon + 1..].trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: u64 = value.parse().map_err(|_| {
                HttpError::new(
                    400,
                    format!("unparseable Content-Length {value:?} at byte {offset}"),
                )
            })?;
            if let Some(prev) = content_length {
                if prev != n {
                    return Err(HttpError::new(
                        400,
                        format!("conflicting Content-Length headers at byte {offset}"),
                    ));
                }
            }
            content_length = Some(n);
        }
        offset += line.len() + 2;
    }
    Ok(Request {
        method,
        path,
        content_length,
    })
}

/// Read an exact-length request body (already validated against the
/// server's cap) from the buffered stream, through a
/// [`pic_trace::BoundedReader`] so not one byte past the declaration is
/// consumed. Timeouts surface as `408`, short bodies as `400`.
pub fn read_body(
    stream: &mut BufReader<TcpStream>,
    declared_len: u64,
) -> Result<Vec<u8>, HttpError> {
    let mut bounded = pic_trace::BoundedReader::new(stream, declared_len);
    let mut body = Vec::with_capacity(declared_len.min(1 << 20) as usize);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match bounded.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if timeoutish(&e) => {
                return Err(HttpError::new(
                    408,
                    format!(
                        "read deadline expired inside request body at byte {} of {declared_len}",
                        body.len()
                    ),
                ))
            }
            Err(e) => {
                return Err(HttpError::new(
                    400,
                    format!(
                        "connection error at body byte {} of {declared_len}: {e}",
                        body.len()
                    ),
                ))
            }
        }
    }
    if (body.len() as u64) < declared_len {
        return Err(HttpError::new(
            400,
            format!(
                "request body ended at byte {} of declared {declared_len}",
                body.len()
            ),
        ));
    }
    Ok(body)
}

/// Write one `Connection: close` response. Write errors are swallowed —
/// the client may have hung up, and the connection is closing either way.
pub fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Serialize an error as the service's JSON error envelope and send it.
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    let body = format!(
        "{{\"error\":{{\"status\":{},\"message\":{}}}}}",
        err.status,
        json_escape(&err.message)
    );
    write_response(stream, err.status, "application/json", body.as_bytes());
}

/// Minimal JSON string escaping for error messages.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_head_happy_path() {
        let head = b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 42\r\n\r\n";
        let r = parse_head(head).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/sweep");
        assert_eq!(r.content_length, Some(42));
    }

    #[test]
    fn parse_head_rejections_are_positioned() {
        let garbage = parse_head(b"\x01\x02 garbage\r\n\r\n");
        assert!(garbage.is_err());
        let e = parse_head(b"GET /x HTTP/1.1\r\nBroken header line\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("byte 17"), "{}", e.message);
        let e = parse_head(b"GET /x HTTP/1.1\r\nContent-Length: lots\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("Content-Length"), "{}", e.message);
        let e = parse_head(b"GET x HTTP/1.1\r\n\r\n").unwrap_err();
        assert!(e.message.contains("origin-form"), "{}", e.message);
        let e = parse_head(b"SOMETHING\r\n\r\n").unwrap_err();
        assert!(e.message.contains("request line"), "{}", e.message);
        // conflicting lengths
        let e = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n")
            .unwrap_err();
        assert!(e.message.contains("conflicting"), "{}", e.message);
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn terminator_finder() {
        assert_eq!(find_terminator(b"ab\r\n\r\ncd"), Some(2));
        assert_eq!(find_terminator(b"ab\r\n\r"), None);
    }
}
