//! SimPoint-style reduction-plan construction: trace → per-sample feature
//! vectors → seeded k-means → [`ReductionPlan`].
//!
//! This is the orchestration layer tying `pic_trace::features` (what a
//! sample *looks like*), `pic_models::kmeans` (which samples look alike)
//! and `pic_workload::reduce` (replay one per phase) together for the CLI
//! and the resident service. The clustering is deterministic for a fixed
//! seed regardless of thread count, so a committed plan is reproducible.

use pic_models::kmeans::{self, KMeansConfig};
use pic_trace::features::{feature_vectors, FeatureConfig};
use pic_trace::ParticleTrace;
use pic_types::{PicError, Result};
use pic_workload::ReductionPlan;

/// Knobs for [`build_plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpointOptions {
    /// Fixed cluster count. `None` selects `K` automatically with the
    /// BIC-knee criterion over `1..=k_max`.
    pub k: Option<usize>,
    /// Upper bound of the automatic `K` search.
    pub k_max: usize,
    /// Clustering seed (drives k-means++ and the per-`k` seed streams).
    pub seed: u64,
    /// Feature extraction configuration (density histogram resolution).
    pub features: FeatureConfig,
    /// Cluster on the density histogram alone, dropping the three dynamic
    /// scalars (migration rate, occupancy spread, boundary-volume delta).
    ///
    /// The error-budget gate scores peak load, which is a pure function
    /// of particle positions — and the migration scalar spikes to ~1 at
    /// every phase transition, so with it included the transition samples
    /// of *unlike* phases cluster together by their shared spike and each
    /// inherits a representative whose load profile is wildly wrong. On
    /// by default; switch off to recover full-vector clustering when the
    /// dynamic signature is the thing being studied.
    pub spatial_only: bool,
    /// k-means iteration cap.
    pub max_iters: usize,
}

impl Default for SimpointOptions {
    fn default() -> SimpointOptions {
        SimpointOptions {
            k: None,
            k_max: 16,
            seed: 0x51a9_0b17,
            features: FeatureConfig::default(),
            spatial_only: true,
            max_iters: 64,
        }
    }
}

/// Cluster a trace's samples into phases and emit the reduction plan:
/// one representative per nonempty cluster (the member closest to its
/// centroid), every sample assigned to its representative's slot.
///
/// Fails on an empty trace (there is nothing to represent) and surfaces
/// plan-consistency violations as config errors — though by construction
/// the emitted plan always validates.
pub fn build_plan(trace: &ParticleTrace, opts: &SimpointOptions) -> Result<ReductionPlan> {
    let t = trace.sample_count();
    if t == 0 {
        return Err(PicError::config(
            "cannot build a reduction plan for an empty trace",
        ));
    }
    if let Some(k) = opts.k {
        if k == 0 {
            return Err(PicError::config("reduction needs at least one cluster"));
        }
    }
    let mut points = feature_vectors(trace, &opts.features);
    if opts.spatial_only {
        let cells = opts.features.bins_per_axis.pow(3);
        for v in &mut points {
            v.truncate(cells);
        }
    }
    let fitted = match opts.k {
        Some(k) => kmeans::fit(
            &points,
            &KMeansConfig {
                k: k.min(t),
                seed: opts.seed,
                max_iters: opts.max_iters,
                ..KMeansConfig::default()
            },
        ),
        None => kmeans::select_k(&points, opts.k_max.max(1), opts.seed, opts.max_iters),
    };
    // Dense slot numbering: empty clusters have no representative, so
    // cluster ids are compacted into consecutive plan slots.
    let reps = fitted.representatives(&points);
    let mut slot_of = vec![usize::MAX; fitted.k()];
    let mut representatives = Vec::with_capacity(reps.len());
    for (slot, &(cluster, sample)) in reps.iter().enumerate() {
        slot_of[cluster] = slot;
        representatives.push(sample);
    }
    let assignment: Vec<usize> = fitted.assignment.iter().map(|&c| slot_of[c]).collect();
    ReductionPlan::new(t, representatives, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_trace::TraceMeta;
    use pic_types::rng::SplitMix64;
    use pic_types::{Aabb, Vec3};

    /// Low-resolution features for the small test traces: the BIC penalty
    /// charges `dim` parameters per centroid, so the default 67-dim
    /// histogram needs far more samples than a unit test wants.
    fn test_opts() -> SimpointOptions {
        SimpointOptions {
            features: FeatureConfig { bins_per_axis: 2 },
            ..Default::default()
        }
    }

    /// Phases are clouds parked in different corners of the domain, with
    /// per-sample jitter so within-phase inertia is small but nonzero
    /// (a perfect zero would cliff the BIC likelihood term).
    fn phased_trace(np: usize, samples_per_phase: usize, phases: usize) -> ParticleTrace {
        let centers = [
            Vec3::new(0.3, 0.3, 0.3),
            Vec3::new(0.7, 0.3, 0.3),
            Vec3::new(0.3, 0.7, 0.3),
            Vec3::new(0.7, 0.7, 0.7),
        ];
        let meta = TraceMeta::new(np, 100, Aabb::unit(), "simpoint");
        let mut tr = ParticleTrace::new(meta);
        let mut rng = SplitMix64::new(11);
        let dirs: Vec<Vec3> = (0..np)
            .map(|_| {
                Vec3::new(
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                    rng.next_range(-1.0, 1.0),
                )
            })
            .collect();
        for phase in 0..phases {
            let c = centers[phase % centers.len()];
            for _ in 0..samples_per_phase {
                let positions: Vec<Vec3> = dirs
                    .iter()
                    .map(|d| {
                        let jitter = Vec3::new(
                            rng.next_range(-0.01, 0.01),
                            rng.next_range(-0.01, 0.01),
                            rng.next_range(-0.01, 0.01),
                        );
                        (c + *d * 0.05 + jitter).clamp(Vec3::ZERO, Vec3::ONE)
                    })
                    .collect();
                tr.push_positions(positions).unwrap();
            }
        }
        tr
    }

    #[test]
    fn plan_is_valid_and_groups_phases() {
        let per = 20;
        let tr = phased_trace(120, per, 3);
        let plan = build_plan(
            &tr,
            &SimpointOptions {
                k: Some(3),
                ..test_opts()
            },
        )
        .unwrap();
        assert_eq!(plan.total_samples, 3 * per);
        assert_eq!(plan.k(), 3);
        plan.validate().unwrap();
        // Steady samples of one phase share a slot, and the phases get
        // distinct slots. The first sample of a phase is skipped: under
        // full-vector clustering its migration spike makes it an outlier
        // the clustering may park anywhere (spatial-only, the default,
        // groups it with its own phase — but the test holds either way).
        let mut slots = Vec::new();
        for phase in 0..3 {
            let span = &plan.assignment[phase * per + 1..(phase + 1) * per];
            assert!(
                span.iter().all(|&s| s == span[0]),
                "phase {phase}: {span:?}"
            );
            slots.push(span[0]);
        }
        slots.dedup();
        assert_eq!(slots.len(), 3, "phases share slots: {slots:?}");
    }

    #[test]
    fn automatic_k_finds_the_phase_count() {
        let tr = phased_trace(120, 20, 3);
        let plan = build_plan(&tr, &test_opts()).unwrap();
        assert_eq!(plan.k(), 3, "plan: {plan:?}");
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let tr = phased_trace(100, 4, 2);
        let opts = test_opts();
        assert_eq!(
            build_plan(&tr, &opts).unwrap(),
            build_plan(&tr, &opts).unwrap()
        );
    }

    #[test]
    fn degenerate_requests_fail_cleanly() {
        let empty = ParticleTrace::new(TraceMeta::new(3, 1, Aabb::unit(), "empty"));
        assert!(build_plan(&empty, &SimpointOptions::default()).is_err());
        let tr = phased_trace(20, 2, 1);
        assert!(build_plan(
            &tr,
            &SimpointOptions {
                k: Some(0),
                ..test_opts()
            }
        )
        .is_err());
        // k larger than T clamps; empty clusters (if any) are compacted,
        // so the plan stays valid with 1 <= K <= T.
        let plan = build_plan(
            &tr,
            &SimpointOptions {
                k: Some(99),
                ..test_opts()
            },
        )
        .unwrap();
        assert!(plan.k() >= 1 && plan.k() <= 2, "plan: {plan:?}");
        plan.validate().unwrap();
    }
}
