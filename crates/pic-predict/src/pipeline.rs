//! The end-to-end prediction pipeline.
//!
//! This module is the executable version of the paper's Fig 2 workflow,
//! including the validation path the authors used while BE-SST's
//! trace-based mode was unfinished ("we developed a python script which
//! takes the generated performance models and the output of workload
//! generator as inputs, and predicts the kernel performance across all
//! processors during the entire execution" — §IV-B). Here that script is
//! [`predict_kernel_seconds`]; the full system-level path continues through
//! [`build_schedule`] and [`predict_application`] on the `pic-des`
//! simulation platform.

use crate::kernel_models::{FitStrategy, KernelModels};
use crate::validate;
use pic_des::{simulate, MachineSpec, SimTimeline, StepWorkload, SyncMode};
use pic_sim::instrument::WorkloadParams;
use pic_sim::{KernelKind, MiniPic, SimConfig, SimOutput};
use pic_types::{Rank, Result};
use pic_workload::{generator, DynamicWorkload, WorkloadConfig};

/// Predict per-rank, per-kernel execution seconds for every sample of a
/// generated workload. Output is indexed `[sample][rank][k]` with `k` in
/// [`KernelKind::ALL`] order.
///
/// `elements_per_rank` is the static fluid workload (from the element
/// decomposition); `order` and `filter` are the problem parameters the
/// models were trained with.
pub fn predict_kernel_seconds(
    workload: &DynamicWorkload,
    models: &KernelModels,
    elements_per_rank: &[u32],
    order: usize,
    filter: f64,
) -> Vec<Vec<[f64; 6]>> {
    let ranks = workload.ranks;
    let mut out = Vec::with_capacity(workload.samples());
    for t in 0..workload.samples() {
        let mut per_rank = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let rank = Rank::from_index(r);
            let np = workload.real.get(rank, t) as f64;
            let recv = workload.ghost_recv.get(rank, t) as f64;
            let sent = workload.ghost_sent.get(rank, t) as f64;
            let nel = elements_per_rank.get(r).copied().unwrap_or(0) as f64;
            let mut row = [0.0f64; 6];
            for (slot, &kernel) in KernelKind::ALL.iter().enumerate() {
                let ngp = match kernel {
                    KernelKind::CreateGhostParticles => sent,
                    _ => recv,
                };
                let params = WorkloadParams {
                    np,
                    ngp,
                    nel,
                    n_order: order as f64,
                    filter,
                };
                row[slot] = models.predict(kernel, &params);
            }
            per_rank.push(row);
        }
        out.push(per_rank);
    }
    out
}

/// Build the DES schedule from predicted kernel times and the
/// communication matrix.
///
/// Each trace-sample interval becomes one super-step whose per-rank compute
/// time is the summed kernel prediction multiplied by
/// `iterations_per_sample` (the kernels run every application iteration,
/// the trace samples every K-th). Migration counts become point-to-point
/// messages of `count × bytes_per_particle` bytes.
pub fn build_schedule(
    workload: &DynamicWorkload,
    predicted: &[Vec<[f64; 6]>],
    iterations_per_sample: u32,
    bytes_per_particle: u64,
) -> Vec<StepWorkload> {
    let mut steps = Vec::with_capacity(predicted.len());
    for (t, per_rank) in predicted.iter().enumerate() {
        let compute_seconds: Vec<f64> = per_rank
            .iter()
            .map(|row| row.iter().sum::<f64>() * iterations_per_sample as f64)
            .collect();
        let messages: Vec<(u32, u32, u64)> = workload.comm.entries[t]
            .iter()
            .map(|&(from, to, count)| (from, to, count as u64 * bytes_per_particle))
            .collect();
        steps.push(StepWorkload {
            compute_seconds,
            messages,
        });
    }
    steps
}

/// Run the system-level simulation and return the predicted timeline.
pub fn predict_application(
    schedule: &[StepWorkload],
    machine: &MachineSpec,
    mode: SyncMode,
) -> Result<SimTimeline> {
    simulate(schedule, machine, mode)
}

/// DES execution statistics of one prediction, surfaced through
/// `picpredict predict` JSON and the serve `/predict` response.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DesRunStats {
    /// Event-queue implementation (`"calendar"`, `"binary-heap"`, or
    /// `"none"` when the barrier fast path ran).
    pub queue: &'static str,
    /// Whether the bulk-synchronous batched fast path evaluated the run.
    pub barrier_fast_path: bool,
    /// Simulator wall-clock seconds for this prediction.
    pub wall_seconds: f64,
    /// Events processed (equals the timeline's `events_processed`).
    pub events_processed: u64,
}

/// Run the system-level simulation, also returning DES throughput
/// statistics (queue implementation, wall seconds, events processed).
pub fn predict_application_with_stats(
    schedule: &[StepWorkload],
    machine: &MachineSpec,
    mode: SyncMode,
) -> Result<(SimTimeline, DesRunStats)> {
    let start = std::time::Instant::now();
    let (timeline, stats) =
        pic_des::simulate_with_stats(schedule, machine, mode, pic_des::EngineConfig::default())?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let run = DesRunStats {
        queue: stats.queue,
        barrier_fast_path: stats.barrier_fast_path,
        wall_seconds,
        events_processed: timeline.events_processed,
    };
    Ok((timeline, run))
}

/// Everything the end-to-end case study produces.
#[derive(Debug)]
pub struct CaseStudyOutput {
    /// The mini-app run (trace + ground truth + timing records).
    pub sim: SimOutput,
    /// The DWG-generated workload at the app's own rank count.
    pub workload: DynamicWorkload,
    /// Fitted per-kernel models.
    pub models: KernelModels,
    /// Per-kernel MAPE of model predictions against the mini-app's
    /// observed kernel times (the Fig 7 data).
    pub kernel_mape: Vec<(KernelKind, f64)>,
    /// Predicted kernel times `[sample][rank][k]`.
    pub predicted_kernel_seconds: Vec<Vec<[f64; 6]>>,
    /// Predicted application timeline on the target machine.
    pub timeline: SimTimeline,
}

impl CaseStudyOutput {
    /// Average kernel MAPE (the paper's 8.42 % headline).
    pub fn mean_kernel_mape(&self) -> f64 {
        let v: Vec<f64> = self.kernel_mape.iter().map(|&(_, m)| m).collect();
        pic_types::stats::mean(&v)
    }

    /// Peak kernel MAPE (the paper's 17.7 %).
    pub fn peak_kernel_mape(&self) -> f64 {
        self.kernel_mape.iter().map(|&(_, m)| m).fold(0.0, f64::max)
    }
}

/// Run the complete pipeline for one configuration:
///
/// 1. run the mini PIC application (trace, ground truth, timing records);
/// 2. generate the dynamic workload from the trace alone;
/// 3. verify the workload against ground truth (exact);
/// 4. fit kernel models from the timing records;
/// 5. predict per-rank kernel times from workload + models (Fig 7 path);
/// 6. build the DES schedule and predict application time on `machine`.
pub fn run_case_study(
    cfg: &SimConfig,
    machine: &MachineSpec,
    strategy: &FitStrategy,
) -> Result<CaseStudyOutput> {
    let app = MiniPic::new(cfg.clone())?;
    let mesh = app.mesh().clone();
    let elements_per_rank: Vec<u32> = app
        .decomposition()
        .element_counts()
        .iter()
        .map(|&c| c as u32)
        .collect();
    let sim = app.run()?;

    let wcfg = WorkloadConfig::new(cfg.ranks, cfg.mapping, cfg.projection_filter);
    let workload = generator::generate_with_mesh(&sim.trace, &wcfg, Some(&mesh))?;
    // static invariant catalog first (cheap, positioned diagnostics), then
    // the exact ground-truth comparison
    pic_analysis::assert_workload_valid(&workload, Some(sim.trace.particle_count() as u64))?;
    validate::workload_matches_ground_truth(&workload, &sim.ground_truth)?;

    let models = KernelModels::fit(&sim.recorder, strategy, cfg.seed)?;
    let predicted = predict_kernel_seconds(
        &workload,
        &models,
        &elements_per_rank,
        cfg.order,
        cfg.projection_filter,
    );
    let kernel_mape = validate::kernel_mape_vs_ground_truth(&predicted, &sim.ground_truth)?;

    let schedule = build_schedule(
        &workload,
        &predicted,
        cfg.sample_interval as u32,
        bytes_per_particle(),
    );
    let timeline = predict_application(&schedule, machine, SyncMode::BulkSynchronous)?;

    Ok(CaseStudyOutput {
        sim,
        workload,
        models,
        kernel_mape,
        predicted_kernel_seconds: predicted,
        timeline,
    })
}

/// Payload a migrating particle carries: position + velocity + scalar
/// properties, double precision (CMT-nek particles carry O(10) doubles).
pub fn bytes_per_particle() -> u64 {
    10 * 8
}

/// Re-export for the `validate` path used by [`run_case_study`].
pub use crate::validate::workload_matches_ground_truth as _validate_workload;

#[cfg(test)]
mod tests {
    use super::*;
    use pic_grid::MeshDims;
    use pic_workload::{CommMatrix, CompMatrix};

    fn small_cfg() -> SimConfig {
        SimConfig {
            ranks: 8,
            mesh_dims: MeshDims::cube(4),
            order: 3,
            particles: 300,
            steps: 30,
            sample_interval: 10,
            ..SimConfig::default()
        }
    }

    fn fake_workload() -> DynamicWorkload {
        DynamicWorkload {
            ranks: 2,
            iterations: vec![0, 10],
            real: CompMatrix::from_rows(2, vec![vec![10, 0], vec![5, 5]]),
            ghost_recv: CompMatrix::from_rows(2, vec![vec![0, 2], vec![1, 1]]),
            ghost_sent: CompMatrix::from_rows(2, vec![vec![2, 0], vec![1, 1]]),
            comm: {
                let mut c = CommMatrix::with_samples(2);
                c.entries[1] = vec![(0, 1, 5)];
                c
            },
            bin_counts: vec![Some(1), Some(2)],
        }
    }

    #[test]
    fn schedule_shape_and_scaling() {
        let w = fake_workload();
        // constant predicted times: 1 ms per kernel per rank
        let predicted = vec![vec![[0.001; 6]; 2]; 2];
        let steps = build_schedule(&w, &predicted, 10, 80);
        assert_eq!(steps.len(), 2);
        // 6 kernels × 1 ms × 10 iterations = 60 ms
        assert!((steps[0].compute_seconds[0] - 0.06).abs() < 1e-12);
        assert!(steps[0].messages.is_empty());
        assert_eq!(steps[1].messages, vec![(0, 1, 400)]);
    }

    #[test]
    fn end_to_end_case_study() {
        let cfg = small_cfg();
        let out = run_case_study(&cfg, &MachineSpec::quartz_like(), &FitStrategy::Linear).unwrap();
        // the DWG matched ground truth (run_case_study would have errored)
        assert_eq!(out.workload.samples(), 3);
        // Fig 7 regime: single-digit average MAPE with the default 10 % noise
        let avg = out.mean_kernel_mape();
        assert!(avg < 15.0, "avg MAPE {avg}");
        assert!(
            out.peak_kernel_mape() < 40.0,
            "peak {}",
            out.peak_kernel_mape()
        );
        // a positive predicted application time
        assert!(out.timeline.total_seconds > 0.0);
        assert_eq!(out.timeline.rank_finish.len(), 8);
    }

    #[test]
    fn case_study_is_deterministic() {
        let cfg = small_cfg();
        let a = run_case_study(&cfg, &MachineSpec::quartz_like(), &FitStrategy::Linear).unwrap();
        let b = run_case_study(&cfg, &MachineSpec::quartz_like(), &FitStrategy::Linear).unwrap();
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.kernel_mape, b.kernel_mape);
    }

    #[test]
    fn faster_machine_predicts_shorter_time() {
        let cfg = small_cfg();
        let quartz =
            run_case_study(&cfg, &MachineSpec::quartz_like(), &FitStrategy::Linear).unwrap();
        let vulcan =
            run_case_study(&cfg, &MachineSpec::vulcan_like(), &FitStrategy::Linear).unwrap();
        assert!(
            vulcan.timeline.total_seconds > quartz.timeline.total_seconds,
            "BG/Q-like cores are slower: {} vs {}",
            vulcan.timeline.total_seconds,
            quartz.timeline.total_seconds
        );
    }

    #[test]
    fn predicted_kernel_seconds_shape() {
        let w = fake_workload();
        // fit trivial models from a synthetic recorder
        let mut rec = pic_sim::Recorder::new();
        let oracle = pic_sim::CostOracle::noiseless();
        for np in [0.0, 10.0, 100.0, 500.0] {
            for k in KernelKind::ALL {
                let p = WorkloadParams {
                    np,
                    ngp: np / 10.0,
                    nel: 8.0,
                    n_order: 3.0,
                    filter: 0.04,
                };
                rec.record(k, p, oracle.true_cost(k, &p));
            }
        }
        let models = KernelModels::fit(&rec, &FitStrategy::Linear, 1).unwrap();
        let pred = predict_kernel_seconds(&w, &models, &[8, 8], 3, 0.04);
        assert_eq!(pred.len(), 2);
        assert_eq!(pred[0].len(), 2);
        // idle rank 1 at sample 0 still gets fluid-solver time (nel > 0)
        let fluid_slot = 0; // KernelKind::ALL[0] == FluidSolver
        assert!(pred[0][1][fluid_slot] > 0.0);
    }
}
