//! Property-based tests: PIC kernel invariants over arbitrary particle
//! states, and mini-app conservation laws over arbitrary configurations.

use pic_grid::gll::GllRule;
use pic_grid::{ElementMesh, MeshDims};
use pic_sim::field::{FluidField, UniformFlow, VortexField};
use pic_sim::kernels::{self, KernelContext};
use pic_sim::particles::CellList;
use pic_sim::{MiniPic, ScenarioKind, SimConfig};
use pic_types::{Aabb, Vec3};
use proptest::prelude::*;

fn mesh() -> ElementMesh {
    ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 3).unwrap()
}

fn ctx<'a>(
    mesh: &'a ElementMesh,
    gll: &'a GllRule,
    field: &'a dyn FluidField,
    dt: f64,
) -> KernelContext<'a> {
    KernelContext {
        mesh,
        gll,
        field,
        filter: 0.05,
        dt,
        gravity: Vec3::new(0.0, 0.0, -0.5),
        drag_tau: 0.05,
        collision_radius: 0.0,
        collision_stiffness: 0.0,
    }
}

fn unit_points(max: usize) -> impl Strategy<Value = Vec<Vec3>> {
    proptest::collection::vec(
        (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pusher_never_leaks_particles(
        positions in unit_points(40),
        velocities in proptest::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64)
                .prop_map(|(x, y, z)| Vec3::new(x, y, z)),
            40,
        ),
        dt in 0.001..0.1f64,
    ) {
        // Reflective walls: no velocity, however extreme, may take a
        // particle out of the domain.
        let m = mesh();
        let gll = GllRule::new(3);
        let f = UniformFlow { velocity: Vec3::ZERO };
        let c = ctx(&m, &gll, &f, dt);
        let n = positions.len();
        let mut pos = positions.clone();
        let mut vel = velocities[..n].to_vec();
        let subset: Vec<u32> = (0..n as u32).collect();
        let accel = vec![Vec3::ZERO; n];
        kernels::particle_pusher(&c, &mut pos, &mut vel, &subset, &accel);
        for p in &pos {
            prop_assert!(m.domain().contains_closed(*p), "{p}");
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn interpolation_is_exact_for_linear_fields(positions in unit_points(20)) {
        // GLL Lagrange interpolation (order >= 2) reproduces any field
        // linear in position to machine precision.
        let m = mesh();
        let gll = GllRule::new(3);
        let f = VortexField { center: Vec3::splat(0.5), angular_speed: 2.0 };
        let c = ctx(&m, &gll, &f, 0.01);
        let subset: Vec<u32> = (0..positions.len() as u32).collect();
        let mut out = Vec::new();
        kernels::interpolate(&c, &positions, &subset, 0.0, &mut out);
        for (p, u) in positions.iter().zip(&out) {
            let exact = f.velocity(*p, 0.0);
            prop_assert!(u.distance(exact) < 1e-8, "{u} vs {exact}");
        }
    }

    #[test]
    fn drag_only_acceleration_points_toward_fluid(positions in unit_points(20)) {
        let m = mesh();
        let gll = GllRule::new(3);
        let f = UniformFlow { velocity: Vec3::new(1.0, 0.0, 0.0) };
        let mut c = ctx(&m, &gll, &f, 0.01);
        c.gravity = Vec3::ZERO;
        let n = positions.len();
        let velocities = vec![Vec3::ZERO; n];
        let subset: Vec<u32> = (0..n as u32).collect();
        let fluid = vec![f.velocity; n];
        let cell = CellList::build(&positions, 0.05);
        let mut acc = Vec::new();
        kernels::equation_solver(&c, &positions, &velocities, &subset, &fluid, &cell, &mut acc);
        for a in &acc {
            // drag toward +x only
            prop_assert!(a.x > 0.0 && a.y.abs() < 1e-12 && a.z.abs() < 1e-12);
        }
    }

    #[test]
    fn projection_weight_monotone_in_subset(positions in unit_points(30)) {
        let m = mesh();
        let gll = GllRule::new(3);
        let f = UniformFlow { velocity: Vec3::ZERO };
        let c = ctx(&m, &gll, &f, 0.01);
        let n = positions.len();
        let all: Vec<u32> = (0..n as u32).collect();
        let half: Vec<u32> = (0..(n / 2) as u32).collect();
        let w_all = kernels::projection(&c, &positions, &all);
        let w_half = kernels::projection(&c, &positions, &half);
        prop_assert!(w_all >= w_half - 1e-12);
        prop_assert!(w_all >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mini_app_conserves_particles_for_any_small_config(
        particles in 50usize..200,
        ranks in 1usize..12,
        seed in any::<u64>(),
        scenario_pick in 0u8..3,
    ) {
        let scenario = match scenario_pick {
            0 => ScenarioKind::HeleShaw,
            1 => ScenarioKind::UniformCloud,
            _ => ScenarioKind::VortexCluster,
        };
        let cfg = SimConfig {
            ranks,
            mesh_dims: MeshDims::cube(3),
            order: 3,
            particles,
            steps: 12,
            sample_interval: 4,
            scenario,
            seed,
            ..SimConfig::default()
        };
        let out = MiniPic::new(cfg.clone()).unwrap().run().unwrap();
        prop_assert_eq!(out.trace.sample_count(), 3);
        for s in &out.ground_truth.samples {
            prop_assert_eq!(s.real_counts.iter().sum::<u32>() as usize, particles);
            let sent: u32 = s.ghost_sent_counts.iter().sum();
            let recv: u32 = s.ghost_recv_counts.iter().sum();
            prop_assert_eq!(sent, recv);
        }
        // positions stay in the domain at every sample
        for t in 0..out.trace.sample_count() {
            for p in out.trace.positions_at(t) {
                prop_assert!(cfg.domain.contains_closed(*p));
            }
        }
    }
}
