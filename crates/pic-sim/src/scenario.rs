//! Problem scenarios: initial particle distributions and their driving
//! fluid fields.
//!
//! The paper's case study is the **Hele-Shaw** simulation (§IV-A, ref \[21\]):
//! a dense particle bed packed at the bottom of a cylinder, dispersed by a
//! shock wave when a pressurized-gas diaphragm bursts beneath it. Its two
//! load-relevant properties — extreme initial concentration and a particle
//! boundary that expands over time — are what the element- vs bin-mapping
//! comparison and the bin-count analysis hinge on. Two further scenarios
//! (uniform cloud, vortex-driven cluster) exercise the framework on
//! qualitatively different workloads.

use crate::field::{BlastField, FluidField, UniformFlow, VortexField};
use crate::particles::ParticleSet;
use pic_types::rng::SplitMix64;
use pic_types::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// Available problem scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ScenarioKind {
    /// Dense particle bed at the bottom of a cylinder, blast-dispersed
    /// (the paper's case study).
    HeleShaw,
    /// Particles uniform over the whole domain, drifting slowly.
    UniformCloud,
    /// A Gaussian particle cluster stirred by a vortex.
    VortexCluster,
}

impl ScenarioKind {
    /// Scenario name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::HeleShaw => "hele-shaw",
            ScenarioKind::UniformCloud => "uniform-cloud",
            ScenarioKind::VortexCluster => "vortex-cluster",
        }
    }

    /// Build the initial particle population inside `domain`.
    pub fn init_particles(self, domain: Aabb, count: usize, seed: u64) -> ParticleSet {
        let mut rng = SplitMix64::new(seed);
        let mut set = ParticleSet::with_capacity(count);
        let ext = domain.extent();
        match self {
            ScenarioKind::HeleShaw => {
                // Cylindrical bed: radius 30 % of the narrow axis, height the
                // bottom 12 % of the domain, centred on the bottom face.
                let center = Vec3::new(
                    0.5 * (domain.min.x + domain.max.x),
                    0.5 * (domain.min.y + domain.max.y),
                    domain.min.z,
                );
                let radius = 0.3 * ext.x.min(ext.y) * 0.5 * 2.0; // 30% of min(x,y) extent
                let height = 0.12 * ext.z;
                for _ in 0..count {
                    // Uniform over the disc: r = R√u.
                    let r = radius * rng.next_f64().sqrt();
                    let theta = rng.next_range(0.0, std::f64::consts::TAU);
                    let z = center.z + rng.next_range(0.0, height);
                    set.push_at_rest(Vec3::new(
                        center.x + r * theta.cos(),
                        center.y + r * theta.sin(),
                        z,
                    ));
                }
            }
            ScenarioKind::UniformCloud => {
                for _ in 0..count {
                    set.push_at_rest(Vec3::new(
                        rng.next_range(domain.min.x, domain.max.x),
                        rng.next_range(domain.min.y, domain.max.y),
                        rng.next_range(domain.min.z, domain.max.z),
                    ));
                }
            }
            ScenarioKind::VortexCluster => {
                let center = domain.center() + Vec3::new(0.2 * ext.x, 0.0, 0.0);
                let sigma = 0.08 * ext.x.max(ext.y).max(ext.z);

                for _ in 0..count {
                    let mut p = center
                        + Vec3::new(
                            sigma * rng.next_gaussian(),
                            sigma * rng.next_gaussian(),
                            sigma * rng.next_gaussian(),
                        );
                    p = p.clamp(domain.min, domain.max);
                    set.push_at_rest(p);
                }
            }
        }
        set
    }

    /// The fluid field that drives this scenario inside `domain`.
    pub fn field(self, domain: Aabb) -> Box<dyn FluidField> {
        match self {
            ScenarioKind::HeleShaw => {
                let mut f = BlastField::hele_shaw_default();
                f.origin = Vec3::new(
                    0.5 * (domain.min.x + domain.max.x),
                    0.5 * (domain.min.y + domain.max.y),
                    domain.min.z,
                );
                Box::new(f)
            }
            ScenarioKind::UniformCloud => Box::new(UniformFlow {
                velocity: Vec3::new(0.15, 0.1, 0.05),
            }),
            ScenarioKind::VortexCluster => Box::new(VortexField {
                center: domain.center(),
                angular_speed: 1.5,
            }),
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hele_shaw_bed_is_concentrated_at_bottom() {
        let domain = Aabb::unit();
        let set = ScenarioKind::HeleShaw.init_particles(domain, 2000, 1);
        assert_eq!(set.len(), 2000);
        let b = set.boundary();
        // bed occupies the bottom slab only
        assert!(b.max.z <= 0.121, "bed too tall: {}", b.max.z);
        // and is concentrated near the centre in x/y
        assert!(b.min.x > 0.15 && b.max.x < 0.85, "{b}");
        // bed volume is a small fraction of the domain
        assert!(b.volume() < 0.05 * domain.volume());
    }

    #[test]
    fn uniform_cloud_fills_domain() {
        let set = ScenarioKind::UniformCloud.init_particles(Aabb::unit(), 5000, 2);
        let b = set.boundary();
        assert!(b.volume() > 0.9, "{b}");
        for &p in &set.position {
            assert!(Aabb::unit().contains_closed(p));
        }
    }

    #[test]
    fn vortex_cluster_is_compact_and_inside() {
        let domain = Aabb::unit();
        let set = ScenarioKind::VortexCluster.init_particles(domain, 3000, 3);
        let b = set.boundary();
        assert!(b.volume() < 0.6 * domain.volume());
        for &p in &set.position {
            assert!(domain.contains_closed(p));
        }
    }

    #[test]
    fn initialization_is_deterministic() {
        let a = ScenarioKind::HeleShaw.init_particles(Aabb::unit(), 100, 42);
        let b = ScenarioKind::HeleShaw.init_particles(Aabb::unit(), 100, 42);
        assert_eq!(a.position, b.position);
        let c = ScenarioKind::HeleShaw.init_particles(Aabb::unit(), 100, 43);
        assert_ne!(a.position, c.position);
    }

    #[test]
    fn fields_match_scenarios() {
        let domain = Aabb::unit();
        // Hele-Shaw blast pushes up from the bottom centre after burst.
        let f = ScenarioKind::HeleShaw.field(domain);
        let v = f.velocity(Vec3::new(0.5, 0.5, 0.1), 0.2);
        assert!(v.z > 0.0);
        // Vortex swirls.
        let f = ScenarioKind::VortexCluster.field(domain);
        let v = f.velocity(Vec3::new(0.9, 0.5, 0.5), 0.0);
        assert!(v.y.abs() > 0.0);
    }

    #[test]
    fn serde_kebab_names() {
        assert_eq!(
            serde_json::to_string(&ScenarioKind::HeleShaw).unwrap(),
            "\"hele-shaw\""
        );
        assert_eq!(ScenarioKind::VortexCluster.to_string(), "vortex-cluster");
    }
}
