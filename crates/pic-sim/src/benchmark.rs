//! Standalone kernel benchmarking across parameter combinations —
//! the paper's model-training procedure (§II-B: "we instrument the source
//! code and benchmark key computation kernels of PIC application for
//! various input parameter combinations").
//!
//! Training models from a single application run is a trap: a well-balanced
//! mapping gives every rank nearly the same `N_p`, so the fitted model
//! never sees the parameter vary and cannot extrapolate to other rank
//! counts. The sweep here executes each kernel on synthetic workloads over
//! a grid of `(N_p, N_gp, N_el)` values — in wall-clock mode by actually
//! running the kernels, in oracle mode by querying the cost oracle — and
//! emits the same [`Recorder`] the instrumented app produces.

use crate::config::TimingMode;
use crate::field::UniformFlow;
use crate::instrument::{KernelKind, Recorder, WorkloadParams};
use crate::kernels::{self, KernelContext};
use crate::particles::CellList;
use pic_grid::gll::GllRule;
use pic_grid::{ElementMesh, MeshDims, RcbDecomposition};
use pic_mapping::{ElementMapper, ParticleMapper, RegionIndex};
use pic_types::rng::SplitMix64;
use pic_types::{Aabb, PicError, Result, Vec3};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameter grid for the kernel benchmarking sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Real-particle counts to benchmark.
    pub np_values: Vec<usize>,
    /// Ghost-particle counts to benchmark.
    pub ngp_values: Vec<usize>,
    /// Element counts to benchmark (≤ the sweep mesh's element count).
    pub nel_values: Vec<usize>,
    /// Grid order `N`.
    pub order: usize,
    /// Projection filter radius.
    pub projection_filter: f64,
    /// Observations per parameter combination (more = better noise
    /// averaging for the regression).
    pub repetitions: usize,
    /// Wall-clock or oracle observation.
    pub timing: TimingMode,
    /// Seed for the synthetic workloads.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            np_values: vec![0, 50, 200, 500, 1000, 2000],
            ngp_values: vec![0, 25, 100, 400],
            nel_values: vec![1, 8, 27, 64],
            order: 5,
            projection_filter: 0.03,
            repetitions: 2,
            timing: TimingMode::default_oracle(),
            seed: 0xBEEF,
        }
    }
}

impl SweepConfig {
    /// Number of records the sweep will produce.
    pub fn record_count(&self) -> usize {
        self.np_values.len()
            * self.ngp_values.len()
            * self.nel_values.len()
            * self.repetitions
            * KernelKind::ALL.len()
    }
}

/// Run the sweep and collect one [`Recorder`] of training records.
pub fn benchmark_kernels(cfg: &SweepConfig) -> Result<Recorder> {
    if cfg.order < 2 {
        return Err(PicError::config("sweep order must be at least 2"));
    }
    if cfg.np_values.is_empty() || cfg.nel_values.is_empty() {
        return Err(PicError::config(
            "sweep needs at least one np and nel value",
        ));
    }
    let max_nel = cfg.nel_values.iter().copied().max().unwrap_or(1);
    // The sweep mesh is just large enough to hold the largest nel request.
    let side = (max_nel as f64).cbrt().ceil() as usize + 1;
    let mesh = ElementMesh::new(Aabb::unit(), MeshDims::cube(side.max(2)), cfg.order)?;
    let gll = GllRule::new(cfg.order);
    let field = UniformFlow {
        velocity: Vec3::new(0.4, 0.2, 0.1),
    };
    let ctx = KernelContext {
        mesh: &mesh,
        gll: &gll,
        field: &field,
        filter: cfg.projection_filter,
        dt: 0.01,
        gravity: Vec3::new(0.0, 0.0, -0.2),
        drag_tau: 0.05,
        collision_radius: 0.0,
        collision_stiffness: 0.0,
    };
    let oracle = cfg.timing.oracle();
    // A modest rank decomposition so ghost queries have real remote regions.
    let mapper = ElementMapper::new(&mesh, 8)?;
    let all_elements: Vec<_> = mesh.element_ids().collect();
    let decomp = RcbDecomposition::decompose(&mesh, 8)?;
    let _ = &decomp;

    let mut recorder = Recorder::new();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut key = 0u64;
    let max_np = cfg.np_values.iter().copied().max().unwrap_or(0);
    let max_ngp = cfg.ngp_values.iter().copied().max().unwrap_or(0);

    for rep in 0..cfg.repetitions.max(1) {
        // Fresh positions per repetition.
        let positions: Vec<Vec3> = (0..max_np + max_ngp)
            .map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64()))
            .collect();
        let velocities = vec![Vec3::ZERO; positions.len()];
        let outcome = mapper.assign(&positions);
        let index = RegionIndex::build(&outcome.rank_regions);
        let cell = CellList::build(&positions, 0.05);
        let _ = rep;

        for &np in &cfg.np_values {
            let subset: Vec<u32> = (0..np as u32).collect();
            for &ngp in &cfg.ngp_values {
                // Ghost stand-ins: extra particles beyond the real subset.
                let mut proj_set = subset.clone();
                proj_set.extend((max_np as u32)..(max_np + ngp) as u32);
                for &nel in &cfg.nel_values {
                    let elements = &all_elements[..nel.min(all_elements.len())];
                    let params = WorkloadParams {
                        np: np as f64,
                        ngp: ngp as f64,
                        nel: nel as f64,
                        n_order: cfg.order as f64,
                        filter: cfg.projection_filter,
                    };
                    for kernel in KernelKind::ALL {
                        let seconds = match &oracle {
                            Some(o) => {
                                key += 1;
                                o.observed_cost(kernel, &params, key)
                            }
                            None => time_kernel(
                                &ctx,
                                kernel,
                                &positions,
                                &velocities,
                                &subset,
                                &proj_set,
                                elements,
                                &outcome.ranks,
                                &index,
                                &cell,
                            ),
                        };
                        recorder.record(kernel, params, seconds);
                    }
                }
            }
        }
    }
    Ok(recorder)
}

/// Execute one kernel on the synthetic workload and return wall seconds.
#[allow(clippy::too_many_arguments)]
fn time_kernel(
    ctx: &KernelContext<'_>,
    kernel: KernelKind,
    positions: &[Vec3],
    velocities: &[Vec3],
    subset: &[u32],
    proj_set: &[u32],
    elements: &[pic_types::ElementId],
    owners: &[pic_types::Rank],
    index: &RegionIndex,
    cell: &CellList,
) -> f64 {
    match kernel {
        KernelKind::Interpolation => {
            let mut out = Vec::new();
            let t0 = Instant::now();
            kernels::interpolate(ctx, positions, subset, 0.1, &mut out);
            t0.elapsed().as_secs_f64()
        }
        KernelKind::EquationSolver => {
            let fluid = vec![Vec3::new(0.4, 0.2, 0.1); subset.len()];
            let mut out = Vec::new();
            let t0 = Instant::now();
            kernels::equation_solver(ctx, positions, velocities, subset, &fluid, cell, &mut out);
            t0.elapsed().as_secs_f64()
        }
        KernelKind::ParticlePusher => {
            // operate on a scratch copy so the sweep stays position-stable
            let mut pos = positions.to_vec();
            let mut vel = velocities.to_vec();
            let accel = vec![Vec3::new(0.0, 0.0, -0.2); subset.len()];
            let t0 = Instant::now();
            kernels::particle_pusher(ctx, &mut pos, &mut vel, subset, &accel);
            t0.elapsed().as_secs_f64()
        }
        KernelKind::Projection => {
            let t0 = Instant::now();
            let v = kernels::projection(ctx, positions, proj_set);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(v);
            dt
        }
        KernelKind::CreateGhostParticles => {
            let t0 = Instant::now();
            let g = kernels::create_ghost_particles(
                ctx,
                &positions[..subset.len()],
                &owners[..subset.len()],
                index,
            );
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(g.len());
            dt
        }
        KernelKind::FluidSolver => {
            let t0 = Instant::now();
            let v = kernels::fluid_solver(ctx, elements, 0.1);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(v);
            dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(timing: TimingMode) -> SweepConfig {
        SweepConfig {
            np_values: vec![0, 100, 400],
            ngp_values: vec![0, 50],
            nel_values: vec![1, 8],
            order: 3,
            projection_filter: 0.03,
            repetitions: 1,
            timing,
            seed: 7,
        }
    }

    #[test]
    fn oracle_sweep_produces_expected_record_count() {
        let cfg = small_sweep(TimingMode::default_oracle());
        let rec = benchmark_kernels(&cfg).unwrap();
        assert_eq!(rec.len(), cfg.record_count());
        // every kernel is covered
        for k in KernelKind::ALL {
            assert!(!rec.for_kernel(k).is_empty());
        }
    }

    #[test]
    fn oracle_sweep_is_deterministic() {
        let cfg = small_sweep(TimingMode::default_oracle());
        let a = benchmark_kernels(&cfg).unwrap();
        let b = benchmark_kernels(&cfg).unwrap();
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn sweep_varies_all_features() {
        // the sweep must produce variation in np, ngp, and nel — the very
        // property single-run training lacks for balanced mappings
        let cfg = small_sweep(TimingMode::default_oracle());
        let rec = benchmark_kernels(&cfg).unwrap();
        let nps: std::collections::BTreeSet<u64> =
            rec.records().iter().map(|r| r.params.np as u64).collect();
        let ngps: std::collections::BTreeSet<u64> =
            rec.records().iter().map(|r| r.params.ngp as u64).collect();
        let nels: std::collections::BTreeSet<u64> =
            rec.records().iter().map(|r| r.params.nel as u64).collect();
        assert!(nps.len() >= 3 && ngps.len() >= 2 && nels.len() >= 2);
    }

    #[test]
    fn wall_clock_sweep_times_are_positive_for_loaded_kernels() {
        let cfg = small_sweep(TimingMode::WallClock);
        let rec = benchmark_kernels(&cfg).unwrap();
        // interpolation at np=400 must take measurable time
        let slow: Vec<_> = rec
            .for_kernel(KernelKind::Interpolation)
            .into_iter()
            .filter(|r| r.params.np == 400.0)
            .collect();
        assert!(!slow.is_empty());
        assert!(slow.iter().all(|r| r.seconds > 0.0));
    }

    #[test]
    fn sweep_validates_inputs() {
        let mut cfg = small_sweep(TimingMode::default_oracle());
        cfg.order = 1;
        assert!(benchmark_kernels(&cfg).is_err());
        let mut cfg = small_sweep(TimingMode::default_oracle());
        cfg.np_values.clear();
        assert!(benchmark_kernels(&cfg).is_err());
    }
}
