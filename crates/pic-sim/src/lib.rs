//! # pic-sim
//!
//! A from-scratch mini multi-phase PIC application standing in for CMT-nek
//! (paper §III). It exists so the prediction framework has something real to
//! predict: the mini-app produces
//!
//! * **particle traces** (positions sampled every K iterations) — the input
//!   of the Dynamic Workload Generator;
//! * **ground-truth workloads** — per-rank real/ghost particle counts and
//!   migration counts at every sample, to validate the DWG against;
//! * **kernel timing data** — per-(workload, parameters) execution times of
//!   the PIC solver kernels, the training data of the Model Generator.
//!
//! The solver loop follows the paper's four phases plus ghost handling:
//!
//! 1. *Interpolation* (grid → particle): evaluate fluid properties at each
//!    particle via tensor-product Lagrange interpolation on GLL nodes;
//! 2. *Equation solver*: drag + gravity + soft-sphere collision forces;
//! 3. *Particle pusher*: advance positions;
//! 4. *Projection* (particle → grid): scatter particle influence onto
//!    neighbouring grid points within the projection filter radius;
//!
//! plus `create_ghost_particles`, which replicates a particle onto every
//! remote rank its projection-filter sphere touches.
//!
//! Execution is single-process with *simulated ranks*: each step the
//! configured [`ParticleMapper`](pic_mapping::ParticleMapper) assigns
//! particles to ranks, and kernels run rank-by-rank on each rank's subset so
//! per-rank workloads and timings are faithful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod benchmark;
pub mod config;
pub mod field;
pub mod instrument;
pub mod kernels;
pub mod oracle;
pub mod particles;
pub mod scenario;

pub use app::{GroundTruth, GroundTruthSample, MiniPic, SimOutput};
pub use benchmark::{benchmark_kernels, SweepConfig};
pub use config::SimConfig;
pub use field::{BlastField, FluidField, UniformFlow, VortexField};
pub use instrument::{KernelKind, Recorder, TrainingRecord};
pub use oracle::CostOracle;
pub use particles::ParticleSet;
pub use scenario::ScenarioKind;
