//! The mini PIC application driver.
//!
//! [`MiniPic`] advances the particle population through the PIC solver loop
//! on a single process with *simulated ranks*. Off-sample steps advance only
//! the particle state (interpolation → equation solver → pusher); at every
//! sample step the full instrumented loop runs rank-by-rank, producing the
//! trace frame, the ground-truth workload, and kernel timing records.

use crate::config::SimConfig;
use crate::field::FluidField;
use crate::instrument::{KernelKind, Recorder, WorkloadParams};
use crate::kernels::{self, KernelContext};
use crate::oracle::CostOracle;
use crate::particles::{CellList, ParticleSet};
use pic_grid::gll::GllRule;
use pic_grid::{ElementMesh, RcbDecomposition};
use pic_mapping::{
    BinMapper, ElementMapper, HilbertMapper, LoadBalancedMapper, MappingAlgorithm, MappingOutcome,
    ParticleMapper, RegionIndex,
};
use pic_trace::{ParticleTrace, TraceMeta};
use pic_types::{ElementId, Rank, Result, Vec3};
use std::time::Instant;

/// Ground-truth workload observed at one sample step.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthSample {
    /// Step (iteration) index of the sample.
    pub iteration: u64,
    /// Real particles residing on each rank.
    pub real_counts: Vec<u32>,
    /// Ghost particles received by each rank.
    pub ghost_recv_counts: Vec<u32>,
    /// Ghost copies sent by each rank (created from its residents).
    pub ghost_sent_counts: Vec<u32>,
    /// Bins generated at this sample (bin-based mapping only).
    pub bin_count: Option<usize>,
    /// Sparse particle migrations `(from, to, count)` since the previous
    /// sample, sorted lexicographically. Empty at the first sample.
    pub migrations: Vec<(u32, u32, u32)>,
    /// Observed per-rank kernel times, indexed `[rank][k]` with `k` in
    /// [`KernelKind::ALL`] order.
    pub kernel_seconds: Vec<[f64; 6]>,
}

/// All ground-truth samples of one run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Rank count.
    pub ranks: usize,
    /// Elements per rank (static — RCB decomposition).
    pub elements_per_rank: Vec<u32>,
    /// One record per trace sample.
    pub samples: Vec<GroundTruthSample>,
}

impl GroundTruth {
    /// Maximum real-particle count over ranks, per sample — the critical
    /// path series of the paper's Fig 5.
    pub fn peak_real_series(&self) -> Vec<u32> {
        self.samples
            .iter()
            .map(|s| s.real_counts.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// Resource utilization: the fraction of ranks holding at least one
    /// real particle at some sample (paper §II-A / Fig 9).
    pub fn utilization(&self) -> f64 {
        if self.ranks == 0 || self.samples.is_empty() {
            return 0.0;
        }
        let mut ever = vec![false; self.ranks];
        for s in &self.samples {
            for (r, &c) in s.real_counts.iter().enumerate() {
                if c > 0 {
                    ever[r] = true;
                }
            }
        }
        ever.iter().filter(|&&e| e).count() as f64 / self.ranks as f64
    }

    /// Total migrated particles over the whole run.
    pub fn total_migrations(&self) -> u64 {
        self.samples
            .iter()
            .flat_map(|s| s.migrations.iter())
            .map(|&(_, _, c)| c as u64)
            .sum()
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// The particle trace (DWG input).
    pub trace: ParticleTrace,
    /// Ground-truth workload (DWG validation target).
    pub ground_truth: GroundTruth,
    /// Kernel timing records (Model Generator training data).
    pub recorder: Recorder,
}

/// The mini PIC application.
pub struct MiniPic {
    cfg: SimConfig,
    mesh: ElementMesh,
    gll: GllRule,
    decomp: RcbDecomposition,
    rank_elements: Vec<Vec<ElementId>>,
    mapper: Box<dyn ParticleMapper>,
    field: Box<dyn FluidField>,
    particles: ParticleSet,
    oracle: Option<CostOracle>,
    time: f64,
}

impl MiniPic {
    /// Build the application from a validated configuration.
    pub fn new(cfg: SimConfig) -> Result<MiniPic> {
        cfg.validate()?;
        let mesh = ElementMesh::new(cfg.domain, cfg.mesh_dims, cfg.order)?;
        let gll = GllRule::new(cfg.order);
        let decomp = RcbDecomposition::decompose(&mesh, cfg.ranks)?;
        let rank_elements = Rank::all(cfg.ranks)
            .map(|r| decomp.elements_of_rank(r))
            .collect();
        let mapper = build_mapper(cfg.mapping, &mesh, cfg.ranks, cfg.projection_filter)?;
        let field = cfg.scenario.field(cfg.domain);
        let particles = cfg
            .scenario
            .init_particles(cfg.domain, cfg.particles, cfg.seed);
        let oracle = cfg.timing.oracle();
        Ok(MiniPic {
            cfg,
            mesh,
            gll,
            decomp,
            rank_elements,
            mapper,
            field,
            particles,
            oracle,
            time: 0.0,
        })
    }

    /// The configuration this app was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The element mesh.
    pub fn mesh(&self) -> &ElementMesh {
        &self.mesh
    }

    /// The static element decomposition (fluid workload).
    pub fn decomposition(&self) -> &RcbDecomposition {
        &self.decomp
    }

    /// Current particle positions.
    pub fn positions(&self) -> &[Vec3] {
        &self.particles.position
    }

    /// Run the configured number of steps, producing trace, ground truth,
    /// and timing records.
    pub fn run(mut self) -> Result<SimOutput> {
        let meta = TraceMeta::new(
            self.cfg.particles,
            self.cfg.sample_interval as u32,
            self.cfg.domain,
            format!(
                "scenario={} mapping={} seed={}",
                self.cfg.scenario, self.cfg.mapping, self.cfg.seed
            ),
        );
        let mut trace = ParticleTrace::new(meta);
        let mut ground_truth = GroundTruth {
            ranks: self.cfg.ranks,
            elements_per_rank: self
                .decomp
                .element_counts()
                .iter()
                .map(|&c| c as u32)
                .collect(),
            samples: Vec::new(),
        };
        let mut recorder = Recorder::new();
        let mut prev_owners: Option<Vec<Rank>> = None;

        for step in 0..self.cfg.steps {
            if step % self.cfg.sample_interval == 0 {
                // The trace frame must capture the positions the mapping
                // (and therefore the ground-truth workload) is computed
                // from — i.e. *before* this step's pusher phase runs.
                trace.push_sample(pic_trace::TraceSample {
                    iteration: step as u64,
                    positions: self.particles.position.clone(),
                })?;
                let sample =
                    self.sample_step(step as u64, &mut recorder, prev_owners.as_deref())?;
                prev_owners = Some(sample.1);
                ground_truth.samples.push(sample.0);
                // the sample step also advanced the particles
            } else {
                self.motion_step();
            }
            self.time += self.cfg.dt;
        }

        Ok(SimOutput {
            trace,
            ground_truth,
            recorder,
        })
    }

    /// Advance one step without instrumentation (single global "rank").
    fn motion_step(&mut self) {
        let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
        let n = self.particles.len();
        let all: Vec<u32> = (0..n as u32).collect();
        let mut fluid_vel = Vec::new();
        kernels::interpolate(
            &ctx,
            &self.particles.position,
            &all,
            self.time,
            &mut fluid_vel,
        );
        let cell = CellList::build(&self.particles.position, neighbor_cell(&self.cfg));
        let mut accel = Vec::new();
        kernels::equation_solver(
            &ctx,
            &self.particles.position,
            &self.particles.velocity,
            &all,
            &fluid_vel,
            &cell,
            &mut accel,
        );
        kernels::particle_pusher(
            &ctx,
            &mut self.particles.position,
            &mut self.particles.velocity,
            &all,
            &accel,
        );
    }

    /// Advance one step with full per-rank instrumentation, returning the
    /// ground-truth sample and the ownership vector (for the next sample's
    /// migration diff).
    fn sample_step(
        &mut self,
        iteration: u64,
        recorder: &mut Recorder,
        prev_owners: Option<&[Rank]>,
    ) -> Result<(GroundTruthSample, Vec<Rank>)> {
        let ranks = self.cfg.ranks;
        let outcome = self.mapper.assign(&self.particles.position);
        let subsets = subsets_of(&outcome, ranks);
        let index = RegionIndex::build(&outcome.rank_regions);

        // --- create_ghost_particles, per source rank ------------------
        let mut ghost_recv: Vec<Vec<u32>> = vec![Vec::new(); ranks];
        let mut ghost_sent = vec![0u32; ranks];
        let mut ghost_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            let mut scratch = pic_mapping::RegionQueryScratch::new();
            for r in 0..ranks {
                let t0 = Instant::now();
                for &i in &subsets[r] {
                    let p = self.particles.position[i as usize];
                    index.for_each_rank_touching_sphere(p, ctx.filter, &mut scratch, |target| {
                        if target.index() != r {
                            ghost_recv[target.index()].push(i);
                            ghost_sent[r] += 1;
                        }
                    });
                }
                ghost_seconds[r] = t0.elapsed().as_secs_f64();
            }
        }
        let ghost_recv_counts: Vec<u32> = ghost_recv.iter().map(|g| g.len() as u32).collect();
        let real_counts: Vec<u32> = subsets.iter().map(|s| s.len() as u32).collect();

        // --- per-rank instrumented phases -----------------------------
        let mut kernel_seconds = vec![[0.0f64; 6]; ranks];
        let order = self.cfg.order as f64;
        let filter = self.cfg.projection_filter;
        let params_of = |r: usize, kernel: KernelKind| -> WorkloadParams {
            let ngp = match kernel {
                KernelKind::CreateGhostParticles => ghost_sent[r] as f64,
                _ => ghost_recv_counts[r] as f64,
            };
            WorkloadParams {
                np: real_counts[r] as f64,
                ngp,
                nel: self.decomp.elements_on_rank(Rank::from_index(r)) as f64,
                n_order: order,
                filter,
            }
        };
        let kernel_slot = |k: KernelKind| KernelKind::ALL.iter().position(|&x| x == k).unwrap();

        // Phase: fluid solver (regular workload).
        let mut fluid_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            #[allow(clippy::needless_range_loop)] // r is the rank id across parallel arrays
            for r in 0..ranks {
                let t0 = Instant::now();
                let v = kernels::fluid_solver(&ctx, &self.rank_elements[r], self.time);
                std::hint::black_box(v);
                fluid_seconds[r] = t0.elapsed().as_secs_f64();
            }
        }

        // Phase: interpolation (collect fluid velocities for all ranks).
        let n = self.particles.len();
        let mut fluid_vel_all = vec![Vec3::ZERO; n];
        let mut interp_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            let mut chunk = Vec::new();
            for r in 0..ranks {
                let t0 = Instant::now();
                kernels::interpolate(
                    &ctx,
                    &self.particles.position,
                    &subsets[r],
                    self.time,
                    &mut chunk,
                );
                interp_seconds[r] = t0.elapsed().as_secs_f64();
                for (k, &i) in subsets[r].iter().enumerate() {
                    fluid_vel_all[i as usize] = chunk[k];
                }
            }
        }

        // Phase: equation solver.
        let cell = CellList::build(&self.particles.position, neighbor_cell(&self.cfg));
        let mut accel_all = vec![Vec3::ZERO; n];
        let mut eq_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            let mut chunk_vel = Vec::new();
            let mut chunk_acc = Vec::new();
            for r in 0..ranks {
                chunk_vel.clear();
                chunk_vel.extend(subsets[r].iter().map(|&i| fluid_vel_all[i as usize]));
                let t0 = Instant::now();
                kernels::equation_solver(
                    &ctx,
                    &self.particles.position,
                    &self.particles.velocity,
                    &subsets[r],
                    &chunk_vel,
                    &cell,
                    &mut chunk_acc,
                );
                eq_seconds[r] = t0.elapsed().as_secs_f64();
                for (k, &i) in subsets[r].iter().enumerate() {
                    accel_all[i as usize] = chunk_acc[k];
                }
            }
        }

        // Phase: pusher.
        let mut push_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            let mut chunk_acc = Vec::new();
            for r in 0..ranks {
                chunk_acc.clear();
                chunk_acc.extend(subsets[r].iter().map(|&i| accel_all[i as usize]));
                let t0 = Instant::now();
                kernels::particle_pusher(
                    &ctx,
                    &mut self.particles.position,
                    &mut self.particles.velocity,
                    &subsets[r],
                    &chunk_acc,
                );
                push_seconds[r] = t0.elapsed().as_secs_f64();
            }
        }

        // Phase: projection (real + received ghosts).
        let mut proj_seconds = vec![0.0f64; ranks];
        {
            let ctx = make_ctx(&self.cfg, &self.mesh, &self.gll, self.field.as_ref());
            let mut combined = Vec::new();
            for r in 0..ranks {
                combined.clear();
                combined.extend_from_slice(&subsets[r]);
                combined.extend_from_slice(&ghost_recv[r]);
                let t0 = Instant::now();
                let v = kernels::projection(&ctx, &self.particles.position, &combined);
                std::hint::black_box(v);
                proj_seconds[r] = t0.elapsed().as_secs_f64();
            }
        }

        // --- record timings (wall-clock or oracle) --------------------
        let measured: [(KernelKind, &[f64]); 6] = [
            (KernelKind::FluidSolver, &fluid_seconds),
            (KernelKind::CreateGhostParticles, &ghost_seconds),
            (KernelKind::Interpolation, &interp_seconds),
            (KernelKind::EquationSolver, &eq_seconds),
            (KernelKind::ParticlePusher, &push_seconds),
            (KernelKind::Projection, &proj_seconds),
        ];
        for (kernel, wall) in measured {
            let slot = kernel_slot(kernel);
            for r in 0..ranks {
                let params = params_of(r, kernel);
                let seconds = match &self.oracle {
                    Some(o) => {
                        o.observed_cost(kernel, &params, iteration * ranks as u64 + r as u64)
                    }
                    None => wall[r],
                };
                kernel_seconds[r][slot] = seconds;
                recorder.record(kernel, params, seconds);
            }
        }

        // --- migrations since previous sample --------------------------
        let migrations = match prev_owners {
            Some(prev) => migration_counts(prev, &outcome.ranks),
            None => Vec::new(),
        };

        let sample = GroundTruthSample {
            iteration,
            real_counts,
            ghost_recv_counts,
            ghost_sent_counts: ghost_sent,
            bin_count: outcome.bin_count,
            migrations,
            kernel_seconds,
        };
        Ok((sample, outcome.ranks))
    }
}

/// Build a kernel context from the app's parts. A free function (rather
/// than a `&self` method) so that the borrow is per-field, letting the
/// pusher phase mutate the particle arrays while the context borrows the
/// mesh and field.
fn make_ctx<'a>(
    cfg: &'a SimConfig,
    mesh: &'a ElementMesh,
    gll: &'a GllRule,
    field: &'a dyn FluidField,
) -> KernelContext<'a> {
    KernelContext {
        mesh,
        gll,
        field,
        filter: cfg.projection_filter,
        dt: cfg.dt,
        gravity: cfg.gravity,
        drag_tau: cfg.drag_tau,
        collision_radius: cfg.collision_radius,
        collision_stiffness: cfg.collision_stiffness,
    }
}

/// Construct the mapper selected by the configuration.
pub fn build_mapper(
    algorithm: MappingAlgorithm,
    mesh: &ElementMesh,
    ranks: usize,
    filter: f64,
) -> Result<Box<dyn ParticleMapper>> {
    Ok(match algorithm {
        MappingAlgorithm::ElementBased => Box::new(ElementMapper::new(mesh, ranks)?),
        MappingAlgorithm::BinBased => Box::new(BinMapper::new(ranks, filter)?),
        MappingAlgorithm::HilbertOrdered => Box::new(HilbertMapper::new(mesh, ranks)?),
        MappingAlgorithm::LoadBalanced => Box::new(LoadBalancedMapper::new(mesh, ranks)?),
    })
}

/// Group particle indices by owning rank.
fn subsets_of(outcome: &MappingOutcome, ranks: usize) -> Vec<Vec<u32>> {
    let mut subsets: Vec<Vec<u32>> = vec![Vec::new(); ranks];
    for (i, r) in outcome.ranks.iter().enumerate() {
        subsets[r.index()].push(i as u32);
    }
    subsets
}

/// Sparse sorted migration counts between two ownership snapshots.
fn migration_counts(prev: &[Rank], cur: &[Rank]) -> Vec<(u32, u32, u32)> {
    debug_assert_eq!(prev.len(), cur.len());
    let mut moves: Vec<(u32, u32)> = prev
        .iter()
        .zip(cur)
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (a.0, b.0))
        .collect();
    moves.sort_unstable();
    let mut out: Vec<(u32, u32, u32)> = Vec::new();
    for (from, to) in moves {
        match out.last_mut() {
            Some(last) if last.0 == from && last.1 == to => last.2 += 1,
            _ => out.push((from, to, 1)),
        }
    }
    out
}

/// Collision-neighbour cell size: the collision radius, or a small default
/// when collisions are disabled (the cell list is still used for the
/// neighbour term's data structure cost).
fn neighbor_cell(cfg: &SimConfig) -> f64 {
    if cfg.collision_radius > 0.0 {
        cfg.collision_radius
    } else {
        0.05 * cfg.domain.extent().longest_extent_or_one()
    }
}

/// Extension trait used by [`neighbor_cell`].
trait LongestExtentOrOne {
    fn longest_extent_or_one(&self) -> f64;
}

impl LongestExtentOrOne for Vec3 {
    fn longest_extent_or_one(&self) -> f64 {
        let m = self.x.max(self.y).max(self.z);
        if m > 0.0 {
            m
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingMode;
    use pic_grid::MeshDims;

    fn small_cfg() -> SimConfig {
        SimConfig {
            ranks: 16,
            mesh_dims: MeshDims::cube(4),
            order: 3,
            particles: 400,
            steps: 30,
            sample_interval: 10,
            ..SimConfig::default()
        }
    }

    #[test]
    fn run_produces_consistent_output() {
        let out = MiniPic::new(small_cfg()).unwrap().run().unwrap();
        assert_eq!(out.trace.sample_count(), 3); // steps 0, 10, 20
        assert_eq!(out.ground_truth.samples.len(), 3);
        for s in &out.ground_truth.samples {
            assert_eq!(s.real_counts.iter().sum::<u32>(), 400);
            assert_eq!(s.real_counts.len(), 16);
            let sent: u32 = s.ghost_sent_counts.iter().sum();
            let recv: u32 = s.ghost_recv_counts.iter().sum();
            assert_eq!(sent, recv, "every sent ghost is received somewhere");
            assert!(s.bin_count.unwrap() <= 16);
        }
        // recorder: 6 kernels × 16 ranks × 3 samples
        assert_eq!(out.recorder.len(), 6 * 16 * 3);
    }

    #[test]
    fn runs_are_deterministic_with_oracle_timing() {
        let a = MiniPic::new(small_cfg()).unwrap().run().unwrap();
        let b = MiniPic::new(small_cfg()).unwrap().run().unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.ground_truth.samples, b.ground_truth.samples);
        assert_eq!(a.recorder.records(), b.recorder.records());
    }

    #[test]
    fn hele_shaw_boundary_expands() {
        let mut cfg = small_cfg();
        cfg.steps = 60;
        cfg.sample_interval = 20;
        let out = MiniPic::new(cfg).unwrap().run().unwrap();
        let vols = pic_trace::stats::boundary_volume_series(&out.trace);
        assert!(
            vols.last().unwrap() > &(vols[0] * 1.5),
            "blast should expand the bed: {vols:?}"
        );
    }

    #[test]
    fn particles_stay_in_domain() {
        let mut cfg = small_cfg();
        cfg.steps = 50;
        let app = MiniPic::new(cfg.clone()).unwrap();
        let out = app.run().unwrap();
        let last = out.trace.positions_at(out.trace.sample_count() - 1);
        for &p in last {
            assert!(cfg.domain.contains_closed(p), "{p}");
        }
    }

    #[test]
    fn element_mapping_is_concentrated_bin_mapping_is_not() {
        let mut cfg_el = small_cfg();
        cfg_el.mapping = MappingAlgorithm::ElementBased;
        let mut cfg_bin = small_cfg();
        cfg_bin.mapping = MappingAlgorithm::BinBased;
        cfg_bin.projection_filter = 1e-3; // tiny threshold → bins == ranks
        let out_el = MiniPic::new(cfg_el).unwrap().run().unwrap();
        let out_bin = MiniPic::new(cfg_bin).unwrap().run().unwrap();
        let u_el = out_el.ground_truth.utilization();
        let u_bin = out_bin.ground_truth.utilization();
        assert!(u_bin > u_el, "bin {u_bin} must beat element {u_el}");
        // peak workload: element mapping worse (higher peak)
        let p_el = *out_el.ground_truth.peak_real_series().first().unwrap();
        let p_bin = *out_bin.ground_truth.peak_real_series().first().unwrap();
        assert!(p_el > p_bin, "element peak {p_el} vs bin peak {p_bin}");
    }

    #[test]
    fn migrations_are_recorded_for_moving_particles() {
        let mut cfg = small_cfg();
        cfg.scenario = crate::scenario::ScenarioKind::VortexCluster;
        cfg.mapping = MappingAlgorithm::ElementBased;
        cfg.steps = 40;
        cfg.sample_interval = 10;
        let out = MiniPic::new(cfg).unwrap().run().unwrap();
        assert!(
            out.ground_truth.total_migrations() > 0,
            "vortex must migrate particles"
        );
        // first sample has no migrations by definition
        assert!(out.ground_truth.samples[0].migrations.is_empty());
    }

    #[test]
    fn migration_counts_helper() {
        let prev = vec![Rank(0), Rank(0), Rank(1), Rank(2)];
        let cur = vec![Rank(1), Rank(1), Rank(1), Rank(0)];
        let m = migration_counts(&prev, &cur);
        assert_eq!(m, vec![(0, 1, 2), (2, 0, 1)]);
        assert!(migration_counts(&cur, &cur).is_empty());
    }

    #[test]
    fn wall_clock_mode_produces_positive_times() {
        let mut cfg = small_cfg();
        cfg.timing = TimingMode::WallClock;
        cfg.steps = 10;
        cfg.sample_interval = 10;
        let out = MiniPic::new(cfg).unwrap().run().unwrap();
        // at least the loaded ranks must show nonzero interpolation time
        let total: f64 = out.recorder.total_seconds(KernelKind::Interpolation);
        assert!(total > 0.0);
    }
}
