//! The PIC solver-loop kernels (paper §III-A).
//!
//! These do *real* arithmetic with the same asymptotic shapes as CMT-nek's
//! kernels (tensor-product `N³` volumes for interpolation/projection,
//! per-particle streaming for the pusher, neighbour interactions for
//! collisions, sphere-vs-domain searches for ghosts), so wall-clock timing
//! of them yields legitimate model-training data.
//!
//! All kernels operate on an explicit *subset* of particle indices — the
//! particles residing on one simulated rank — so per-rank workloads and
//! timings fall out naturally.

use crate::field::FluidField;
use crate::particles::CellList;
use pic_grid::gll::GllRule;
use pic_grid::ElementMesh;
use pic_mapping::{RegionIndex, RegionQueryScratch};
use pic_types::{Rank, Vec3};

/// Shared, read-only context for one solver step.
pub struct KernelContext<'a> {
    /// The spectral-element mesh.
    pub mesh: &'a ElementMesh,
    /// 1-D GLL rule matching `mesh.order()`.
    pub gll: &'a GllRule,
    /// The fluid field driving the particles.
    pub field: &'a dyn FluidField,
    /// Projection filter radius (also the ghost influence radius).
    pub filter: f64,
    /// Time-step size.
    pub dt: f64,
    /// Gravitational acceleration.
    pub gravity: Vec3,
    /// Particle drag relaxation time (Stokes response time).
    pub drag_tau: f64,
    /// Collision radius (soft-sphere interaction distance).
    pub collision_radius: f64,
    /// Collision stiffness.
    pub collision_stiffness: f64,
}

/// Map a position to its element's reference coordinates in `[-1, 1]³`,
/// clamping onto the domain first.
fn reference_coords(mesh: &ElementMesh, p: Vec3) -> (pic_types::ElementId, Vec3) {
    let domain = mesh.domain();
    let q = p.clamp(domain.min, domain.max);
    let e = mesh
        .element_of_point(q)
        .expect("clamped point is inside the domain");
    let b = mesh.element_aabb(e);
    let h = b.extent();
    let xi = Vec3::new(
        2.0 * (q.x - b.min.x) / h.x - 1.0,
        2.0 * (q.y - b.min.y) / h.y - 1.0,
        2.0 * (q.z - b.min.z) / h.z - 1.0,
    );
    (e, xi)
}

/// **Interpolation** (grid → particle): evaluate the fluid velocity at each
/// subset particle by tensor-product Lagrange interpolation of the field
/// sampled at the containing element's GLL nodes.
///
/// Cost shape: `O(|subset| · N³)`.
pub fn interpolate(
    ctx: &KernelContext<'_>,
    positions: &[Vec3],
    subset: &[u32],
    time: f64,
    out: &mut Vec<Vec3>,
) {
    out.clear();
    out.reserve(subset.len());
    let n = ctx.gll.len();
    let mut lx = Vec::with_capacity(n);
    let mut ly = Vec::with_capacity(n);
    let mut lz = Vec::with_capacity(n);
    for &i in subset {
        let p = positions[i as usize];
        let (e, xi) = reference_coords(ctx.mesh, p);
        let b = ctx.mesh.element_aabb(e);
        let h = b.extent();
        ctx.gll.basis_at(xi.x, &mut lx);
        ctx.gll.basis_at(xi.y, &mut ly);
        ctx.gll.basis_at(xi.z, &mut lz);
        let mut u = Vec3::ZERO;
        for (k, &wz) in lz.iter().enumerate() {
            let nz = b.min.z + 0.5 * (ctx.gll.nodes[k] + 1.0) * h.z;
            for (j, &wy) in ly.iter().enumerate() {
                let ny = b.min.y + 0.5 * (ctx.gll.nodes[j] + 1.0) * h.y;
                let wyz = wy * wz;
                for (ii, &wx) in lx.iter().enumerate() {
                    let nx = b.min.x + 0.5 * (ctx.gll.nodes[ii] + 1.0) * h.x;
                    let node = Vec3::new(nx, ny, nz);
                    u += ctx.field.velocity(node, time) * (wx * wyz);
                }
            }
        }
        out.push(u);
    }
}

/// **Equation solver**: acceleration from drag toward the interpolated
/// fluid velocity, gravity, and soft-sphere collision forces against
/// neighbours (paper Eq. 2 with `F_h`, `F_b`, `F_c`).
///
/// `fluid_vel[k]` must correspond to `subset[k]`. `neighbors` is a cell
/// list built over the *same* positions array.
pub fn equation_solver(
    ctx: &KernelContext<'_>,
    positions: &[Vec3],
    velocities: &[Vec3],
    subset: &[u32],
    fluid_vel: &[Vec3],
    neighbors: &CellList,
    out_accel: &mut Vec<Vec3>,
) {
    debug_assert_eq!(subset.len(), fluid_vel.len());
    out_accel.clear();
    out_accel.reserve(subset.len());
    let rc = ctx.collision_radius;
    for (k, &i) in subset.iter().enumerate() {
        let p = positions[i as usize];
        let v = velocities[i as usize];
        // Hydrodynamic (drag) + body forces.
        let mut a = (fluid_vel[k] - v) / ctx.drag_tau + ctx.gravity;
        // Collision forces: linear soft-sphere repulsion.
        if rc > 0.0 {
            neighbors.for_neighbors(positions, p, rc, |j| {
                if j != i {
                    let d = p - positions[j as usize];
                    let dist = d.norm();
                    if dist > 1e-12 {
                        let overlap = (rc - dist) / rc;
                        a += d * (ctx.collision_stiffness * overlap / dist);
                    }
                }
            });
        }
        out_accel.push(a);
    }
}

/// **Particle pusher**: semi-implicit Euler advance of the subset, with
/// reflective domain walls (particles bounce rather than leave — CMT-nek's
/// closed Hele-Shaw cell behaves the same way).
pub fn particle_pusher(
    ctx: &KernelContext<'_>,
    positions: &mut [Vec3],
    velocities: &mut [Vec3],
    subset: &[u32],
    accel: &[Vec3],
) {
    debug_assert_eq!(subset.len(), accel.len());
    let domain = ctx.mesh.domain();
    for (k, &i) in subset.iter().enumerate() {
        let i = i as usize;
        let mut v = velocities[i] + accel[k] * ctx.dt;
        let mut p = positions[i] + v * ctx.dt;
        // Reflect at walls, axis by axis.
        for a in 0..3 {
            let lo = domain.min[a];
            let hi = domain.max[a];
            if p[a] < lo {
                p[a] = lo + (lo - p[a]);
                v[a] = -v[a];
            }
            if p[a] > hi {
                p[a] = hi - (p[a] - hi);
                v[a] = -v[a];
            }
            // Extreme overshoot (> domain width) just clamps.
            p[a] = p[a].clamp(lo, hi);
        }
        positions[i] = p;
        velocities[i] = v;
    }
}

/// **Projection** (particle → grid): scatter each subset particle's
/// influence onto every GLL node within the filter radius, using a Gaussian
/// weight. Returns the total projected weight (the grid field itself is not
/// needed by the prediction framework; accumulating a scalar preserves the
/// arithmetic volume while avoiding a full grid buffer).
///
/// Cost shape: `O(|subset| · (elements in filter sphere) · N³)` — growing
/// with the filter size, the Fig 10b effect.
pub fn projection(ctx: &KernelContext<'_>, positions: &[Vec3], subset: &[u32]) -> f64 {
    let n = ctx.gll.len();
    let rf = ctx.filter;
    let inv_rf2 = 1.0 / (rf * rf);
    let mut total = 0.0;
    for &i in subset {
        let p = positions[i as usize];
        let query = pic_types::Aabb::new(p, p).inflate(rf);
        for e in ctx.mesh.elements_in_aabb(&query) {
            let b = ctx.mesh.element_aabb(e);
            if !b.intersects_sphere(p, rf) {
                continue;
            }
            let h = b.extent();
            for k in 0..n {
                let nz = b.min.z + 0.5 * (ctx.gll.nodes[k] + 1.0) * h.z;
                for j in 0..n {
                    let ny = b.min.y + 0.5 * (ctx.gll.nodes[j] + 1.0) * h.y;
                    for ii in 0..n {
                        let nx = b.min.x + 0.5 * (ctx.gll.nodes[ii] + 1.0) * h.x;
                        let d2 = p.distance_sq(Vec3::new(nx, ny, nz));
                        if d2 <= rf * rf {
                            total += (-d2 * inv_rf2).exp();
                        }
                    }
                }
            }
        }
    }
    total
}

/// **create_ghost_particles**: for every particle, find the remote ranks
/// whose workload region its filter sphere touches; the particle becomes a
/// ghost on each. Returns ghost particle index lists per rank.
///
/// `owners[i]` is particle `i`'s residing rank; `index` spatially indexes
/// the per-rank regions of the current mapping.
pub fn create_ghost_particles(
    ctx: &KernelContext<'_>,
    positions: &[Vec3],
    owners: &[Rank],
    index: &RegionIndex,
) -> Vec<Vec<u32>> {
    let mut ghosts: Vec<Vec<u32>> = vec![Vec::new(); index.rank_count()];
    let mut scratch = RegionQueryScratch::new();
    for (i, &p) in positions.iter().enumerate() {
        let home = owners[i];
        index.for_each_rank_touching_sphere(p, ctx.filter, &mut scratch, |r| {
            if r != home {
                ghosts[r.index()].push(i as u32);
            }
        });
    }
    ghosts
}

/// **Fluid solver** (regular workload): a stand-in Euler update sweeping
/// every GLL node of the subset elements. Returns an accumulated value so
/// the work cannot be optimized away.
///
/// Cost shape: `O(|elements| · N³)` — uniform across ranks by construction
/// of the element decomposition.
pub fn fluid_solver(ctx: &KernelContext<'_>, elements: &[pic_types::ElementId], time: f64) -> f64 {
    let n = ctx.gll.len();
    let mut acc = 0.0;
    for &e in elements {
        let b = ctx.mesh.element_aabb(e);
        let h = b.extent();
        for k in 0..n {
            let nz = b.min.z + 0.5 * (ctx.gll.nodes[k] + 1.0) * h.z;
            let wz = ctx.gll.weights[k];
            for j in 0..n {
                let ny = b.min.y + 0.5 * (ctx.gll.nodes[j] + 1.0) * h.y;
                let wyz = ctx.gll.weights[j] * wz;
                for ii in 0..n {
                    let nx = b.min.x + 0.5 * (ctx.gll.nodes[ii] + 1.0) * h.x;
                    let node = Vec3::new(nx, ny, nz);
                    let u = ctx.field.velocity(node, time);
                    let pr = ctx.field.pressure(node, time);
                    acc += (u.norm_sq() + pr) * ctx.gll.weights[ii] * wyz;
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{UniformFlow, VortexField};
    use pic_grid::MeshDims;
    use pic_mapping::{ElementMapper, ParticleMapper};
    use pic_types::Aabb;

    fn mesh() -> ElementMesh {
        ElementMesh::new(Aabb::unit(), MeshDims::cube(4), 5).unwrap()
    }

    fn ctx<'a>(
        mesh: &'a ElementMesh,
        gll: &'a GllRule,
        field: &'a dyn FluidField,
    ) -> KernelContext<'a> {
        KernelContext {
            mesh,
            gll,
            field,
            filter: 0.05,
            dt: 0.01,
            gravity: Vec3::new(0.0, 0.0, -1.0),
            drag_tau: 0.1,
            collision_radius: 0.0,
            collision_stiffness: 0.0,
        }
    }

    #[test]
    fn interpolation_reproduces_constant_field() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::new(1.0, -2.0, 0.5),
        };
        let c = ctx(&m, &gll, &f);
        let positions = vec![Vec3::new(0.13, 0.7, 0.42), Vec3::new(0.9, 0.1, 0.99)];
        let subset: Vec<u32> = vec![0, 1];
        let mut out = Vec::new();
        interpolate(&c, &positions, &subset, 0.0, &mut out);
        for u in out {
            assert!(u.distance(f.velocity) < 1e-10, "{u}");
        }
    }

    #[test]
    fn interpolation_reproduces_linear_field() {
        // Vortex velocity is linear in position; GLL Lagrange interpolation
        // of order >= 2 must reproduce it to machine precision.
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = VortexField {
            center: Vec3::splat(0.5),
            angular_speed: 3.0,
        };
        let c = ctx(&m, &gll, &f);
        let positions = vec![Vec3::new(0.31, 0.77, 0.11)];
        let mut out = Vec::new();
        interpolate(&c, &positions, &[0], 0.0, &mut out);
        let exact = f.velocity(positions[0], 0.0);
        assert!(out[0].distance(exact) < 1e-9, "{} vs {exact}", out[0]);
    }

    #[test]
    fn drag_relaxes_toward_fluid() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::new(1.0, 0.0, 0.0),
        };
        let mut c = ctx(&m, &gll, &f);
        c.gravity = Vec3::ZERO;
        let positions = vec![Vec3::splat(0.5)];
        let velocities = vec![Vec3::ZERO];
        let cl = CellList::build(&positions, 0.1);
        let mut acc = Vec::new();
        equation_solver(
            &c,
            &positions,
            &velocities,
            &[0],
            &[f.velocity],
            &cl,
            &mut acc,
        );
        // a = (u - v)/tau = (1,0,0)/0.1
        assert!(acc[0].distance(Vec3::new(10.0, 0.0, 0.0)) < 1e-12);
    }

    #[test]
    fn collisions_push_particles_apart() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::ZERO,
        };
        let mut c = ctx(&m, &gll, &f);
        c.gravity = Vec3::ZERO;
        c.collision_radius = 0.1;
        c.collision_stiffness = 100.0;
        let positions = vec![Vec3::new(0.5, 0.5, 0.5), Vec3::new(0.55, 0.5, 0.5)];
        let velocities = vec![Vec3::ZERO; 2];
        let cl = CellList::build(&positions, 0.1);
        let mut acc = Vec::new();
        equation_solver(
            &c,
            &positions,
            &velocities,
            &[0, 1],
            &[Vec3::ZERO; 2],
            &cl,
            &mut acc,
        );
        assert!(acc[0].x < 0.0, "left particle pushed left: {}", acc[0]);
        assert!(acc[1].x > 0.0, "right particle pushed right: {}", acc[1]);
        // symmetric
        assert!((acc[0].x + acc[1].x).abs() < 1e-12);
    }

    #[test]
    fn pusher_advances_and_reflects() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::ZERO,
        };
        let c = ctx(&m, &gll, &f);
        let mut positions = vec![Vec3::new(0.5, 0.5, 0.005)];
        let mut velocities = vec![Vec3::new(0.0, 0.0, -1.0)];
        // no extra acceleration
        particle_pusher(&c, &mut positions, &mut velocities, &[0], &[Vec3::ZERO]);
        // would have gone to z = -0.005; reflected to +0.005 with flipped vz
        assert!((positions[0].z - 0.005).abs() < 1e-12, "{}", positions[0]);
        assert!(velocities[0].z > 0.0);
        // position stays in the domain
        assert!(m.domain().contains_closed(positions[0]));
    }

    #[test]
    fn pusher_only_touches_subset() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::ZERO,
        };
        let c = ctx(&m, &gll, &f);
        let mut positions = vec![Vec3::splat(0.5), Vec3::splat(0.25)];
        let mut velocities = vec![Vec3::new(1.0, 0.0, 0.0); 2];
        particle_pusher(&c, &mut positions, &mut velocities, &[0], &[Vec3::ZERO]);
        assert_ne!(positions[0], Vec3::splat(0.5));
        assert_eq!(positions[1], Vec3::splat(0.25));
    }

    #[test]
    fn projection_weight_positive_and_filter_monotone() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::ZERO,
        };
        let mut c = ctx(&m, &gll, &f);
        let positions = vec![Vec3::splat(0.5)];
        c.filter = 0.05;
        let w_small = projection(&c, &positions, &[0]);
        c.filter = 0.2;
        let w_large = projection(&c, &positions, &[0]);
        assert!(w_small >= 0.0);
        assert!(w_large > w_small, "larger filter must touch more nodes");
        // empty subset projects nothing
        assert_eq!(projection(&c, &positions, &[]), 0.0);
    }

    #[test]
    fn ghosts_match_decomposition_query() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::ZERO,
        };
        let mut c = ctx(&m, &gll, &f);
        c.filter = 0.1;
        let mapper = ElementMapper::new(&m, 8).unwrap();
        // one particle near the center: close to all octant boundaries
        let positions = vec![Vec3::new(0.48, 0.48, 0.48), Vec3::new(0.1, 0.1, 0.1)];
        let out = mapper.assign(&positions);
        let index = RegionIndex::build(&out.rank_regions);
        let ghosts = create_ghost_particles(&c, &positions, &out.ranks, &index);
        // particle 0 is a ghost on all ranks except its own
        let total_ghosts: usize = ghosts.iter().map(Vec::len).sum();
        assert_eq!(total_ghosts, 7, "{ghosts:?}");
        // particle 1 is interior: appears nowhere as a ghost
        for list in &ghosts {
            assert!(!list.contains(&1));
        }
        // no rank lists its own resident as a ghost
        for (r, list) in ghosts.iter().enumerate() {
            for &i in list {
                assert_ne!(out.ranks[i as usize].index(), r);
            }
        }
    }

    #[test]
    fn fluid_solver_scales_with_elements() {
        let m = mesh();
        let gll = GllRule::new(m.order());
        let f = UniformFlow {
            velocity: Vec3::new(1.0, 0.0, 0.0),
        };
        let c = ctx(&m, &gll, &f);
        let all: Vec<_> = m.element_ids().collect();
        let one = fluid_solver(&c, &all[..1], 0.0);
        let many = fluid_solver(&c, &all, 0.0);
        assert!(one > 0.0);
        assert!(
            (many / one - 64.0).abs() < 1e-6,
            "uniform field: work ∝ elements"
        );
    }
}
